//! `schedinspector` — command-line interface to the reproduction.
//!
//! ```text
//! schedinspector train    --trace SDSC-SP2 --policy SJF --metric bsld \
//!                         --epochs 40 --out model.txt --telemetry run.jsonl
//! schedinspector train    --store run-store --resume   (crash-safe training)
//! schedinspector train    --dist 4 --merge sync        (distributed training)
//! schedinspector dist-worker --connect 127.0.0.1:7700  (external worker)
//! schedinspector store    inspect --dir run-store
//! schedinspector serve    --model-dir run-store --addr 127.0.0.1:7171
//! schedinspector evaluate --model model.txt --trace SDSC-SP2 --policy SJF
//! schedinspector analyze  --model model.txt --trace SDSC-SP2 --policy SJF
//! schedinspector serve    --model model.txt --addr 127.0.0.1:7171
//! schedinspector infer    --model model.txt --in features.jsonl
//! schedinspector trace    --trace Lublin --jobs 5000 --out trace.swf
//! schedinspector scenario compile --spec flash_crowd.toml --seed 7 \
//!                         --out-swf flash.swf --out-profile flash_profile.toml
//! schedinspector scenario replay  --spec flash_crowd.toml --policy SJF \
//!                         --fairness-out fairness.json
//! schedinspector check-telemetry --file run.jsonl
//! ```

use std::path::Path;
use std::process::exit;

use inspector::analysis::{
    collect_decisions, feature_cdf, rejection_fraction, MANUAL_FEATURE_NAMES,
};
use schedinspector::prelude::*;

struct Args {
    map: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(args: &[String]) -> Args {
        let mut map = Vec::new();
        let mut positional = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                // Bare flags (`--resume`) must not swallow the next
                // option as their value.
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().cloned().unwrap_or_default(),
                    _ => String::new(),
                };
                map.push((key.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Args { map, positional }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.map
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: schedinspector <train|dist-worker|evaluate|analyze|serve|infer|trace|scenario|store|check-telemetry|report> [options]\n\
         \n\
         common options:\n\
           --trace   SDSC-SP2|CTC-SP2|HPC2N|Lublin   (default SDSC-SP2)\n\
           --trace-file FILE.swf   load an SWF archive instead\n\
           --scenario FILE.toml    compile a scenario spec instead\n\
           --policy  FCFS|LCFS|SJF|SAF|SRF|F1|Slurm  (default SJF)\n\
           --metric  bsld|wait|mbsld                  (default bsld)\n\
           --jobs N       trace size        (default 10000)\n\
           --seed N       RNG seed          (default 1)\n\
           --backfill 1   enable EASY backfilling\n\
         train:    --epochs N --batch N --out FILE --telemetry FILE.jsonl\n\
         \x20          --metrics-addr HOST:PORT   (live /metrics during training)\n\
         \x20          --store DIR    journal epoch checkpoints durably and\n\
         \x20                         publish the final model as a generation\n\
         \x20          --resume       continue a killed run from the store's\n\
         \x20                         last durable checkpoint (byte-identical)\n\
         \x20          --dist N       distributed training across N workers\n\
         \x20                         (byte-identical to in-process training)\n\
         \x20          --merge sync|decentralized   (default sync; decentralized\n\
         \x20                         is the DD-PPO shard-averaged merge)\n\
         \x20          --frame json|binary   episode wire encoding (default json)\n\
         \x20          --dist-listen HOST:PORT   coordinator bind (default\n\
         \x20                         127.0.0.1:0, chosen port printed)\n\
         \x20          --dist-workers inproc|none   (default inproc spawns the N\n\
         \x20                         workers in-process; none waits for external\n\
         \x20                         `dist-worker` processes)\n\
         \x20          --dist-shards N   logical shards, the determinism key\n\
         \x20                         (default N = worker count)\n\
         \x20          --dist-timeout-ms N   shard watchdog before speculative\n\
         \x20                         reassignment (default 30000)\n\
         dist-worker: --connect HOST:PORT   (plus the same trace/policy/seed\n\
         \x20          flags as the coordinator's train invocation: a worker\n\
         \x20          must reconstruct the identical world)\n\
         evaluate: --model FILE --seqs N --len N\n\
         analyze:  --model FILE\n\
         serve:    --model FILE --addr HOST:PORT --workers N --batch N\n\
         \x20          --model-dir DIR  serve the store's latest model and\n\
         \x20                         hot-swap each newly published generation\n\
         \x20          --shards N     (per-core engine shards, default 1)\n\
         \x20          --quantized 1  (int8 fused inference path)\n\
         \x20          --queue N --deadline-ms N --telemetry FILE.jsonl\n\
         \x20          --metrics-addr HOST:PORT   (Prometheus exposition endpoint)\n\
         \x20          --trace-ring N --trace-slow-us N --trace-store DIR\n\
         \x20          --trace-dump FILE   (per-shard flight recorder: slow/error/\n\
         \x20                         swap traces promote to the journal; the ring\n\
         \x20                         dumps to FILE on shutdown)\n\
         \x20          (TCP decision service; port 0 = ephemeral, printed on stdout)\n\
         infer:    --model FILE [--in FILE.jsonl]   (feature lines -> decisions)\n\
         trace:    --out FILE.swf   (generate an SWF workload trace), or\n\
         \x20          trace DIR|FILE    (reconstruct journaled or dumped request\n\
         \x20                         traces: per-request queue/batch/forward/write\n\
         \x20                         critical paths, slowest first)\n\
         scenario: <validate|compile|replay> --spec FILE.toml --seed N\n\
         \x20          compile: --out-swf FILE.swf --out-profile FILE.toml\n\
         \x20          replay:  --policy P --backfill 1 --fairness-out FILE.json\n\
         \x20          (validate/compile a multi-tenant scenario spec, or replay\n\
         \x20           it through the simulator and print per-tenant fairness)\n\
         store:    <inspect|compact> --dir DIR\n\
         \x20          (inspect: manifest/segments/WAL/models + strict verify;\n\
         \x20           compact: merge segments, retire old model generations)\n\
         check-telemetry: --file FILE.jsonl   (validate a telemetry sidecar)\n\
         report:   FILE.jsonl [FILE.jsonl ...] [--tolerance F]\n\
         \x20          [--fairness FILE.json]  (render a fairness report)\n\
         \x20          [--latency-tolerance F] [--bench-rollout FILE] [--bench-serve FILE]\n\
         \x20          [--bench-train FILE]  (distributed scaling baseline)\n\
         \x20          (per-epoch summaries, span wall-time breakdown, plus\n\
         \x20           throughput and p99-latency regression checks vs the\n\
         \x20           committed BENCH baselines; exits 1 on regression)"
    );
    exit(2)
}

/// Resolve the unified trace source for the `--trace`/`--trace-file`/
/// `--scenario` flag triple. All commands that consume a trace route
/// through here, so every ingestion path (calibrated synthetic profile,
/// SWF archive, scenario-compiled) is available everywhere.
fn trace_source(args: &Args) -> Box<dyn TraceSource> {
    let seed = args.num("seed", 1u64);
    if let Some(path) = args.get("trace-file") {
        Box::new(SwfFileSource::new(path))
    } else if let Some(path) = args.get("scenario") {
        Box::new(ScenarioSource::new(path, seed))
    } else {
        let name = args.get("trace").unwrap_or("SDSC-SP2");
        Box::new(SyntheticSource::new(
            name,
            args.num("jobs", 10_000usize),
            seed,
        ))
    }
}

fn build_world(args: &Args) -> (JobTrace, inspector::PolicyFactory, SimConfig, Metric) {
    let source = trace_source(args);
    let trace = source.load().unwrap_or_else(|e| {
        eprintln!("cannot load {}: {e}", source.id());
        exit(2)
    });
    let policy = args.get("policy").unwrap_or("SJF");
    let factory = if policy.eq_ignore_ascii_case("slurm") {
        slurm_factory(&trace)
    } else {
        match policy.parse::<PolicyKind>() {
            Ok(kind) => factory_for(kind),
            Err(e) => {
                eprintln!("{e}");
                exit(2)
            }
        }
    };
    let metric: Metric = args
        .get("metric")
        .unwrap_or("bsld")
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2)
        });
    let sim = SimConfig {
        backfill: args.num("backfill", 0u8) != 0,
        ..SimConfig::default()
    };
    (trace, factory, sim, metric)
}

fn cmd_train(args: &Args) {
    let (trace, factory, sim, metric) = build_world(args);
    let (train, test) = trace.split(0.2);
    let config = InspectorConfig {
        metric,
        sim,
        epochs: args.num("epochs", 40usize),
        batch_size: args.num("batch", 64usize),
        seq_len: args.num("len", 128usize),
        seed: args.num("seed", 1u64),
        ..Default::default()
    };
    println!(
        "training on {} ({} jobs), {} epochs x {} trajectories, metric {}",
        train.name,
        train.len(),
        config.epochs,
        config.batch_size,
        metric.name()
    );
    let registry = args
        .get("metrics-addr")
        .map(|_| std::sync::Arc::new(obs::Registry::new()));
    let telemetry = match (args.get("telemetry"), &registry) {
        (Some(path), reg) => {
            let made = match reg {
                Some(reg) => {
                    obs::Telemetry::jsonl_with_registry(Path::new(path), std::sync::Arc::clone(reg))
                }
                None => obs::Telemetry::jsonl(Path::new(path)),
            };
            match made {
                Ok(t) => {
                    println!("telemetry -> {path}");
                    t
                }
                Err(e) => {
                    eprintln!("cannot write telemetry file {path}: {e}");
                    exit(2)
                }
            }
        }
        (None, Some(reg)) => obs::Telemetry::with_registry(std::sync::Arc::clone(reg)),
        (None, None) => obs::Telemetry::disabled(),
    };
    let exporter = registry.clone().map(|reg| {
        let addr = args.get("metrics-addr").unwrap();
        match obs::MetricsExporter::bind(addr, reg, telemetry.clone()) {
            Ok(ex) => {
                println!("metrics -> http://{}/metrics", ex.local_addr());
                ex
            }
            Err(e) => {
                eprintln!("cannot start metrics exporter: {e}");
                exit(2)
            }
        }
    });
    // Distributed mode (`--dist N`): the coordinator runs inside this
    // process, drawing the exact epoch plans the in-process path would,
    // while workers (in-process threads by default, or external
    // `dist-worker` processes) execute the sharded rollouts.
    let dist_workers = args.get("dist").map(|v| match v.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("--dist requires a worker count >= 1, got {v:?}");
            exit(2)
        }
    });
    // In-process workers must reconstruct the identical world.
    let worker_world = dist_workers.map(|_| train.clone());
    let mut trainer = match Trainer::builder(train)
        .factory(factory.clone())
        .config(config)
        .telemetry(telemetry.clone())
        .build()
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            exit(2)
        }
    };
    // With `--store DIR` every epoch checkpoint is journaled through the
    // durable run store, so a killed run (`kill -9`, power loss) resumes
    // byte-identically with `--resume`.
    let mut run_store = args.get("store").map(|dir| {
        match RunStore::open_with(dir, StoreConfig::default(), registry.as_deref()) {
            Ok(s) => {
                println!("store -> {dir}");
                s
            }
            Err(e) => {
                eprintln!("cannot open store {dir}: {e}");
                exit(2)
            }
        }
    });
    let mut start_epoch = 0usize;
    if args.get("resume").is_some() {
        let Some(store) = &run_store else {
            eprintln!("--resume requires --store DIR");
            exit(2)
        };
        match store.get(CHECKPOINT_KEY) {
            Ok(Some(bytes)) => {
                let text = String::from_utf8(bytes).unwrap_or_else(|e| {
                    eprintln!("checkpoint is not UTF-8: {e}");
                    exit(2)
                });
                match trainer.restore(&text) {
                    Ok(done) => {
                        println!("resuming at epoch {done}");
                        start_epoch = done;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        exit(2)
                    }
                }
            }
            Ok(None) => println!("no checkpoint in the store; starting fresh"),
            Err(e) => {
                eprintln!("cannot read checkpoint: {e}");
                exit(2)
            }
        }
    }
    if let Some(n) = dist_workers {
        run_distributed(
            args,
            &mut trainer,
            worker_world.expect("trace captured for workers"),
            &factory,
            config,
            n,
            start_epoch,
            run_store.as_mut(),
            &telemetry,
        );
    } else {
        for epoch in start_epoch..config.epochs {
            let r = trainer.train_epoch(epoch);
            if let Some(store) = run_store.as_mut() {
                store.put(
                    CHECKPOINT_KEY,
                    trainer.checkpoint_text(epoch + 1).into_bytes(),
                );
                if let Err(e) = store.commit() {
                    eprintln!("cannot journal checkpoint for epoch {epoch}: {e}");
                    exit(1)
                }
            }
            if epoch % 5 == 0 || epoch + 1 == config.epochs {
                println!(
                    "  epoch {:>3}: improvement {:+.3} ({:+.1}%), rejection ratio {:.1}%",
                    epoch,
                    r.improvement,
                    r.improvement_pct * 100.0,
                    r.rejection_ratio * 100.0
                );
            }
        }
    }
    telemetry.flush();
    if let Some(exporter) = exporter {
        exporter.shutdown();
    }
    let agent = trainer.inspector();
    let report = evaluate(&agent, &test, &factory, sim, 20, 256, 7, 0);
    println!(
        "held-out {}: {:.2} -> {:.2} ({:+.1}%)",
        metric.name(),
        report.mean_base(metric),
        report.mean_inspected(metric),
        report.improvement_pct(metric) * 100.0
    );
    if let Some(out) = args.get("out") {
        inspector::model_io::save(&agent, Path::new(out)).expect("write model");
        println!("model written to {out}");
    }
    if let Some(store) = run_store.as_mut() {
        match store.publish_model(&inspector::model_io::to_text(&agent)) {
            Ok(generation) => println!("model published to store as generation {generation}"),
            Err(e) => {
                eprintln!("cannot publish model: {e}");
                exit(1)
            }
        }
    }
}

/// The `train --dist N` path: bind the coordinator, spawn (or wait for)
/// workers, and run the epochs through the sharded scheduler. For a fixed
/// `(seed, --dist-shards)` the final weights are byte-identical to the
/// in-process loop above — the shard plan, not the physical worker set,
/// is the determinism key.
#[allow(clippy::too_many_arguments)] // one-shot plumbing from cmd_train
fn run_distributed(
    args: &Args,
    trainer: &mut Trainer,
    world: JobTrace,
    factory: &inspector::PolicyFactory,
    config: InspectorConfig,
    n: usize,
    start_epoch: usize,
    store: Option<&mut RunStore>,
    telemetry: &Telemetry,
) {
    let merge = match args.get("merge") {
        None => MergeMode::Sync,
        Some(v) => MergeMode::parse(v).unwrap_or_else(|| {
            eprintln!("--merge must be sync or decentralized, got {v:?}");
            exit(2)
        }),
    };
    let frame = match args.get("frame") {
        None => FrameKind::Json,
        Some(v) => FrameKind::parse(v).unwrap_or_else(|| {
            eprintln!("--frame must be json or binary, got {v:?}");
            exit(2)
        }),
    };
    let shards = args.num("dist-shards", n).clamp(1, config.batch_size);
    let cfg = DistConfig {
        shards,
        merge,
        frame,
        shard_timeout: std::time::Duration::from_millis(args.num("dist-timeout-ms", 30_000u64)),
        start_epoch,
        ..DistConfig::default()
    };
    let coordinator = Coordinator::bind(args.get("dist-listen").unwrap_or("127.0.0.1:0"))
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(1)
        });
    println!(
        "coordinator on {} ({} merge, {} frames, {} shard(s), {} worker(s))",
        coordinator.addr(),
        merge.as_str(),
        frame.as_str(),
        shards,
        n
    );
    let local = match args.get("dist-workers").unwrap_or("inproc") {
        "inproc" => {
            let workers: Vec<Trainer> = (0..n)
                .map(|_| {
                    Trainer::builder(world.clone())
                        .factory(factory.clone())
                        .config(config)
                        .build()
                        .unwrap_or_else(|e| {
                            eprintln!("{e}");
                            exit(2)
                        })
                })
                .collect();
            Some(spawn_local_workers(coordinator.addr(), workers))
        }
        "none" => {
            println!(
                "waiting for external dist-worker process(es) to connect to {}",
                coordinator.addr()
            );
            None
        }
        other => {
            eprintln!("--dist-workers must be inproc or none, got {other:?}");
            exit(2)
        }
    };
    let report = coordinator
        .run(trainer, &cfg, store, telemetry)
        .unwrap_or_else(|e| {
            eprintln!("distributed training failed: {e}");
            exit(1)
        });
    if let Some(handle) = local {
        let _ = handle.join();
    }
    for r in &report.history.records {
        if r.epoch % 5 == 0 || r.epoch + 1 == config.epochs {
            println!(
                "  epoch {:>3}: improvement {:+.3} ({:+.1}%), rejection ratio {:.1}%",
                r.epoch,
                r.improvement,
                r.improvement_pct * 100.0,
                r.rejection_ratio * 100.0
            );
        }
    }
    println!(
        "distributed: {} episode(s), {} duplicate(s) dropped, {} reassignment(s), \
         {} worker death(s), {} worker(s) joined",
        report.episodes,
        report.duplicates,
        report.reassignments,
        report.worker_deaths,
        report.workers_joined
    );
}

/// `dist-worker --connect ADDR` — one external rollout worker process. It
/// must be launched with the same trace/policy/seed/config flags as the
/// coordinator's `train` invocation so both sides reconstruct the
/// identical world; mismatches are rejected at the hello handshake.
fn cmd_dist_worker(args: &Args) {
    let (trace, factory, sim, metric) = build_world(args);
    let (train, _) = trace.split(0.2);
    let config = InspectorConfig {
        metric,
        sim,
        epochs: args.num("epochs", 40usize),
        batch_size: args.num("batch", 64usize),
        seq_len: args.num("len", 128usize),
        seed: args.num("seed", 1u64),
        ..Default::default()
    };
    let mut trainer = match Trainer::builder(train)
        .factory(factory)
        .config(config)
        .build()
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            exit(2)
        }
    };
    let cfg = WorkerConfig {
        connect: args.get("connect").unwrap_or("127.0.0.1:7700").to_string(),
        connect_timeout: std::time::Duration::from_millis(
            args.num("connect-timeout-ms", 10_000u64),
        ),
        ..WorkerConfig::default()
    };
    println!("worker connecting to {}", cfg.connect);
    match run_worker(&mut trainer, &cfg) {
        Ok(report) => println!(
            "worker done: {} shard(s) rolled out, {} episode(s) streamed",
            report.shards, report.episodes
        ),
        Err(e) => {
            eprintln!("worker failed: {e}");
            exit(1)
        }
    }
}

fn load_model(args: &Args) -> SchedInspector {
    let Some(path) = args.get("model") else {
        eprintln!("--model FILE is required");
        exit(2)
    };
    inspector::model_io::load(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot load {path}: {e}");
        exit(2)
    })
}

fn cmd_evaluate(args: &Args) {
    let (trace, factory, sim, metric) = build_world(args);
    let agent = load_model(args);
    let (_, test) = trace.split(0.2);
    let report = evaluate(
        &agent,
        &test,
        &factory,
        sim,
        args.num("seqs", 50usize),
        args.num("len", 256usize),
        args.num("seed", 1u64) ^ 0xE7A1,
        0,
    );
    println!(
        "{} over {} sequences: base {:.3}, inspected {:.3} ({:+.2}%)",
        metric.name(),
        report.cases.len(),
        report.mean_base(metric),
        report.mean_inspected(metric),
        report.improvement_pct(metric) * 100.0
    );
    println!(
        "utilization: {:.2}% -> {:.2}%; rejection ratio {:.1}%",
        report.mean_base_util() * 100.0,
        report.mean_inspected_util() * 100.0,
        report.rejection_ratio() * 100.0
    );
}

fn cmd_analyze(args: &Args) {
    let (trace, factory, sim, _) = build_world(args);
    let agent = load_model(args);
    let simulator = Simulator::new(trace.procs, sim);
    let samples = collect_decisions(&agent, &simulator, &trace.jobs, &factory);
    println!(
        "{} inspections, {:.1}% rejected",
        samples.len(),
        rejection_fraction(&samples) * 100.0
    );
    for (idx, name) in MANUAL_FEATURE_NAMES.iter().enumerate() {
        if idx >= agent.features.dim() {
            break;
        }
        let med = |rej| {
            feature_cdf(&samples, idx, 41, rej)
                .iter()
                .find(|&&(_, y)| y >= 0.5)
                .map(|&(x, _)| x)
                .unwrap_or(1.0)
        };
        println!(
            "  {name:<20} median(all) {:.3}  median(rejected) {:.3}",
            med(false),
            med(true)
        );
    }
}

fn cmd_serve(args: &Args) {
    // `--model-dir DIR` serves the store's latest published generation
    // and keeps watching: each later `publish_model` hot-swaps into the
    // running engine with zero dropped requests. `--model FILE` is the
    // fallback when the store holds no model yet.
    let model_dir = args.get("model-dir");
    let (agent, initial_generation) = match model_dir {
        Some(dir) => {
            let store = RunStore::open(dir).unwrap_or_else(|e| {
                eprintln!("cannot open store {dir}: {e}");
                exit(2)
            });
            match store.latest_model() {
                Ok(Some((generation, text))) => {
                    let agent = inspector::model_io::from_text(&text).unwrap_or_else(|e| {
                        eprintln!("store {dir} generation {generation}: {e}");
                        exit(2)
                    });
                    println!("serving generation {generation} from {dir}");
                    (agent, generation)
                }
                Ok(None) if args.get("model").is_some() => (load_model(args), 0),
                Ok(None) => {
                    eprintln!(
                        "{dir}: no published model (run `train --store {dir}` first, \
                         or pass --model FILE as the initial model)"
                    );
                    exit(2)
                }
                Err(e) => {
                    eprintln!("cannot read store {dir}: {e}");
                    exit(2)
                }
            }
        }
        None => (load_model(args), 0),
    };
    let telemetry = match args.get("telemetry") {
        Some(path) => match obs::Telemetry::jsonl(Path::new(path)) {
            Ok(t) => {
                println!("telemetry -> {path}");
                t
            }
            Err(e) => {
                eprintln!("cannot write telemetry file {path}: {e}");
                exit(2)
            }
        },
        None => obs::Telemetry::disabled(),
    };
    let cfg = serve::ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7171").to_string(),
        workers: args.num("workers", 4usize),
        max_batch: args.num("batch", 16usize),
        shards: args.num("shards", 1usize),
        quantized: args.num("quantized", 0u8) != 0,
        queue_capacity: args.num("queue", 4096usize),
        default_deadline_ms: args.get("deadline-ms").and_then(|v| v.parse().ok()),
        model_dir: model_dir.map(String::from),
        initial_model_generation: initial_generation,
        trace: trace_config(args),
        ..serve::ServeConfig::default()
    };
    if let Some(t) = &cfg.trace {
        println!(
            "tracing: ring {} spans/shard, promote > {}us{}{}",
            t.ring_capacity,
            t.slow_us,
            t.store_dir
                .as_deref()
                .map(|d| format!(", journal -> {d}"))
                .unwrap_or_default(),
            t.dump_path
                .as_deref()
                .map(|p| format!(", dump -> {p}"))
                .unwrap_or_default()
        );
    }
    let handle = serve::serve(agent, cfg, telemetry.clone()).unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        exit(1)
    });
    println!("listening on {}", handle.addr());
    // The server's stats live in its registry; exposing that same registry
    // means `/metrics` and the `stats` verb read the same atomics.
    let exporter = args.get("metrics-addr").map(|addr| {
        match obs::MetricsExporter::bind(addr, handle.registry(), telemetry.clone()) {
            Ok(ex) => {
                println!("metrics -> http://{}/metrics", ex.local_addr());
                ex
            }
            Err(e) => {
                eprintln!("cannot start metrics exporter: {e}");
                exit(1)
            }
        }
    });
    handle.wait(); // until a client sends {"verb":"shutdown"}
    if let Some(exporter) = exporter {
        exporter.shutdown();
    }
    telemetry.flush();
    println!("server stopped");
}

/// Flight-recorder settings for `serve`: tracing turns on when any
/// `--trace-*` flag is present; unset flags keep the [`serve::TraceConfig`]
/// defaults.
fn trace_config(args: &Args) -> Option<serve::TraceConfig> {
    let enabled = ["trace-ring", "trace-slow-us", "trace-store", "trace-dump"]
        .iter()
        .any(|k| args.get(k).is_some());
    if !enabled {
        return None;
    }
    let default = serve::TraceConfig::default();
    Some(serve::TraceConfig {
        ring_capacity: args.num("trace-ring", default.ring_capacity),
        slow_us: args.num("trace-slow-us", default.slow_us),
        store_dir: args.get("trace-store").map(String::from),
        dump_path: args.get("trace-dump").map(String::from),
    })
}

fn cmd_infer(args: &Args) {
    use std::io::BufRead;
    let agent = load_model(args);
    let dim = agent.input_dim();
    let input: Box<dyn std::io::Read> = match args.get("in") {
        Some(path) => Box::new(std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(2)
        })),
        None => Box::new(std::io::stdin()),
    };
    let mut scratch = rlcore::PolicyScratch::default();
    let mut decided = 0usize;
    for (i, line) in std::io::BufReader::new(input).lines().enumerate() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("read error on line {}: {e}", i + 1);
            exit(1)
        });
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Accept a bare array of numbers or an object with "features".
        let value = obs::json::parse(line).unwrap_or_else(|e| {
            eprintln!("line {}: {e}", i + 1);
            exit(1)
        });
        let raw = value
            .as_array()
            .or_else(|| value.get("features").and_then(obs::json::Json::as_array))
            .unwrap_or_else(|| {
                eprintln!("line {}: expected an array or {{\"features\":[..]}}", i + 1);
                exit(1)
            });
        let features: Vec<f32> = raw
            .iter()
            .map(|x| {
                x.as_f64().unwrap_or_else(|| {
                    eprintln!("line {}: features must be numbers", i + 1);
                    exit(1)
                }) as f32
            })
            .collect();
        if features.len() != dim {
            eprintln!(
                "line {}: expected {dim} features, got {}",
                i + 1,
                features.len()
            );
            exit(1)
        }
        let d = agent.decide(&features, &mut scratch);
        let verdict = if d.reject { "reject" } else { "accept" };
        println!("{{\"decision\":\"{verdict}\",\"p_reject\":{}}}", d.p_reject);
        decided += 1;
    }
    eprintln!("{decided} decisions");
}

fn cmd_trace(args: &Args) {
    // `trace DIR|FILE` (positional argument) reconstructs request traces
    // from a run-store journal or a flight-recorder JSONL dump; the
    // flag-driven form below generates SWF workload traces as before.
    if let Some(path) = args.positional.first() {
        cmd_trace_inspect(path);
        return;
    }
    let (trace, _, _, _) = build_world(args);
    let s = trace.stats();
    println!("{}", s.table2_row(&trace.name));
    if let Some(out) = args.get("out") {
        trace
            .to_swf()
            .write_file(Path::new(out))
            .expect("write SWF");
        println!("wrote {out}");
    }
}

/// Load every `flight_record` span from a run-store directory (keys under
/// `trace/`) or a JSONL dump/sidecar file, reconstruct each trace's
/// critical path, and pretty-print the breakdown slowest-first.
fn cmd_trace_inspect(path: &str) {
    use obs::trace::{hex16, summarize, TraceSummary};
    use std::collections::BTreeMap;

    let mut spans: Vec<obs::SpanRecord> = Vec::new();
    let mut malformed = 0usize;
    let mut ingest_line = |line: &str| {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        match obs::json::parse(line) {
            // Sidecars interleave other event kinds with flight records;
            // only `flight_record` lines carry spans.
            Ok(v) if v.get("kind").and_then(obs::json::Json::as_str) != Some("flight_record") => {}
            Ok(v) => match obs::SpanRecord::from_flight_record_json(&v) {
                Ok(rec) => spans.push(rec),
                Err(_) => malformed += 1,
            },
            Err(_) => malformed += 1,
        }
    };
    if Path::new(path).is_dir() {
        let store = RunStore::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open store {path}: {e}");
            exit(2)
        });
        let keys = store.keys().unwrap_or_else(|e| {
            eprintln!("cannot list store {path}: {e}");
            exit(2)
        });
        for key in keys.iter().filter(|k| k.starts_with("trace/")) {
            match store.get(key) {
                Ok(Some(bytes)) => {
                    for line in String::from_utf8_lossy(&bytes).lines() {
                        ingest_line(line);
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    eprintln!("cannot read {key}: {e}");
                    exit(2)
                }
            }
        }
    } else {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(2)
        });
        for line in text.lines() {
            ingest_line(line);
        }
    }

    let mut by_trace: BTreeMap<u64, Vec<obs::SpanRecord>> = BTreeMap::new();
    for rec in spans {
        by_trace.entry(rec.trace_id).or_default().push(rec);
    }
    if by_trace.is_empty() {
        eprintln!("{path}: no flight-record spans found ({malformed} malformed lines)");
        exit(1)
    }
    let mut complete: Vec<TraceSummary> = Vec::new();
    let mut broken: Vec<(u64, String)> = Vec::new();
    for (trace_id, chain) in &by_trace {
        match summarize(chain) {
            Ok(s) => complete.push(s),
            Err(e) => broken.push((*trace_id, e)),
        }
    }
    // Slowest first: the whole point is finding where the tail went.
    complete.sort_by_key(|s| std::cmp::Reverse(s.total_us));
    println!(
        "{}: {} trace(s), {} complete, {} incomplete, {} malformed line(s)",
        path,
        by_trace.len(),
        complete.len(),
        broken.len(),
        malformed
    );
    let mut per_shard: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for s in &complete {
        let status = format!("{:?}", s.status);
        println!(
            "trace {}  shard {}  gen {}  {:<18} total {:>6}us | queue {:>5}us  \
             batch-wait {:>5}us  forward {:>5}us  write {:>5}us",
            hex16(s.trace_id),
            s.shard,
            s.model_generation,
            status,
            s.total_us,
            s.queue_us,
            s.batch_wait_us,
            s.forward_us,
            s.write_us
        );
        let e = per_shard.entry(s.shard).or_default();
        e.0 += 1;
        e.1 += s.total_us;
    }
    for (shard, (count, total)) in &per_shard {
        println!(
            "shard {shard}: {count} trace(s), mean total {}us",
            total / count.max(&1)
        );
    }
    for (trace_id, why) in &broken {
        println!("trace {}: incomplete: {why}", hex16(*trace_id));
    }
}

/// `scenario <validate|compile|replay>` — the scenario-engine front end.
///
/// * `validate` parses the spec and prints the population summary;
/// * `compile` deterministically materializes the SWF trace and the typed
///   load profile (byte-identical for equal `(spec, seed)`);
/// * `replay` runs the compiled trace through the simulator under a
///   baseline policy and prints the per-tenant fairness table.
fn cmd_scenario(args: &Args) {
    let Some(sub) = args.positional.first() else {
        eprintln!("scenario: a subcommand (validate|compile|replay) is required");
        exit(2)
    };
    let Some(spec_path) = args.get("spec") else {
        eprintln!("scenario {sub}: --spec FILE.toml is required");
        exit(2)
    };
    let seed = args.num("seed", 1u64);
    let text = std::fs::read_to_string(spec_path).unwrap_or_else(|e| {
        eprintln!("cannot read {spec_path}: {e}");
        exit(2)
    });
    let spec = ScenarioSpec::parse(&text).unwrap_or_else(|e| {
        eprintln!("{spec_path}: {e}");
        exit(2)
    });
    println!(
        "scenario {:?}: {} procs, {:.1}h horizon, {} tenant(s), {} event(s)",
        spec.name,
        spec.procs,
        spec.horizon_s / 3600.0,
        spec.tenants.len(),
        spec.events.len()
    );
    for t in &spec.tenants {
        println!(
            "  tenant {:<12} {:>9} users, {:.1} jobs/h, {:?} arrivals",
            t.name, t.users, t.rate_per_hour, t.arrival
        );
    }
    if sub == "validate" {
        println!("{spec_path}: ok");
        return;
    }

    let compiled = scenario::compile(&spec, seed).unwrap_or_else(|e| {
        eprintln!("{spec_path}: {e}");
        exit(2)
    });
    println!(
        "compiled (seed {seed}): {} jobs on {} procs",
        compiled.trace.len(),
        compiled.trace.procs
    );
    match sub.as_str() {
        "compile" => {
            if let Some(out) = args.get("out-swf") {
                std::fs::write(out, scenario::swf_text(&compiled)).unwrap_or_else(|e| {
                    eprintln!("cannot write {out}: {e}");
                    exit(2)
                });
                println!("swf -> {out}");
            }
            if let Some(out) = args.get("out-profile") {
                std::fs::write(out, compiled.profile.to_toml()).unwrap_or_else(|e| {
                    eprintln!("cannot write {out}: {e}");
                    exit(2)
                });
                println!("profile -> {out}");
            }
        }
        "replay" => {
            let policy = args.get("policy").unwrap_or("SJF");
            let factory = if policy.eq_ignore_ascii_case("slurm") {
                slurm_factory(&compiled.trace)
            } else {
                match policy.parse::<PolicyKind>() {
                    Ok(kind) => factory_for(kind),
                    Err(e) => {
                        eprintln!("{e}");
                        exit(2)
                    }
                }
            };
            let sim = SimConfig {
                backfill: args.num("backfill", 0u8) != 0,
                ..SimConfig::default()
            };
            let mut policy = factory();
            let result = Simulator::new(compiled.trace.procs, sim)
                .run(&compiled.trace.jobs, policy.as_mut());
            let fairness = FairnessReport::from_sim(
                spec.name.clone(),
                &result,
                &compiled.trace.jobs,
                &compiled.tenants,
            );
            print!("{}", fairness.render());
            if let Some(out) = args.get("fairness-out") {
                let mut text = String::new();
                fairness.to_json().write_json(&mut text);
                text.push('\n');
                std::fs::write(out, text).unwrap_or_else(|e| {
                    eprintln!("cannot write {out}: {e}");
                    exit(2)
                });
                println!("fairness -> {out}");
            }
        }
        other => {
            eprintln!("scenario: unknown subcommand {other:?} (validate|compile|replay)");
            exit(2)
        }
    }
}

/// `store <inspect|compact>` — examine or maintain a durable run store.
///
/// * `inspect` prints the manifest version, live segments, WAL/memtable
///   state, published model generations, and runs a strict integrity
///   check over every on-disk structure;
/// * `compact` merges all live segments into one and retires superseded
///   model generations.
fn cmd_store(args: &Args) {
    let Some(sub) = args.positional.first() else {
        eprintln!("store: a subcommand (inspect|compact) is required");
        exit(2)
    };
    let Some(dir) = args.get("dir") else {
        eprintln!("store {sub}: --dir DIR is required");
        exit(2)
    };
    let mut store = RunStore::open(dir).unwrap_or_else(|e| {
        eprintln!("cannot open store {dir}: {e}");
        exit(2)
    });
    match sub.as_str() {
        "inspect" => {
            let status = store.status().unwrap_or_else(|e| {
                eprintln!("{dir}: {e}");
                exit(1)
            });
            println!("store {dir}");
            println!("  manifest version  {}", status.manifest_version);
            println!("  wal durable bytes {}", status.wal_durable_len);
            println!("  memtable entries  {}", status.memtable_entries);
            println!("  live keys         {}", status.live_keys);
            println!("  segments          {}", status.segments.len());
            for (id, records, bytes) in &status.segments {
                println!("    seg {id:>6}: {records} records, {bytes} bytes");
            }
            match status.model_generations.as_slice() {
                [] => println!("  models            none"),
                gens => println!(
                    "  models            {} (latest generation {})",
                    gens.len(),
                    gens.last().unwrap()
                ),
            }
            match store.verify() {
                Ok(records) => println!("  verify            ok ({records} records checked)"),
                Err(e) => {
                    eprintln!("  verify            FAILED: {e}");
                    exit(1)
                }
            }
        }
        "compact" => match store.compact() {
            Ok(retired) => println!("{dir}: compacted, {retired} segment(s) retired"),
            Err(e) => {
                eprintln!("{dir}: compaction failed: {e}");
                exit(1)
            }
        },
        other => {
            eprintln!("store: unknown subcommand {other:?} (inspect|compact)");
            exit(2)
        }
    }
}

fn cmd_check_telemetry(args: &Args) {
    let Some(path) = args.get("file") else {
        eprintln!("--file FILE.jsonl is required");
        exit(2)
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(2)
    });
    let mut counts = std::collections::BTreeMap::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match obs::json::validate_telemetry_line(line) {
            Ok(event) => {
                let kind = event
                    .get("kind")
                    .and_then(|k| k.as_str())
                    .unwrap_or("?")
                    .to_string();
                *counts.entry(kind).or_insert(0usize) += 1;
                lines += 1;
            }
            Err(e) => {
                eprintln!("{path}:{}: invalid telemetry line: {e}", i + 1);
                exit(1)
            }
        }
    }
    println!("{path}: {lines} valid events");
    for (kind, n) in counts {
        println!("  {kind:<10} {n}");
    }
}

/// Load a BENCH_*.json baseline. An explicitly named file that fails to
/// load is fatal; the conventional default is used only when present.
fn load_bench_baseline(explicit: Option<&str>, default: &str) -> Option<obs::json::Json> {
    let path = match explicit {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let p = std::path::PathBuf::from(default);
            if !p.exists() {
                return None;
            }
            p
        }
    };
    match obs::report::load_bench(&path) {
        Ok(bench) => Some(bench),
        Err(e) => {
            eprintln!("cannot load bench baseline: {e}");
            if explicit.is_some() {
                exit(2)
            }
            None
        }
    }
}

fn cmd_report(args: &Args) {
    // A fairness artifact (from `scenario replay` or `loadgen
    // --fairness-out`) renders standalone; sidecars remain optional then.
    if let Some(path) = args.get("fairness") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(2)
        });
        let json = obs::json::parse(text.trim()).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(2)
        });
        let fairness = FairnessReport::from_json(&json).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(2)
        });
        print!("{}", fairness.render());
        if args.positional.is_empty() {
            return;
        }
    }
    if args.positional.is_empty() {
        eprintln!("report: at least one telemetry sidecar (FILE.jsonl) is required");
        exit(2)
    }
    let tolerance = args.num("tolerance", 0.5f64);
    if !(0.0..1.0).contains(&tolerance) {
        eprintln!("--tolerance must be in [0, 1), got {tolerance}");
        exit(2)
    }
    // Tail latency is noisier than throughput, so its gate gets its own
    // (more generous) knob: fail only when measured p99 exceeds the
    // committed open-loop baseline by more than this fraction.
    let latency_tolerance = args.num("latency-tolerance", 1.0f64);
    if latency_tolerance < 0.0 {
        eprintln!("--latency-tolerance must be >= 0, got {latency_tolerance}");
        exit(2)
    }
    let bench_rollout = load_bench_baseline(args.get("bench-rollout"), "BENCH_rollout.json");
    let bench_serve = load_bench_baseline(args.get("bench-serve"), "BENCH_serve.json");
    let bench_train = load_bench_baseline(args.get("bench-train"), "BENCH_train.json");
    let mut regressed = false;
    for path in &args.positional {
        // Lenient parsing: a truncated or partially corrupt sidecar (the
        // process died mid-write) still yields a summary, but malformed
        // lines mark the run DEGRADED and fail the exit code below.
        let report = obs::report::analyze_file_lenient(Path::new(path)).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2)
        });
        if report.malformed_lines > 0 {
            regressed = true;
        }
        let mut out = String::new();
        report.render(&mut out);
        print!("{out}");
        let checks = obs::report::throughput_checks(
            &report,
            bench_rollout.as_ref(),
            bench_serve.as_ref(),
            bench_train.as_ref(),
            tolerance,
        );
        if checks.is_empty() {
            println!("throughput: no measurement/baseline pair to check");
        }
        for check in checks {
            let verdict = if check.regressed() {
                regressed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "throughput {:<8} {:.1}/s vs baseline {:.1}/s ({:.0}% of baseline, floor {:.0}%): {verdict}",
                check.name,
                check.measured,
                check.baseline,
                check.ratio() * 100.0,
                (1.0 - check.tolerance) * 100.0,
            );
        }
        for check in obs::report::latency_checks(&report, bench_serve.as_ref(), latency_tolerance) {
            let verdict = if check.regressed() {
                regressed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "latency    {:<8} p99 {:.1}us vs baseline {:.1}us ({:.0}% of baseline, ceiling {:.0}%): {verdict}",
                check.name,
                check.measured,
                check.baseline,
                check.ratio() * 100.0,
                (1.0 + check.tolerance) * 100.0,
            );
        }
        println!();
    }
    if regressed {
        exit(1)
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let args = Args::parse(&argv[1..]);
    match cmd.as_str() {
        "train" => cmd_train(&args),
        "dist-worker" => cmd_dist_worker(&args),
        "evaluate" => cmd_evaluate(&args),
        "analyze" => cmd_analyze(&args),
        "serve" => cmd_serve(&args),
        "infer" => cmd_infer(&args),
        "trace" => cmd_trace(&args),
        "scenario" => cmd_scenario(&args),
        "store" => cmd_store(&args),
        "check-telemetry" => cmd_check_telemetry(&args),
        "report" => cmd_report(&args),
        _ => usage(),
    }
}
