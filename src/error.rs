//! The workspace-level error type: one enum unifying the typed errors of
//! every layer, so callers of the facade crate can use `?` against a
//! single `Result<T, schedinspector::Error>`.

use inspector::{ConfigError, ModelIoError, TrainError};
use obs::ObsError;
use store::StoreError;
use swf::SwfError;
use workload::TraceError;

/// Any error the SchedInspector stack can surface through the facade.
#[derive(Debug)]
pub enum Error {
    /// Parsing or writing a Standard Workload Format file failed.
    Swf(SwfError),
    /// Constructing a [`workload::JobTrace`] failed.
    Trace(TraceError),
    /// An [`inspector::InspectorConfig`] failed validation.
    Config(ConfigError),
    /// Building an [`inspector::Trainer`] failed.
    Train(TrainError),
    /// Reading or writing a model checkpoint failed.
    ModelIo(ModelIoError),
    /// An I/O error (model files, telemetry sidecars, trace files).
    Io(std::io::Error),
    /// The observability layer failed (telemetry sidecar creation, metrics
    /// exposition bind) — carries the path or address that failed.
    Obs(ObsError),
    /// The durable run store failed (corrupt WAL record, checksum
    /// mismatch, manifest version skew) — carries the offending path and
    /// offset where applicable.
    Store(StoreError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Swf(e) => write!(f, "SWF: {e}"),
            Error::Trace(e) => write!(f, "trace: {e}"),
            Error::Config(e) => write!(f, "config: {e}"),
            Error::Train(e) => write!(f, "training: {e}"),
            Error::ModelIo(e) => write!(f, "model: {e}"),
            Error::Io(e) => write!(f, "I/O: {e}"),
            Error::Obs(e) => write!(f, "observability: {e}"),
            Error::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Swf(e) => Some(e),
            Error::Trace(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Train(e) => Some(e),
            Error::ModelIo(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Obs(e) => Some(e),
            Error::Store(e) => Some(e),
        }
    }
}

impl From<SwfError> for Error {
    fn from(e: SwfError) -> Self {
        Error::Swf(e)
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        Error::Trace(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<TrainError> for Error {
    fn from(e: TrainError) -> Self {
        Error::Train(e)
    }
}

impl From<ModelIoError> for Error {
    fn from(e: ModelIoError) -> Self {
        Error::ModelIo(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<ObsError> for Error {
    fn from(e: ObsError) -> Self {
        Error::Obs(e)
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_converts_and_displays_with_context() {
        let e: Error = ConfigError::ZeroBatchSize.into();
        assert!(e.to_string().starts_with("config:"));
        assert!(e.to_string().contains("batch_size"));

        let e: Error = TrainError::EmptyTrace { trace: "t".into() }.into();
        assert!(e.to_string().starts_with("training:"));

        let e: Error = TraceError::EmptyMachine.into();
        assert!(e.to_string().starts_with("trace:"));

        let e: Error = ModelIoError::Parse {
            line: 4,
            msg: "bad norm value".into(),
        }
        .into();
        assert!(e.to_string().starts_with("model: line 4:"));

        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));

        let e: Error = ObsError::Sidecar {
            path: "run.jsonl".into(),
            source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        }
        .into();
        assert!(e.to_string().starts_with("observability:"));
        assert!(e.to_string().contains("run.jsonl"));

        let e: Error = StoreError::ChecksumMismatch {
            path: "wal.log".into(),
            offset: 128,
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(e.to_string().starts_with("store:"));
        assert!(e.to_string().contains("wal.log"));
        assert!(e.to_string().contains("128"));
    }

    #[test]
    fn sources_chain_to_the_underlying_error() {
        use std::error::Error as _;
        let e: Error = TrainError::Config(ConfigError::ZeroSeqLen).into();
        let source = e.source().expect("has source");
        assert!(source.to_string().contains("config"));
    }
}
