//! # SchedInspector (reproduction)
//!
//! A from-scratch Rust reproduction of *"SchedInspector: A Batch Job
//! Scheduling Inspector Using Reinforcement Learning"* (Di Zhang, Dong Dai,
//! Bing Xie — HPDC 2022).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`swf`] — Standard Workload Format parser/writer;
//! * [`workload`] — job model, calibrated synthetic traces (SDSC-SP2,
//!   CTC-SP2, HPC2N), the Lublin–Feitelson model, statistics, sampling;
//! * [`simhpc`] — event-driven cluster simulator with rejection support
//!   and EASY backfilling (the SchedGym equivalent);
//! * [`policies`] — FCFS/LCFS/SJF/SAF/SRF/F1 and the Slurm multifactor
//!   priority policy;
//! * [`tinynn`] — a tiny MLP library with manual backprop and Adam;
//! * [`rlcore`] — PPO (clipped surrogate), actor–critic, trajectories,
//!   parallel rollouts;
//! * [`rlsched`] — an RLScheduler-style learned selector (the §6 baseline
//!   and §7 future-work combination partner);
//! * [`inspector`] — SchedInspector itself: feature building, reward
//!   functions, training, evaluation, analysis, model persistence;
//! * [`scenario`] — declarative multi-tenant scenario engine: TOML specs
//!   of user populations compile deterministically to SWF traces, typed
//!   [`scenario::LoadProfile`]s, and per-tenant fairness reports;
//! * [`serve`] — a micro-batched TCP decision service for trained
//!   inspectors (line-delimited JSON protocol) plus a load generator,
//!   with zero-drop hot-swapping of newly published model generations;
//! * [`store`] — an embedded LSM-style durable run store: checksummed
//!   write-ahead log, immutable segments, a versioned manifest, and a
//!   model registry driving crash-safe training and live serving swaps;
//! * [`dist`] — a coordinator/worker distributed PPO trainer with
//!   deterministic sharded rollouts, sync and decentralized (DD-PPO)
//!   merges, worker fail-over, and crash-safe journaling through the run
//!   store — byte-identical to the in-process trainer;
//! * [`obs`] — zero-cost-when-disabled telemetry (spans, counters, gauges,
//!   JSONL sidecars) threaded through the simulator and trainer, plus a
//!   live metrics registry with Prometheus text exposition and an offline
//!   sidecar report engine.
//!
//! See `examples/` for runnable walk-throughs and `crates/experiments` for
//! binaries regenerating every table and figure of the paper.

pub use dist;
pub use inspector;
pub use obs;
pub use policies;
pub use rlcore;
pub use rlsched;
pub use scenario;
pub use serve;
pub use simhpc;
pub use store;
pub use swf;
pub use tinynn;
pub use workload;

mod error;
pub use error::Error;

/// Convenience prelude for examples and downstream users.
pub mod prelude {
    pub use crate::Error;
    pub use dist::{
        run_worker, spawn_local_workers, Coordinator, DistConfig, DistError, DistReport, FrameKind,
        MergeMode, WorkerConfig, CHECKPOINT_KEY,
    };
    pub use inspector::{
        evaluate, factory_for, slurm_factory, EpisodeSpec, FeatureBuilder, FeatureMode,
        InspectorConfig, Normalizer, RewardKind, SchedInspector, Trainer, TrainerBuilder,
    };
    pub use obs::Telemetry;
    pub use policies::PolicyKind;
    pub use scenario::{
        Compiled, FairnessReport, LoadProfile, ScenarioSource, ScenarioSpec, TenantRange,
    };
    pub use simhpc::{Metric, SimConfig, SimResult, Simulator};
    pub use store::{ModelWatcher, RunStore, StoreConfig, StoreError, StoreStatus};
    pub use workload::{
        profiles, synthetic, Job, JobTrace, SequenceSampler, SourceError, SwfFileSource,
        SyntheticSource, TraceSource,
    };
}
