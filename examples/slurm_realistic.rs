//! Realistic setting (§4.5): SchedInspector on top of the Slurm
//! multifactor priority policy (age + fairshare + job attribute +
//! partition factors) with backfilling, on a trace with user and queue
//! information.
//!
//! ```sh
//! cargo run --release --example slurm_realistic
//! ```

use schedinspector::prelude::*;

fn main() {
    // SDSC-SP2 is the trace with user/queue fields in the paper; our
    // generator populates them for every trace.
    let trace = synthetic::generate(&profiles::SDSC_SP2, 4_000, 4242);
    let (train, test) = trace.split(0.2);

    // Slurm priorities need trace-derived shares: each user's assigned
    // share and each queue's priority come from observed CPU usage (§4.5).
    let factory = slurm_factory(&trace);

    let config = InspectorConfig {
        epochs: 15,
        batch_size: 32,
        seq_len: 64,
        seed: 3,
        sim: SimConfig::with_backfill(), // backfilling is Slurm's default
        ..Default::default()
    };
    println!("training SchedInspector over the Slurm multifactor policy...");
    let mut trainer = Trainer::builder(train)
        .factory(factory.clone())
        .config(config)
        .build()
        .expect("valid config");
    let history = trainer.train();
    let last = history.records.last().unwrap();
    println!(
        "final epoch: improvement {:+.2} bsld ({:+.1}%), rejection ratio {:.0}%",
        last.improvement,
        last.improvement_pct * 100.0,
        last.rejection_ratio * 100.0
    );

    let report = evaluate(
        &trainer.inspector(),
        &test,
        &factory,
        config.sim,
        20,
        128,
        17,
        0,
    );
    println!(
        "\nheld-out: Slurm bsld {:.2} -> inspected {:.2} ({:+.1}%)",
        report.mean_base(Metric::Bsld),
        report.mean_inspected(Metric::Bsld),
        report.improvement_pct(Metric::Bsld) * 100.0
    );
    println!(
        "utilization: {:.2}% -> {:.2}% (the paper reports <1% cost)",
        report.mean_base_util() * 100.0,
        report.mean_inspected_util() * 100.0
    );
}
