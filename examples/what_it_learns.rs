//! What does the inspector learn? (§5) Train a small model, replay a
//! workload recording every inspection decision, and print ASCII CDFs of
//! each feature for rejected vs. all samples — a terminal rendition of the
//! paper's Figure 13.
//!
//! ```sh
//! cargo run --release --example what_it_learns
//! ```

use inspector::analysis::{
    collect_decisions, feature_cdf, rejection_fraction, MANUAL_FEATURE_NAMES,
};
use schedinspector::prelude::*;

fn sparkline(cdf: &[(f32, f32)]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    cdf.iter()
        .map(|&(_, y)| BARS[((y * 7.0).round() as usize).min(7)])
        .collect()
}

fn main() {
    let trace = synthetic::generate(&profiles::SDSC_SP2, 4_000, 99);
    let (train, _) = trace.split(0.2);
    let config = InspectorConfig {
        epochs: 15,
        batch_size: 32,
        seq_len: 64,
        seed: 21,
        ..Default::default()
    };
    let factory = factory_for(PolicyKind::Sjf);
    println!("training [SJF, bsld, SDSC-SP2]...");
    let mut trainer = Trainer::builder(train)
        .factory(factory.clone())
        .config(config)
        .build()
        .expect("valid config");
    trainer.train();
    let agent = trainer.inspector();

    // Replay the whole trace with the trained model, recording decisions.
    let sim = Simulator::new(trace.procs, config.sim);
    let samples = collect_decisions(&agent, &sim, &trace.jobs, &factory);
    println!(
        "\n{} inspections recorded, {:.1}% rejected (paper: ~30%)\n",
        samples.len(),
        rejection_fraction(&samples) * 100.0
    );

    println!("feature CDFs over normalized [0,1] (20 buckets):");
    for (idx, name) in MANUAL_FEATURE_NAMES.iter().enumerate() {
        let all = feature_cdf(&samples, idx, 20, false);
        let rej = feature_cdf(&samples, idx, 20, true);
        println!("  {name:<18} all      {}", sparkline(&all));
        println!("  {:<18} rejected {}", "", sparkline(&rej));
    }
    println!(
        "\nReading: where the 'rejected' CDF rises faster than 'all', the\ninspector rejects disproportionately at those feature values —\nthe paper finds short waits, long runtimes, and high resource\nrequests drive rejections."
    );
}
