//! Workload explorer: generate any of the paper's traces, print its
//! Table 2 statistics and distribution summaries, and export it as a
//! Standard Workload Format (SWF) file usable by other simulators.
//!
//! ```sh
//! cargo run --release --example workload_explorer -- Lublin 5000 /tmp/lublin.swf
//! ```

use schedinspector::prelude::*;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

fn summarize(name: &str, mut values: Vec<f64>) {
    values.sort_by(|a, b| a.total_cmp(b));
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    println!(
        "  {name:<12} mean {mean:>10.1}  p50 {:>9.1}  p90 {:>9.1}  p99 {:>10.1}  max {:>10.1}",
        percentile(&values, 0.5),
        percentile(&values, 0.9),
        percentile(&values, 0.99),
        percentile(&values, 1.0)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("SDSC-SP2");
    let n_jobs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5_000);
    let trace = workload::SyntheticSource::new(name, n_jobs, 1234)
        .load()
        .unwrap_or_else(|e| panic!("cannot load trace {name:?}: {e}"));

    let s = trace.stats();
    println!(
        "{} — {} jobs on {} processors",
        trace.name, s.n_jobs, s.cluster_size
    );
    println!(
        "  offered load {:.2}, span {:.1} days\n",
        s.offered_load,
        s.span / 86_400.0
    );
    summarize(
        "interarrival",
        trace
            .jobs
            .windows(2)
            .map(|w| w[1].submit - w[0].submit)
            .collect(),
    );
    summarize("runtime", trace.jobs.iter().map(|j| j.runtime).collect());
    summarize("estimate", trace.jobs.iter().map(|j| j.estimate).collect());
    summarize("procs", trace.jobs.iter().map(|j| j.procs as f64).collect());

    let users: std::collections::HashSet<u32> = trace.jobs.iter().map(|j| j.user).collect();
    println!("\n  {} distinct users, {} queues", users.len(), {
        let q: std::collections::HashSet<u32> = trace.jobs.iter().map(|j| j.queue).collect();
        q.len()
    });

    if let Some(path) = args.get(3) {
        let swf = trace.to_swf();
        swf.write_file(std::path::Path::new(path))
            .expect("write SWF");
        println!("\nwrote SWF to {path}");
        // Round-trip sanity: the written file parses back identically.
        let back = swf::SwfTrace::read_file(std::path::Path::new(path)).expect("re-read");
        assert_eq!(back.records.len(), trace.len());
        println!(
            "round-trip check: {} records parsed back",
            back.records.len()
        );
    } else {
        println!("\n(pass an output path as the 3rd argument to export SWF)");
    }
    let _ = Job::new(0, 0.0, 1.0, 1.0, 1); // keep the prelude import honest
}
