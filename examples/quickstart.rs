//! Quickstart: generate a workload, train a small SchedInspector over SJF,
//! and measure the improvement on held-out job sequences.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use schedinspector::prelude::*;

fn main() {
    // 1. A synthetic SDSC-SP2-like trace calibrated to the paper's Table 2.
    let trace = synthetic::generate(&profiles::SDSC_SP2, 4_000, 42);
    let stats = trace.stats();
    println!(
        "trace {}: {} jobs, {} procs, mean interval {:.0}s, mean estimate {:.0}s",
        trace.name, stats.n_jobs, stats.cluster_size, stats.mean_interval, stats.mean_estimate
    );

    // 2. Split: first 20% trains, the rest evaluates (§4.4).
    let (train, test) = trace.split(0.2);

    // 3. Train an inspector over SJF toward average bounded slowdown.
    let config = InspectorConfig {
        epochs: 15,
        batch_size: 32,
        seq_len: 64,
        seed: 7,
        ..Default::default()
    };
    let factory = factory_for(PolicyKind::Sjf);
    let mut trainer = Trainer::builder(train)
        .factory(factory.clone())
        .config(config)
        .build()
        .expect("valid config");
    println!(
        "\ntraining {} epochs x {} trajectories...",
        config.epochs, config.batch_size
    );
    let history = trainer.train();
    for r in history.records.iter().step_by(3) {
        println!(
            "  epoch {:>2}: improvement {:+.2} bsld ({:+.1}%), rejection ratio {:.0}%",
            r.epoch,
            r.improvement,
            r.improvement_pct * 100.0,
            r.rejection_ratio * 100.0
        );
    }

    // 4. Evaluate greedily on held-out sequences.
    let inspector = trainer.inspector();
    let report = evaluate(&inspector, &test, &factory, config.sim, 20, 128, 99, 0);
    println!(
        "\nheld-out bsld: SJF {:.2} -> SJF+inspector {:.2} ({:+.1}%), util {:.1}% -> {:.1}%",
        report.mean_base(Metric::Bsld),
        report.mean_inspected(Metric::Bsld),
        report.improvement_pct(Metric::Bsld) * 100.0,
        report.mean_base_util() * 100.0,
        report.mean_inspected_util() * 100.0,
    );

    // 5. Persist the trained model.
    let path = std::env::temp_dir().join("schedinspector-quickstart.model");
    inspector::model_io::save(&inspector, &path).expect("save model");
    let reloaded = inspector::model_io::load(&path).expect("load model");
    assert_eq!(reloaded.features, inspector.features);
    println!(
        "\nmodel saved to {} and reloaded bit-identically",
        path.display()
    );
}
