//! Compare every base scheduling policy (Table 3) on the same workloads,
//! with and without EASY backfilling — the scenario the paper's
//! introduction motivates: different heuristics weight job features
//! differently and none dominates everywhere.
//!
//! ```sh
//! cargo run --release --example compare_policies
//! ```

use schedinspector::prelude::*;

fn main() {
    for trace_name in ["SDSC-SP2", "Lublin"] {
        let trace = workload::SyntheticSource::new(trace_name, 4_000, 11)
            .load()
            .unwrap();
        let mut sampler = SequenceSampler::new(trace.clone(), 256, 5);
        let sequences = sampler.sample_many(20);

        for backfill in [false, true] {
            let config = if backfill {
                SimConfig::with_backfill()
            } else {
                SimConfig::default()
            };
            let sim = Simulator::new(trace.procs, config);
            println!(
                "\n{} ({} sequences x 256 jobs, backfilling {}):",
                trace_name,
                sequences.len(),
                if backfill { "on" } else { "off" }
            );
            println!(
                "  {:<6} {:>8} {:>10} {:>9} {:>7}",
                "policy", "bsld", "wait(s)", "mbsld", "util"
            );
            for kind in PolicyKind::ALL {
                let mut bsld = 0.0;
                let mut wait = 0.0;
                let mut mbsld = 0.0;
                let mut util = 0.0;
                for (_, jobs) in &sequences {
                    let mut policy = kind.build();
                    let r = sim.run(jobs, policy.as_mut());
                    bsld += r.bsld();
                    wait += r.wait();
                    mbsld += r.mbsld();
                    util += r.util();
                }
                let n = sequences.len() as f64;
                println!(
                    "  {:<6} {:>8.2} {:>10.0} {:>9.1} {:>6.1}%",
                    kind.name(),
                    bsld / n,
                    wait / n,
                    mbsld / n,
                    util / n * 100.0
                );
            }
        }
    }
    println!(
        "\nNote how SJF/SAF/F1 dominate bsld while FCFS avoids starvation\n(mbsld) — the heuristic trade-off SchedInspector works on top of."
    );
}
