//! Integration test: the paper's §2.1 motivating example (Table 1),
//! reconstructed end-to-end through the public API — workload jobs, the
//! SJF policy, the simulator, and a scripted inspector.

use schedinspector::prelude::*;
use simhpc::{InspectorHook, Observation};

const MIN: f64 = 60.0;

struct RejectFirst {
    target: u64,
    done: bool,
}

impl InspectorHook for RejectFirst {
    fn inspect(&mut self, obs: &Observation) -> bool {
        if !self.done && obs.job.id == self.target {
            self.done = true;
            return true;
        }
        false
    }
}

fn job(id: u64, submit_min: f64, exe_min: f64, procs: u32) -> Job {
    Job::new(id, submit_min * MIN, exe_min * MIN, exe_min * MIN, procs)
}

/// Case (b) of Fig. 1 — paper-exact numbers.
fn case_b() -> Vec<Job> {
    vec![
        job(0, 0.0, 3.0, 2), // Jp (preliminary, excluded from metrics)
        job(1, 0.0, 5.0, 4), // J0
        job(2, 1.0, 3.0, 2), // J1
    ]
}

fn metrics_excluding_jp(result: &SimResult) -> (f64, f64) {
    let jobs: Vec<_> = result.outcomes.iter().filter(|o| o.id != 0).collect();
    let wait = jobs.iter().map(|o| o.wait()).sum::<f64>() / jobs.len() as f64 / MIN;
    let bsld = jobs.iter().map(|o| o.bsld()).sum::<f64>() / jobs.len() as f64;
    (wait, bsld)
}

#[test]
fn case_b_without_inspector_matches_table1() {
    let sim = Simulator::new(5, SimConfig::default());
    let r = sim.run(&case_b(), &mut policies::Sjf);
    let (wait, bsld) = metrics_excluding_jp(&r);
    // Table 1: wait (3+7)/2 = 5; bsld (1.6 + 3.33)/2 ≈ 2.47.
    assert!((wait - 5.0).abs() < 1e-9, "wait {wait}");
    assert!(
        (bsld - (1.6 + 10.0 / 3.0) / 2.0).abs() < 1e-9,
        "bsld {bsld}"
    );
}

#[test]
fn case_b_with_inspector_matches_table1() {
    let sim = Simulator::new(5, SimConfig::default());
    let mut hook = RejectFirst {
        target: 1,
        done: false,
    };
    let r = sim.run_inspected(&case_b(), &mut policies::Sjf, &mut hook);
    let (wait, bsld) = metrics_excluding_jp(&r);
    // Table 1: wait (4+0)/2 = 2; bsld (1.8+1)/2 = 1.4.
    assert!((wait - 2.0).abs() < 1e-9, "wait {wait}");
    assert!((bsld - 1.4).abs() < 1e-9, "bsld {bsld}");
    assert_eq!(r.rejections, 1);
}

#[test]
fn case_b_exact_timeline() {
    let sim = Simulator::new(5, SimConfig::default());
    let r = sim.run(&case_b(), &mut policies::Sjf);
    let start = |id: u64| r.outcomes.iter().find(|o| o.id == id).unwrap().start / MIN;
    assert_eq!(start(0), 0.0, "Jp starts immediately");
    assert_eq!(start(1), 3.0, "J0 waits for Jp to release nodes");
    assert_eq!(start(2), 8.0, "J1 waits for J0 (committed selection)");

    let mut hook = RejectFirst {
        target: 1,
        done: false,
    };
    let r = sim.run_inspected(&case_b(), &mut policies::Sjf, &mut hook);
    let start = |id: u64| r.outcomes.iter().find(|o| o.id == id).unwrap().start / MIN;
    assert_eq!(start(2), 1.0, "after the rejection, J1 runs at its arrival");
    assert_eq!(start(1), 4.0, "J0 runs when J1's nodes free up");
}

/// The rejection must leave the machine idle in between — check that the
/// utilization cost of the inspection is visible but bounded, as §4.4.6
/// argues.
#[test]
fn rejection_cost_is_visible_in_utilization() {
    let sim = Simulator::new(5, SimConfig::default());
    let base = sim.run(&case_b(), &mut policies::Sjf);
    let mut hook = RejectFirst {
        target: 1,
        done: false,
    };
    let inspected = sim.run_inspected(&case_b(), &mut policies::Sjf, &mut hook);
    // Here the inspected schedule is strictly shorter, so util improves;
    // both must stay in (0, 1].
    assert!(base.util() > 0.0 && base.util() <= 1.0);
    assert!(inspected.util() > 0.0 && inspected.util() <= 1.0);
    assert!(inspected.makespan() < base.makespan());
}
