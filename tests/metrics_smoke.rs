//! Metrics-exposition smoke test: a short training run and a live decision
//! service must both answer `GET /metrics` with well-formed Prometheus text
//! containing at least one counter, gauge, and histogram family, and the
//! sidecar written alongside training must survive the offline report
//! engine (per-epoch summaries, span tree, throughput checks).
//!
//! This is the in-tree version of the CI smoke steps
//! (`--metrics-addr` + `curl /metrics` + `schedinspector report`).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use schedinspector::obs;
use schedinspector::obs::json::Json;
use schedinspector::prelude::*;
use schedinspector::rlcore::BinaryPolicy;
use schedinspector::serve::{serve, ServeConfig};

/// One raw HTTP/1.1 scrape of `/metrics`; returns (status line, body).
fn scrape(addr: std::net::SocketAddr) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to exporter");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("send scrape");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read full response (server closes)");
    let status = response.lines().next().unwrap_or("").to_string();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Every non-comment exposition line must be `name{labels} value` with a
/// legal metric name and a parsable sample value.
fn assert_well_formed(body: &str) {
    let legal = |s: &str| {
        let mut chars = s.chars();
        matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
            && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("sample has a name");
        let value = parts.next().expect("sample has a value");
        assert!(parts.next().is_none(), "extra tokens: {line}");
        let bare = name.split('{').next().unwrap();
        assert!(legal(bare), "illegal metric name in {line:?}");
        assert!(
            value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN"),
            "unparsable sample value in {line:?}"
        );
    }
}

fn sample_value(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn training_with_registry_exposes_metrics_and_report_analyzes_the_sidecar() {
    let trace = synthetic::generate(&profiles::SDSC_SP2, 1_200, 17);
    let (train, _) = trace.split(0.2);
    let config = InspectorConfig {
        epochs: 2,
        batch_size: 8,
        seq_len: 32,
        seed: 5,
        workers: 2,
        ..Default::default()
    };

    let path = std::env::temp_dir().join("schedinspector-metrics-smoke.jsonl");
    std::fs::remove_file(&path).ok();
    let registry = Arc::new(obs::Registry::new());
    let telemetry = Telemetry::jsonl_with_registry(&path, Arc::clone(&registry))
        .expect("create sidecar with registry tee");
    let exporter =
        obs::MetricsExporter::bind("127.0.0.1:0", Arc::clone(&registry), telemetry.clone())
            .expect("bind ephemeral metrics port");

    Trainer::builder(train)
        .policy(PolicyKind::Sjf)
        .config(config)
        .telemetry(telemetry.clone())
        .build()
        .expect("valid config")
        .train();
    telemetry.flush();

    let (status, body) = scrape(exporter.local_addr());
    exporter.shutdown();
    assert!(status.contains("200"), "scrape failed: {status}");
    assert_well_formed(&body);

    // At least one family of each kind, fed live by the training telemetry.
    assert!(body.contains("# TYPE schedinspector_train_episodes_total counter"));
    assert!(body.contains("# TYPE schedinspector_train_epoch gauge"));
    assert!(body.contains("# TYPE schedinspector_span_epoch_seconds histogram"));
    assert!(body.contains("schedinspector_span_epoch_seconds_bucket{le=\"+Inf\"} 2"));
    assert_eq!(
        sample_value(&body, "schedinspector_train_episodes_total"),
        Some((config.epochs * config.batch_size) as f64),
        "episodes counter aggregates both epochs"
    );
    // Heartbeats feed the episodes/sec gauge.
    assert!(sample_value(&body, "schedinspector_train_episodes_per_sec").unwrap_or(0.0) > 0.0);

    // The same sidecar drives the offline report engine.
    let report = obs::report::analyze_file(&path).expect("sidecar analyzes cleanly");
    assert_eq!(report.epochs.len(), config.epochs);
    let eps = report.rollout_eps().expect("rollout throughput measured");
    assert!(eps > 0.0);
    let mut rendered = String::new();
    report.render(&mut rendered);
    assert!(rendered.contains("epoch"), "report renders an epoch table");

    // Throughput regression semantics against a fabricated baseline.
    let generous = obs::json::parse(&format!(
        r#"{{"episodes_per_sec":[{{"workers":1,"optimized":{:.3}}}]}}"#,
        eps / 10.0
    ))
    .unwrap();
    let harsh = obs::json::parse(&format!(
        r#"{{"episodes_per_sec":[{{"workers":1,"optimized":{:.3}}}]}}"#,
        eps * 10.0
    ))
    .unwrap();
    let ok = obs::report::throughput_checks(&report, Some(&generous), None, None, 0.5);
    assert_eq!(ok.len(), 1);
    assert!(!ok[0].regressed(), "10x slower baseline cannot regress");
    let bad = obs::report::throughput_checks(&report, Some(&harsh), None, None, 0.5);
    assert!(bad[0].regressed(), "10x faster baseline must regress");

    std::fs::remove_file(&path).ok();
}

#[test]
fn serve_metrics_endpoint_reads_the_same_atomics_as_the_stats_verb() {
    let fb = FeatureBuilder {
        mode: FeatureMode::Manual,
        metric: Metric::Bsld,
        norm: Normalizer::new(256, 7_200.0),
    };
    let dim = fb.dim();
    let agent = SchedInspector::new(BinaryPolicy::new(dim, 23), fb);
    let handle = serve(
        agent,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            ..ServeConfig::default()
        },
        Telemetry::disabled(),
    )
    .expect("bind ephemeral serve port");
    let exporter =
        obs::MetricsExporter::bind("127.0.0.1:0", handle.registry(), Telemetry::disabled())
            .expect("bind ephemeral metrics port");

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let features = vec!["0.5"; dim].join(",");
    for id in 0..3u64 {
        let line = format!("{{\"verb\":\"infer\",\"id\":{id},\"features\":[{features}]}}\n");
        stream.write_all(line.as_bytes()).unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"id\""), "unexpected reply: {reply}");
    }
    stream.write_all(b"{\"verb\":\"stats\"}\n").unwrap();
    let mut stats_reply = String::new();
    reader.read_line(&mut stats_reply).unwrap();
    let stats = obs::json::parse(stats_reply.trim()).expect("stats reply is JSON");
    let verb_requests = stats
        .get("stats")
        .and_then(|s| s.get("requests"))
        .and_then(Json::as_f64)
        .expect("stats verb reports request count");

    let (status, body) = scrape(exporter.local_addr());
    assert!(status.contains("200"), "scrape failed: {status}");
    assert_well_formed(&body);
    assert!(body.contains("# TYPE schedinspector_serve_requests_total counter"));
    assert!(body.contains("# TYPE schedinspector_serve_queue_depth gauge"));
    assert!(body.contains("# TYPE schedinspector_serve_e2e_seconds histogram"));

    // Same storage: the exposition sample equals the verb's snapshot
    // (no requests were sent between the two reads).
    assert_eq!(
        sample_value(&body, "schedinspector_serve_requests_total"),
        Some(verb_requests)
    );
    assert!(
        sample_value(&body, "schedinspector_serve_e2e_seconds_count").unwrap_or(0.0) >= 3.0,
        "e2e latency histogram observed the infer requests"
    );

    exporter.shutdown();
    handle.shutdown();
}
