//! Telemetry smoke test: a short training run with a JSONL sidecar must
//! produce a file where every line parses under the documented schema and
//! whose counters reconcile with the returned [`TrainingHistory`].
//!
//! This is the in-tree version of the CI smoke step
//! (`schedinspector train --telemetry out.jsonl` + `check-telemetry`).

use schedinspector::obs;
use schedinspector::prelude::*;

#[test]
fn two_epoch_jsonl_sidecar_parses_and_reconciles_with_history() {
    let trace = synthetic::generate(&profiles::SDSC_SP2, 1_200, 11);
    let (train, _) = trace.split(0.2);
    let config = InspectorConfig {
        epochs: 2,
        batch_size: 8,
        seq_len: 32,
        seed: 3,
        workers: 2,
        ..Default::default()
    };

    let path = std::env::temp_dir().join("schedinspector-telemetry-smoke.jsonl");
    std::fs::remove_file(&path).ok();
    let telemetry = Telemetry::jsonl(&path).expect("create sidecar");
    let history = Trainer::builder(train)
        .policy(PolicyKind::Sjf)
        .config(config)
        .telemetry(telemetry.clone())
        .build()
        .expect("valid config")
        .train();
    telemetry.flush();

    let text = std::fs::read_to_string(&path).expect("read sidecar");
    let mut epoch_closes = 0usize;
    let mut episodes = 0u64;
    let mut inspections = 0u64;
    let mut rejections = 0u64;
    let mut sim_decisions = 0u64;
    let mut mean_rewards = 0usize;
    let mut lines = 0usize;
    for (i, line) in text.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let event = obs::json::validate_telemetry_line(line)
            .unwrap_or_else(|e| panic!("line {}: invalid telemetry: {e}", i + 1));
        lines += 1;
        let kind = event.get("kind").and_then(|k| k.as_str()).unwrap();
        let name = event.get("name").and_then(|n| n.as_str()).unwrap();
        let delta = || event.get("delta").and_then(|d| d.as_f64()).unwrap() as u64;
        match (kind, name) {
            ("span_close", "epoch") => epoch_closes += 1,
            ("counter", "train.episodes") => episodes += delta(),
            ("counter", "train.inspections") => inspections += delta(),
            ("counter", "train.rejections") => rejections += delta(),
            ("counter", "sim.accept") | ("counter", "sim.reject") => sim_decisions += delta(),
            ("gauge", "epoch.mean_reward") => mean_rewards += 1,
            _ => {}
        }
    }
    assert!(lines > 0, "sidecar is empty");

    // One epoch span and one mean-reward gauge per training epoch; counter
    // totals must equal what the trainer reported back through the history.
    assert_eq!(history.records.len(), config.epochs);
    assert_eq!(epoch_closes, config.epochs);
    assert_eq!(mean_rewards, config.epochs);
    assert_eq!(episodes, (config.epochs * config.batch_size) as u64);
    let hist_inspections: u64 = history.records.iter().map(|r| r.inspections).sum();
    let hist_rejections: u64 = history.records.iter().map(|r| r.rejections).sum();
    assert_eq!(inspections, hist_inspections);
    assert_eq!(rejections, hist_rejections);
    // Every inspected scheduling point is either accepted or rejected.
    assert_eq!(sim_decisions, hist_inspections);

    std::fs::remove_file(&path).ok();
}
