//! Cross-crate integration: trace generation → training → evaluation →
//! model persistence, through the facade crate's public API only.

use schedinspector::prelude::*;

fn quick_config(seed: u64) -> InspectorConfig {
    InspectorConfig {
        epochs: 4,
        batch_size: 8,
        seq_len: 32,
        seed,
        workers: 2,
        ..Default::default()
    }
}

#[test]
fn train_evaluate_save_load_roundtrip() {
    let trace = synthetic::generate(&profiles::SDSC_SP2, 1_500, 5);
    let (train, test) = trace.split(0.2);
    let factory = factory_for(PolicyKind::Sjf);
    let config = quick_config(1);
    let mut trainer = Trainer::builder(train)
        .factory(factory.clone())
        .config(config)
        .build()
        .expect("valid config");
    let history = trainer.train();
    assert_eq!(history.records.len(), 4);

    let agent = trainer.inspector();
    let report = evaluate(&agent, &test, &factory, config.sim, 5, 48, 9, 0);
    assert_eq!(report.cases.len(), 5);
    assert!(report.mean_base(Metric::Bsld) >= 1.0);

    // Persist and reload; the reloaded agent must evaluate identically.
    let path = std::env::temp_dir().join("schedinspector-e2e.model");
    inspector::model_io::save(&agent, &path).unwrap();
    let reloaded = inspector::model_io::load(&path).unwrap();
    let report2 = evaluate(&reloaded, &test, &factory, config.sim, 5, 48, 9, 0);
    assert_eq!(report, report2, "reloaded model must behave identically");
    std::fs::remove_file(&path).ok();
}

#[test]
fn inspector_never_loses_jobs() {
    // Whatever the (untrained, hence erratic) inspector does, every job of
    // every sequence must eventually complete exactly once.
    let trace = synthetic::generate(&profiles::HPC2N, 1_000, 6);
    let factory = factory_for(PolicyKind::Saf);
    let sim = Simulator::new(trace.procs, SimConfig::default());
    let agent = {
        let fb = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Bsld,
            norm: Normalizer::new(trace.procs, trace.stats().max_estimate),
        };
        SchedInspector::new(rlcore::BinaryPolicy::new(fb.dim(), 77), fb)
    };
    for start in [0usize, 200, 500] {
        let jobs = trace.sequence(start, 150);
        let mut policy = factory();
        let mut hook = agent.hook();
        let result = sim.run_inspected(&jobs, policy.as_mut(), &mut hook);
        assert_eq!(result.outcomes.len(), jobs.len());
        let mut ids: Vec<u64> = result.outcomes.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), jobs.len(), "every job completes exactly once");
        for o in &result.outcomes {
            assert!(o.start >= o.submit, "no job starts before submission");
        }
    }
}

#[test]
fn backfilling_never_hurts_fcfs_makespan_on_average() {
    // EASY backfilling is work-conserving relative to plain FCFS: over a
    // set of sequences, mean utilization must not degrade.
    let trace = synthetic::generate(&profiles::SDSC_SP2, 2_000, 17);
    let mut sampler = SequenceSampler::new(trace.clone(), 128, 3);
    let plain = Simulator::new(trace.procs, SimConfig::default());
    let easy = Simulator::new(trace.procs, SimConfig::with_backfill());
    let mut util_plain = 0.0;
    let mut util_easy = 0.0;
    let n = 10;
    for _ in 0..n {
        let (_, jobs) = sampler.sample();
        util_plain += plain.run(&jobs, &mut policies::Fcfs).util();
        util_easy += easy.run(&jobs, &mut policies::Fcfs).util();
    }
    assert!(
        util_easy >= util_plain - 1e-9,
        "backfilling should not reduce mean utilization: {util_easy} vs {util_plain}"
    );
}

#[test]
fn all_policies_complete_all_traces() {
    for name in ["SDSC-SP2", "CTC-SP2", "HPC2N", "Lublin"] {
        let trace = workload::SyntheticSource::new(name, 600, 2).load().unwrap();
        let jobs = trace.sequence(100, 128);
        let sim = Simulator::new(trace.procs, SimConfig::default());
        for kind in PolicyKind::ALL {
            let mut p = kind.build();
            let r = sim.run(&jobs, p.as_mut());
            assert_eq!(r.outcomes.len(), jobs.len(), "{name}/{}", kind.name());
        }
        // Slurm too.
        let factory = slurm_factory(&trace);
        let r = sim.run(&jobs, factory().as_mut());
        assert_eq!(r.outcomes.len(), jobs.len(), "{name}/Slurm");
    }
}
