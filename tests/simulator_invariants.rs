//! Property-based integration tests: simulator conservation invariants
//! under random workloads, policies, and inspector behaviors.

use proptest::prelude::*;
use schedinspector::prelude::*;
use simhpc::Observation;

/// Strategy: a random but valid job list for a `procs`-wide machine.
fn jobs_strategy(procs: u32, max_jobs: usize) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (
            0.0f64..50_000.0,
            1.0f64..20_000.0,
            1.0f64..3.0,
            1u32..=procs,
        ),
        1..max_jobs,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (submit, runtime, over, procs))| {
                Job::new(i as u64 + 1, submit, runtime, runtime * over, procs)
            })
            .collect()
    })
}

fn sorted(mut jobs: Vec<Job>) -> Vec<Job> {
    jobs.sort_by(|a, b| a.submit.total_cmp(&b.submit).then(a.id.cmp(&b.id)));
    jobs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every job completes exactly once, starts after submission, and the
    /// cluster is never over-allocated — for every policy, with and
    /// without backfilling.
    #[test]
    fn conservation_under_all_policies(
        jobs in jobs_strategy(16, 40),
        backfill in any::<bool>(),
        policy_idx in 0usize..6,
    ) {
        let jobs = sorted(jobs);
        let config = SimConfig { backfill, ..SimConfig::default() };
        let sim = Simulator::new(16, config);
        let kind = PolicyKind::ALL[policy_idx];
        let mut policy = kind.build();
        let r = sim.run(&jobs, policy.as_mut());

        prop_assert_eq!(r.outcomes.len(), jobs.len());
        for o in &r.outcomes {
            prop_assert!(o.start >= o.submit - 1e-9);
            prop_assert!((o.end - o.start - o.runtime).abs() < 1e-6);
        }
        // Sweep for over-allocation.
        let mut events: Vec<(f64, i64)> = Vec::new();
        for o in &r.outcomes {
            events.push((o.start, o.procs as i64));
            events.push((o.end, -(o.procs as i64)));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut used = 0i64;
        for (_, d) in events {
            used += d;
            prop_assert!(used <= 16, "over-allocation: {}", used);
        }
    }

    /// A randomly rejecting inspector cannot lose or duplicate jobs, and
    /// the rejection cap bounds the number of rejections per job.
    #[test]
    fn random_rejections_preserve_jobs(
        jobs in jobs_strategy(8, 30),
        rej_mask in any::<u64>(),
        cap in 1u32..6,
    ) {
        let jobs = sorted(jobs);
        let config = SimConfig { max_rejections: cap, max_interval: 300.0, backfill: false };
        let sim = Simulator::new(8, config);
        let mut counter = 0u64;
        let mut hook = move |_: &Observation| {
            counter = counter.wrapping_add(1);
            (rej_mask >> (counter % 64)) & 1 == 1
        };
        let r = sim.run_inspected(&jobs, &mut policies::Sjf, &mut hook);
        prop_assert_eq!(r.outcomes.len(), jobs.len());
        for o in &r.outcomes {
            prop_assert!(o.rejections <= cap);
        }
        prop_assert!(r.rejections <= jobs.len() as u64 * cap as u64);
    }

    /// bsld is always ≥ 1 and wait ≥ 0; util within (0, 1] for non-empty
    /// runs.
    #[test]
    fn metric_ranges(jobs in jobs_strategy(12, 30)) {
        let jobs = sorted(jobs);
        let sim = Simulator::new(12, SimConfig::default());
        let r = sim.run(&jobs, &mut policies::Fcfs);
        prop_assert!(r.bsld() >= 1.0);
        prop_assert!(r.mbsld() >= r.bsld() - 1e-9);
        prop_assert!(r.wait() >= 0.0);
        prop_assert!(r.util() > 0.0 && r.util() <= 1.0 + 1e-9);
    }

    /// FCFS without backfilling serves jobs in submission order.
    #[test]
    fn fcfs_preserves_arrival_order(jobs in jobs_strategy(8, 25)) {
        let jobs = sorted(jobs);
        let sim = Simulator::new(8, SimConfig::default());
        let r = sim.run(&jobs, &mut policies::Fcfs);
        // Starts, ordered by job submission, must be non-decreasing.
        let mut by_submit: Vec<_> = r.outcomes.clone();
        by_submit.sort_by(|a, b| a.submit.total_cmp(&b.submit).then(a.id.cmp(&b.id)));
        for w in by_submit.windows(2) {
            prop_assert!(w[0].start <= w[1].start + 1e-9);
        }
    }
}
