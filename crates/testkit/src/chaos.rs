//! The chaos soak: drive a real [`serve`] server through a seeded
//! [`FaultPlan`](crate::FaultPlan) and check the invariants that must
//! survive *any* fault sequence:
//!
//! 1. no server thread panics;
//! 2. every accepted infer request terminates exactly once — the ledger
//!    `requests == ok + deadline_exceeded + overloaded + bad_dim +
//!    draining_rejected` balances after the drain;
//! 3. per connection, responses are an in-order prefix of the expected
//!    response sequence (nothing reordered, nothing duplicated, nothing
//!    invented);
//! 4. clients never observe more outcomes of a category than the server
//!    counted;
//! 5. the `/metrics` exposition agrees exactly with the `stats` counters
//!    (same atomics, zero drift);
//! 6. graceful shutdown still drains — enforced by a watchdog that prints
//!    the `(fault_seed, workload_seed)` reproduction pair and exits if the
//!    drain hangs.
//!
//! Every failure message embeds the seed pair, and
//! [`ChaosConfig::new`] derives everything else from it, so a red run is
//! reproducible from the printed seeds alone.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use inspector::{FeatureBuilder, FeatureMode, Normalizer, SchedInspector};
use obs::trace::{derive_trace_id, hex16, splitmix64, summarize};
use obs::{SpanStatus, Telemetry};
use rlcore::BinaryPolicy;
use serve::protocol::{self, Response};
use serve::{serve_with, ServeConfig, TraceConfig};
use simhpc::Metric;

use crate::fault::{render_fault_log, FaultConfig, FaultPlan, SplitMix64};

/// What one request line expects back.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Expect {
    /// Infer with this id: a decision or a typed id-carrying error.
    /// `trace` is the id stamped on the wire (0 = untraced soak).
    Infer { id: u64, trace: u64 },
    /// A pong.
    Ping,
    /// Junk: a `malformed` error with no id.
    Junk,
}

/// Soak parameters. All randomness derives from the two seeds.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fault schedule.
    pub fault: FaultConfig,
    /// Seed of the client workload (request mix, feature values).
    pub workload_seed: u64,
    /// Concurrent client threads (each owns its connections serially).
    pub clients: usize,
    /// Connections each client opens, one after another.
    pub conns_per_client: usize,
    /// Request lines pipelined per connection.
    pub requests_per_conn: usize,
    /// Server worker threads (keep ≥ `clients` so open connections cannot
    /// starve each other).
    pub workers: usize,
    /// Engine shards (consistent per-connection routing). The default soak
    /// uses 2 so every run exercises the sharded handoff path and the
    /// per-shard ledger reconciliation below.
    pub shards: usize,
    /// Abort the run (exit code 3, after printing the seed pair) if the
    /// post-soak drain takes longer than this. 0 disables the watchdog.
    pub watchdog_secs: u64,
    /// Mid-soak model hot-swaps to publish while clients hammer the
    /// server (0 disables). Each swap installs a differently-seeded
    /// network of the same shape; the harness then asserts the exact
    /// request ledger *still* balances, `serve.model.generation` advanced
    /// by exactly this count, and `/metrics` agrees — i.e. zero requests
    /// were dropped or misrouted across any swap.
    pub swaps: u64,
    /// Stamp a trace id on every infer line and, after the drain, assert
    /// that every request a client saw a terminal answer for reconstructs
    /// from the flight recorder as a complete span chain — gap-free
    /// decision chain or deliberate `dropped` terminal — whose status
    /// matches the observed outcome and whose model generation is one the
    /// server actually published.
    pub trace: bool,
}

impl ChaosConfig {
    /// The standard soak for a `(fault_seed, workload_seed)` pair.
    pub fn new(fault_seed: u64, workload_seed: u64) -> Self {
        ChaosConfig {
            fault: FaultConfig::standard(fault_seed),
            workload_seed,
            clients: 4,
            conns_per_client: 8,
            requests_per_conn: 6,
            workers: 4,
            shards: 2,
            watchdog_secs: 60,
            swaps: 0,
            trace: false,
        }
    }
}

/// Client-side tallies, accumulated across all connections.
#[derive(Debug, Default, Clone)]
pub struct ClientTally {
    /// Infer lines written (whether or not a response arrived).
    pub infer_sent: u64,
    /// Decisions received.
    pub decisions: u64,
    /// `deadline_exceeded` errors received.
    pub deadline: u64,
    /// `overloaded` errors with an id (queue-full rejections).
    pub overloaded: u64,
    /// `overloaded` errors without an id (accept-time backlog rejections).
    pub accept_overloaded: u64,
    /// `bad_request` errors received (wrong-dimension infers).
    pub bad_request: u64,
    /// `malformed` errors received (junk lines).
    pub malformed: u64,
    /// `shutting_down` errors received.
    pub draining: u64,
    /// Pongs received.
    pub pongs: u64,
    /// Connections that ended early (reset, EOF, timeout).
    pub conn_errors: u64,
    /// `(trace_id, terminal status)` for every traced infer the client got
    /// an answer for — the population the flight-recorder audit replays.
    pub traced: Vec<(u64, SpanStatus)>,
    /// Ordering/correlation violations (must stay empty).
    pub violations: Vec<String>,
}

impl ClientTally {
    fn merge(&mut self, other: ClientTally) {
        self.infer_sent += other.infer_sent;
        self.decisions += other.decisions;
        self.deadline += other.deadline;
        self.overloaded += other.overloaded;
        self.accept_overloaded += other.accept_overloaded;
        self.bad_request += other.bad_request;
        self.malformed += other.malformed;
        self.draining += other.draining;
        self.pongs += other.pongs;
        self.conn_errors += other.conn_errors;
        self.traced.extend(other.traced);
        self.violations.extend(other.violations);
    }
}

/// Everything the soak observed, plus the invariant verdict.
#[derive(Debug)]
pub struct ChaosReport {
    /// The seed pair that reproduces this run.
    pub fault_seed: u64,
    /// See [`ChaosReport::fault_seed`].
    pub workload_seed: u64,
    /// Aggregated client observations.
    pub client: ClientTally,
    /// Server counters after the drain, as `(name, value)` pairs.
    pub server: Vec<(String, u64)>,
    /// Invariant violations (empty = green run).
    pub violations: Vec<String>,
    /// Rendered fault log (the CI artifact on failure).
    pub fault_log: String,
}

impl ChaosReport {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable summary (one screen).
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos soak: fault_seed={} workload_seed={}\n",
            self.fault_seed, self.workload_seed
        );
        out.push_str(&format!(
            "client: {} infers sent, {} decisions, {} deadline, {} overloaded, {} bad_request, \
             {} malformed, {} draining, {} pongs, {} conn errors\n",
            self.client.infer_sent,
            self.client.decisions,
            self.client.deadline,
            self.client.overloaded,
            self.client.bad_request,
            self.client.malformed,
            self.client.draining,
            self.client.pongs,
            self.client.conn_errors
        ));
        out.push_str("server: ");
        for (name, value) in &self.server {
            out.push_str(&format!("{name}={value} "));
        }
        out.push('\n');
        out.push_str(&format!(
            "faults injected: {}\n",
            self.fault_log.lines().count()
        ));
        if self.violations.is_empty() {
            out.push_str("PASS: all invariants held\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION: {v}\n"));
            }
            out.push_str(&format!(
                "reproduce with: cargo run -p testkit --bin chaos -- \
                 --fault-seed {} --workload-seed {}\n",
                self.fault_seed, self.workload_seed
            ));
        }
        out
    }
}

fn tiny_inspector(seed: u64) -> SchedInspector {
    let fb = FeatureBuilder {
        mode: FeatureMode::Manual,
        metric: Metric::Bsld,
        norm: Normalizer::new(64, 3600.0),
    };
    SchedInspector::new(BinaryPolicy::new(fb.dim(), seed), fb)
}

/// Run one soak to completion and report.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let inspector = tiny_inspector(cfg.workload_seed);
    let dim = inspector.input_dim();
    let plan = FaultPlan::new(cfg.fault);
    let fault_log_handle = plan.log();
    // Traced soaks keep promotion out of the picture (unreachable slow
    // threshold, no journal): the audit below reads the ring directly, so
    // it exercises recording under faults without conflating sink I/O.
    let trace = cfg.trace.then_some(TraceConfig {
        ring_capacity: 1 << 13,
        slow_us: u64::MAX,
        store_dir: None,
        dump_path: None,
    });
    let handle = serve_with(
        inspector,
        ServeConfig {
            workers: cfg.workers.max(1),
            shards: cfg.shards.max(1),
            // Shutdown is driven by the harness, not by a (possibly
            // corrupted) wire verb.
            allow_shutdown_verb: false,
            read_timeout_ms: 10,
            trace,
            ..ServeConfig::default()
        },
        Telemetry::disabled(),
        plan,
    )
    .expect("bind chaos server");
    let addr = handle.addr();

    let mut client = ClientTally::default();
    let mut swap_violations: Vec<String> = Vec::new();
    // Scoped so the mid-soak swapper can borrow the server handle while
    // client threads hammer it.
    let swaps_done: u64 = std::thread::scope(|s| {
        let mut threads = Vec::new();
        for client_idx in 0..cfg.clients.max(1) {
            let cfg = cfg.clone();
            threads.push(s.spawn(move || {
                let mut rng = SplitMix64::for_conn(cfg.workload_seed, client_idx as u64);
                let mut tally = ClientTally::default();
                for conn in 0..cfg.conns_per_client {
                    // Request ids restart at 1 per connection, so trace
                    // ids are derived under a globally unique tag.
                    let conn_tag = (client_idx * cfg.conns_per_client + conn) as u64;
                    run_connection(addr, dim, &cfg, conn_tag, &mut rng, &mut tally);
                }
                tally
            }));
        }
        let swapper = (cfg.swaps > 0).then(|| {
            s.spawn(|| -> Result<u64, String> {
                let base = handle.model_generation();
                for i in 1..=cfg.swaps {
                    // A different same-shape network per generation,
                    // derived from the workload seed for reproducibility.
                    let net = tiny_inspector(cfg.workload_seed ^ (0xA11C_E000 + i))
                        .policy
                        .mlp()
                        .clone();
                    handle
                        .swap_model(base + i, net)
                        .map_err(|e| format!("mid-soak swap {i} rejected: {e}"))?;
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(cfg.swaps)
            })
        });
        for t in threads {
            match t.join() {
                Ok(tally) => client.merge(tally),
                Err(_) => client.violations.push("client thread panicked".to_string()),
            }
        }
        match swapper.map(|sw| sw.join()) {
            None => 0,
            Some(Ok(Ok(done))) => done,
            Some(Ok(Err(msg))) => {
                swap_violations.push(msg);
                0
            }
            Some(Err(_)) => {
                swap_violations.push("swapper thread panicked".to_string());
                0
            }
        }
    });

    // The drain must finish; a hang is itself an invariant violation. The
    // watchdog prints the reproduction pair before killing the process so
    // CI logs are actionable.
    let drained = Arc::new(AtomicBool::new(false));
    if cfg.watchdog_secs > 0 {
        let drained = Arc::clone(&drained);
        let (fs, ws) = (cfg.fault.seed, cfg.workload_seed);
        let deadline = cfg.watchdog_secs * 10;
        std::thread::spawn(move || {
            for _ in 0..deadline {
                if drained.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            eprintln!(
                "chaos watchdog: drain hung; reproduce with \
                 --fault-seed {fs} --workload-seed {ws}"
            );
            std::process::exit(3);
        });
    }
    let stats = handle.stats();
    let registry = handle.registry();
    let final_generation = handle.model_generation();
    let recorder = handle.recorder();
    handle.shutdown();
    drained.store(true, Ordering::SeqCst);

    // Invariant checks against the post-drain counters.
    let mut violations = std::mem::take(&mut client.violations);
    violations.extend(swap_violations);
    // Flight-recorder audit: every request a client holds a terminal
    // answer for is ledgered, so its spans must reconstruct into a
    // complete chain (gap-free decision chain, or a deliberate `dropped`
    // terminal) whose status matches the outcome the client observed and
    // whose model generation is one the server actually published.
    if cfg.trace {
        for (trace_id, want) in &client.traced {
            let spans = recorder.collect(*trace_id);
            match summarize(&spans) {
                Err(e) => violations.push(format!(
                    "trace {} ({} spans) does not reconstruct: {e} \
                     (fault_seed {}, workload_seed {})",
                    hex16(*trace_id),
                    spans.len(),
                    cfg.fault.seed,
                    cfg.workload_seed
                )),
                Ok(s) => {
                    if s.status != *want {
                        violations.push(format!(
                            "trace {} reconstructs as {:?} but the client observed {:?}",
                            hex16(*trace_id),
                            s.status,
                            want
                        ));
                    }
                    if s.model_generation > final_generation {
                        violations.push(format!(
                            "trace {} claims generation {} but the server only reached {}",
                            hex16(*trace_id),
                            s.model_generation,
                            final_generation
                        ));
                    }
                }
            }
        }
    }
    if cfg.swaps > 0 {
        if swaps_done != cfg.swaps {
            violations.push(format!(
                "only {swaps_done} of {} mid-soak swaps were published",
                cfg.swaps
            ));
        }
        if stats.model_swaps.get() != swaps_done {
            violations.push(format!(
                "server counted {} model swaps, harness published {swaps_done}",
                stats.model_swaps.get()
            ));
        }
        if final_generation != swaps_done {
            violations.push(format!(
                "serve.model.generation is {final_generation} after {swaps_done} swaps"
            ));
        }
        if stats.model_generation.get() != final_generation as f64 {
            violations.push(format!(
                "model generation gauge {} disagrees with engine generation {final_generation}",
                stats.model_generation.get()
            ));
        }
    }
    if stats.thread_panics.get() != 0 {
        violations.push(format!(
            "{} server thread(s) panicked",
            stats.thread_panics.get()
        ));
    }
    if stats.accounted_requests() != stats.requests.get() {
        violations.push(format!(
            "request ledger does not balance: {} requests vs {} accounted \
             (ok {} + deadline {} + overloaded {} + bad_dim {} + draining {})",
            stats.requests.get(),
            stats.accounted_requests(),
            stats.ok.get(),
            stats.deadline_exceeded.get(),
            stats.overloaded.get(),
            stats.bad_dim.get(),
            stats.draining_rejected.get(),
        ));
    }
    let bounded = [
        ("decisions", client.decisions, "ok", stats.ok.get()),
        (
            "deadline errors",
            client.deadline,
            "deadline_exceeded",
            stats.deadline_exceeded.get(),
        ),
        (
            "overloaded errors",
            client.overloaded,
            "overloaded",
            stats.overloaded.get(),
        ),
        (
            "accept-overload errors",
            client.accept_overloaded,
            "accept_overloaded",
            stats.accept_overloaded.get(),
        ),
        (
            "bad_request errors",
            client.bad_request,
            "bad_dim",
            stats.bad_dim.get(),
        ),
        (
            "draining errors",
            client.draining,
            "draining_rejected",
            stats.draining_rejected.get(),
        ),
    ];
    for (what, seen, counter, counted) in bounded {
        if seen > counted {
            violations.push(format!(
                "clients observed {seen} {what} but the server only counted {counted} ({counter})"
            ));
        }
    }
    // Per-shard ledger: the engine-owned outcome counters must reconcile
    // exactly with their shard-level breakdown — a lost or double-counted
    // handoff between the lock-free rings and a shard's inference thread
    // would show up here first.
    if stats.shards.len() != cfg.shards.max(1) {
        violations.push(format!(
            "expected {} shard stat blocks, found {}",
            cfg.shards.max(1),
            stats.shards.len()
        ));
    }
    for (what, global, per_shard) in [
        (
            "ok",
            stats.ok.get(),
            stats.shards.iter().map(|s| s.ok.get()).sum::<u64>(),
        ),
        (
            "deadline_exceeded",
            stats.deadline_exceeded.get(),
            stats
                .shards
                .iter()
                .map(|s| s.deadline_exceeded.get())
                .sum::<u64>(),
        ),
        (
            "overloaded",
            stats.overloaded.get(),
            stats.shards.iter().map(|s| s.overloaded.get()).sum::<u64>(),
        ),
        (
            "batched_requests",
            stats.batched_requests.get(),
            stats
                .shards
                .iter()
                .map(|s| s.batched_requests.get())
                .sum::<u64>(),
        ),
        (
            "batches",
            stats.batches.get(),
            stats.shards.iter().map(|s| s.batches.get()).sum::<u64>(),
        ),
    ] {
        if global != per_shard {
            violations.push(format!(
                "shard ledger does not reconcile: global {what} {global} vs shard sum {per_shard}"
            ));
        }
    }
    // Wire totals: the server cannot have received more infer requests
    // than clients wrote (faults drop bytes, never invent them).
    if stats.requests.get() > client.infer_sent {
        violations.push(format!(
            "server counted {} infer requests but clients only sent {}",
            stats.requests.get(),
            client.infer_sent
        ));
    }
    // /metrics must expose the exact same atomics as the stats verb.
    let mut exposition = String::new();
    registry.render(&mut exposition);
    for (metric, value) in [
        ("schedinspector_serve_requests_total", stats.requests.get()),
        ("schedinspector_serve_ok_total", stats.ok.get()),
        (
            "schedinspector_serve_malformed_total",
            stats.malformed.get(),
        ),
        (
            "schedinspector_serve_thread_panics_total",
            stats.thread_panics.get(),
        ),
    ] {
        match exposition_value(&exposition, metric) {
            Some(got) if got == value as f64 => {}
            Some(got) => violations.push(format!(
                "/metrics disagrees with stats: {metric} exposes {got} vs counter {value}"
            )),
            None => violations.push(format!("/metrics is missing {metric}")),
        }
    }
    match exposition_value(&exposition, "schedinspector_serve_model_generation") {
        Some(got) if got == final_generation as f64 => {}
        Some(got) => violations.push(format!(
            "/metrics model generation {got} disagrees with engine generation {final_generation}"
        )),
        None => violations.push("/metrics is missing schedinspector_serve_model_generation".into()),
    }

    let fault_log = {
        let records = fault_log_handle.lock().unwrap();
        render_fault_log(&records)
    };
    let server = vec![
        ("requests".to_string(), stats.requests.get()),
        ("ok".to_string(), stats.ok.get()),
        (
            "deadline_exceeded".to_string(),
            stats.deadline_exceeded.get(),
        ),
        ("overloaded".to_string(), stats.overloaded.get()),
        (
            "accept_overloaded".to_string(),
            stats.accept_overloaded.get(),
        ),
        ("bad_dim".to_string(), stats.bad_dim.get()),
        (
            "draining_rejected".to_string(),
            stats.draining_rejected.get(),
        ),
        ("malformed".to_string(), stats.malformed.get()),
        ("connections".to_string(), stats.connections.get()),
        ("thread_panics".to_string(), stats.thread_panics.get()),
        ("model_swaps".to_string(), stats.model_swaps.get()),
        ("model_generation".to_string(), final_generation),
        ("traced_requests".to_string(), client.traced.len() as u64),
    ];
    ChaosReport {
        fault_seed: cfg.fault.seed,
        workload_seed: cfg.workload_seed,
        client,
        server,
        violations,
        fault_log,
    }
}

/// Extract a sample value from rendered Prometheus text.
fn exposition_value(text: &str, metric: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(metric)?;
        rest.trim().parse::<f64>().ok()
    })
}

/// One connection: pipeline a seeded request mix, then read responses and
/// check they form an in-order prefix of the expected sequence.
fn run_connection(
    addr: std::net::SocketAddr,
    dim: usize,
    cfg: &ChaosConfig,
    conn_tag: u64,
    rng: &mut SplitMix64,
    tally: &mut ClientTally,
) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        tally.conn_errors += 1;
        return;
    };
    let _ = stream.set_nodelay(true);
    // Bounded patience: a faulted connection that goes quiet is abandoned,
    // never waited on indefinitely.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            tally.conn_errors += 1;
            return;
        }
    };

    // Trace-id derivation: request ids restart at 1 on every connection,
    // so the per-connection tag keeps ids globally unique for the ring.
    let trace_seed = splitmix64(cfg.workload_seed ^ (0x72AC_E000 + conn_tag));
    let trace_for = |id: u64| {
        if cfg.trace {
            derive_trace_id(trace_seed, id)
        } else {
            0
        }
    };
    let trace_suffix = |trace: u64| {
        if trace != 0 {
            format!(",\"trace\":\"{}\"", hex16(trace))
        } else {
            String::new()
        }
    };
    let mut expected: Vec<Expect> = Vec::new();
    let mut batch = String::new();
    let mut next_id = 1u64;
    for _ in 0..cfg.requests_per_conn {
        let roll = rng.unit();
        if roll < 0.70 {
            let id = next_id;
            next_id += 1;
            let trace = trace_for(id);
            let features: Vec<String> = (0..dim).map(|_| format!("{:.3}", rng.unit())).collect();
            let deadline = if rng.chance(0.2) {
                ",\"deadline_ms\":0"
            } else {
                ""
            };
            batch.push_str(&format!(
                "{{\"verb\":\"infer\",\"id\":{id},\"features\":[{}]{deadline}{}}}\n",
                features.join(","),
                trace_suffix(trace)
            ));
            expected.push(Expect::Infer { id, trace });
            tally.infer_sent += 1;
        } else if roll < 0.80 {
            let id = next_id;
            next_id += 1;
            let trace = trace_for(id);
            batch.push_str(&format!(
                "{{\"verb\":\"infer\",\"id\":{id},\"features\":[1,2,3]{}}}\n",
                trace_suffix(trace)
            ));
            expected.push(Expect::Infer { id, trace });
            tally.infer_sent += 1;
        } else if roll < 0.90 {
            batch.push_str("{\"verb\":\"ping\"}\n");
            expected.push(Expect::Ping);
        } else {
            batch.push_str("this is not protocol json\n");
            expected.push(Expect::Junk);
        }
    }
    if Write::write_all(&mut stream, batch.as_bytes()).is_err() {
        tally.conn_errors += 1;
        return;
    }

    let mut reader = BufReader::new(reader_stream);
    let mut pos = 0usize;
    while pos < expected.len() {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => {
                tally.conn_errors += 1;
                return; // prefix ended early — allowed under faults
            }
            Ok(_) => {}
            Err(_) => {
                tally.conn_errors += 1;
                return;
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Ok(resp) = protocol::parse_response(trimmed) else {
            // A torn write may truncate the final line of a dying
            // connection; a *parseable but wrong* line is a violation,
            // an unparseable one only if the connection then stays alive.
            let mut probe = String::new();
            if reader.read_line(&mut probe).unwrap_or(0) > 0 {
                tally.violations.push(format!(
                    "mid-stream garbage response {trimmed:?} (fault_seed {}, workload_seed {})",
                    cfg.fault.seed, cfg.workload_seed
                ));
            } else {
                tally.conn_errors += 1;
            }
            return;
        };
        // An accept-time backlog rejection arrives before any request is
        // answered and the connection is closed after it.
        if pos == 0 {
            if let Response::Error {
                id: None, ref code, ..
            } = resp
            {
                if code == protocol::ERR_OVERLOADED {
                    tally.accept_overloaded += 1;
                    return;
                }
            }
        }
        match check_response(&expected[pos], &resp, tally) {
            Ok(()) => pos += 1,
            Err(msg) => {
                tally.violations.push(format!(
                    "{msg} (position {pos}, fault_seed {}, workload_seed {})",
                    cfg.fault.seed, cfg.workload_seed
                ));
                return;
            }
        }
    }
}

/// Check one response against its slot in the expected sequence.
fn check_response(expect: &Expect, resp: &Response, tally: &mut ClientTally) -> Result<(), String> {
    match (expect, resp) {
        (
            Expect::Infer { id: want, trace },
            Response::Decision {
                id, trace: echoed, ..
            },
        ) if id == want => {
            if echoed != trace {
                return Err(format!(
                    "decision for infer {want} echoed trace {} instead of {}",
                    hex16(*echoed),
                    hex16(*trace)
                ));
            }
            if *trace != 0 {
                tally.traced.push((*trace, SpanStatus::Ok));
            }
            tally.decisions += 1;
            Ok(())
        }
        (
            Expect::Infer { id: want, trace },
            Response::Error {
                id: Some(id), code, ..
            },
        ) if id == want => {
            let status = match code.as_str() {
                protocol::ERR_DEADLINE => {
                    tally.deadline += 1;
                    SpanStatus::DeadlineExceeded
                }
                protocol::ERR_OVERLOADED => {
                    tally.overloaded += 1;
                    SpanStatus::Overloaded
                }
                protocol::ERR_BAD_REQUEST => {
                    tally.bad_request += 1;
                    SpanStatus::BadDim
                }
                protocol::ERR_SHUTTING_DOWN => {
                    tally.draining += 1;
                    SpanStatus::Draining
                }
                other => return Err(format!("unexpected error code {other:?} for infer {want}")),
            };
            if *trace != 0 {
                tally.traced.push((*trace, status));
            }
            Ok(())
        }
        (Expect::Ping, Response::Pong) => {
            tally.pongs += 1;
            Ok(())
        }
        (Expect::Junk, Response::Error { id: None, code, .. })
            if code == protocol::ERR_MALFORMED =>
        {
            tally.malformed += 1;
            Ok(())
        }
        (expect, resp) => Err(format!("expected {expect:?}, got {resp:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_soak_is_fully_accounted() {
        let cfg = ChaosConfig {
            fault: FaultConfig::none(1),
            workload_seed: 2,
            clients: 2,
            conns_per_client: 3,
            requests_per_conn: 5,
            workers: 2,
            shards: 1,
            watchdog_secs: 60,
            swaps: 0,
            trace: false,
        };
        let report = run_chaos(&cfg);
        assert!(report.ok(), "{}", report.render());
        assert_eq!(report.client.conn_errors, 0, "{}", report.render());
        assert_eq!(report.fault_log, "");
        // Without faults every infer got a terminal answer at the client.
        assert_eq!(
            report.client.decisions
                + report.client.deadline
                + report.client.overloaded
                + report.client.bad_request
                + report.client.draining,
            report.client.infer_sent,
            "{}",
            report.render()
        );
    }

    #[test]
    fn standard_fault_mix_soak_holds_invariants() {
        let report = run_chaos(&ChaosConfig::new(7, 11));
        assert!(report.ok(), "{}", report.render());
        assert!(
            !report.fault_log.is_empty(),
            "the standard mix should inject at least one fault"
        );
    }

    #[test]
    fn mid_soak_hot_swaps_keep_the_ledger_exact() {
        // Publish 8 model generations while clients hammer the server
        // under the standard fault mix: run_chaos asserts the exact
        // request ledger, that serve.model.generation advanced by exactly
        // 8, and that /metrics agrees — zero drops across every swap.
        let mut cfg = ChaosConfig::new(13, 17);
        cfg.swaps = 8;
        let report = run_chaos(&cfg);
        assert!(report.ok(), "{}", report.render());
        let get = |name: &str| {
            report
                .server
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("model_swaps"), 8);
        assert_eq!(get("model_generation"), 8);
    }

    /// Traced soak under the standard fault mix with mid-soak hot-swaps:
    /// run_chaos replays every client-observed outcome against the flight
    /// recorder and demands a complete, status-matching span chain with a
    /// published model generation — so this test passing means 100% of
    /// ledgered requests reconstructed.
    #[test]
    fn traced_fault_soak_reconstructs_every_ledgered_request() {
        let mut cfg = ChaosConfig::new(19, 23);
        cfg.trace = true;
        cfg.swaps = 4;
        let report = run_chaos(&cfg);
        assert!(report.ok(), "{}", report.render());
        let traced = report
            .server
            .iter()
            .find(|(n, _)| n == "traced_requests")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(
            traced > 0,
            "the soak should have audited at least one traced request\n{}",
            report.render()
        );
    }

    /// Sharded soak under a stall-heavy plan: long `WouldBlock` runs park
    /// a subset of connections — and, through consistent routing, starve
    /// the shard(s) those connections map to — while the other shards keep
    /// serving. The drain must still be bounded (watchdog), the exact
    /// ledger must balance globally, and the per-shard sums must reconcile
    /// with it even though the stalled connections' requests raced the
    /// shutdown handshake.
    #[test]
    fn stall_heavy_sharded_soak_drains_bounded_with_exact_ledger() {
        let mut fault = FaultConfig::none(23);
        fault.stall = 0.6;
        fault.max_stall_ops = 12;
        let cfg = ChaosConfig {
            fault,
            workload_seed: 29,
            clients: 4,
            conns_per_client: 6,
            requests_per_conn: 8,
            workers: 4,
            shards: 4,
            watchdog_secs: 60,
            swaps: 0,
            trace: false,
        };
        let report = run_chaos(&cfg);
        assert!(report.ok(), "{}", report.render());
        assert!(
            !report.fault_log.is_empty(),
            "the stall-heavy plan should inject at least one stall"
        );
        // One response per request: clients never see more terminal infer
        // outcomes than infers they wrote (run_chaos also checks each
        // category against the server's counters).
        let outcomes = report.client.decisions
            + report.client.deadline
            + report.client.overloaded
            + report.client.bad_request
            + report.client.draining;
        assert!(
            outcomes <= report.client.infer_sent,
            "{} outcomes for {} infers\n{}",
            outcomes,
            report.client.infer_sent,
            report.render()
        );
    }
}
