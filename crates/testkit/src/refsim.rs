//! The reference simulator: a naive, obviously-correct transcription of
//! the paper's event loop (§3.2), used as the differential oracle's ground
//! truth for [`simhpc::Simulator`].
//!
//! Everything the optimized simulator does cleverly is done plainly here:
//! running jobs live in a flat `Vec` (no slot map, no completion heap, no
//! free-processor cache), every observation and reservation allocates
//! fresh storage, and free processors are recomputed by summation on every
//! query. The two implementations share **no** cluster or backfill code —
//! only the trait definitions (`SchedulingPolicy`, `InspectorHook`) and
//! the result types, so an arithmetic or bookkeeping bug in either side
//! shows up as a schedule divergence.
//!
//! One discipline is deliberately shared, because it is part of the
//! simulator's observable contract rather than an optimization: the
//! waiting queue is a `Vec<usize>` mutated with `swap_remove`. Observation
//! queue *order* feeds order-dependent float summations in the manual
//! feature builder, so a reference simulator with a different queue order
//! would disagree with the real one on inspector inputs, not on
//! scheduling semantics.

use simhpc::{
    InspectorHook, JobOutcome, Observation, PolicyContext, QueueEntry, SchedulingPolicy, SimConfig,
    SimResult,
};
use workload::Job;

/// A running job, bookkept naively.
#[derive(Debug, Clone, Copy)]
struct RefRunning {
    procs: u32,
    /// Actual completion time (drives completions).
    end: f64,
    /// Estimated completion time (drives reservations).
    est_end: f64,
}

/// Naive cluster state: a flat list of running jobs, everything recomputed
/// on demand.
#[derive(Debug, Default)]
struct RefCluster {
    total: u32,
    running: Vec<RefRunning>,
}

impl RefCluster {
    fn new(total: u32) -> Self {
        assert!(total > 0, "cluster needs at least one processor");
        RefCluster {
            total,
            running: Vec::new(),
        }
    }

    fn free(&self) -> u32 {
        self.total - self.running.iter().map(|r| r.procs).sum::<u32>()
    }

    fn can_run(&self, procs: u32) -> bool {
        procs <= self.free()
    }

    fn start(&mut self, procs: u32, now: f64, runtime: f64, estimate: f64) {
        assert!(self.can_run(procs), "over-allocation in reference cluster");
        self.running.push(RefRunning {
            procs,
            end: now + runtime,
            est_end: now + estimate,
        });
    }

    fn next_completion(&self) -> Option<f64> {
        self.running
            .iter()
            .map(|r| r.end)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Release every job whose actual completion time is ≤ `now`
    /// (inclusive, like the optimized cluster).
    fn release_up_to(&mut self, now: f64) {
        self.running.retain(|r| r.end > now);
    }

    /// EASY reservation: earliest time enough processors are *estimated*
    /// free, plus the spare processors at that time. All releases sharing
    /// the crossing instant are absorbed before the spare count is taken.
    fn reservation(&self, procs: u32, now: f64) -> Option<(f64, u32)> {
        let free = self.free();
        if procs <= free {
            return Some((now, free - procs));
        }
        if procs > self.total {
            return None;
        }
        let mut releases: Vec<(f64, u32)> = self
            .running
            .iter()
            .map(|r| (r.est_end.max(now), r.procs))
            .collect();
        releases.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut free = free;
        let mut i = 0;
        while i < releases.len() {
            let t = releases[i].0;
            while i < releases.len() && releases[i].0 == t {
                free += releases[i].1;
                i += 1;
            }
            if free >= procs {
                return Some((t, free - procs));
            }
        }
        None
    }
}

/// §3.2's backfill admission rule, restated from the paper: a candidate
/// may start out of order iff it fits right now and either finishes (by
/// estimate) before the committed job's reservation or fits into the
/// processors spare at reservation time.
fn can_backfill(candidate: &Job, now: f64, cluster: &RefCluster, t_res: f64, extra: u32) -> bool {
    cluster.can_run(candidate.procs)
        && (now + candidate.estimate <= t_res || candidate.procs <= extra)
}

/// Run `jobs` on a `procs`-processor machine under `policy`, with
/// `inspector` scrutinizing every decision — semantically identical to
/// [`simhpc::Simulator::run_inspected`], implemented independently.
pub fn reference_simulate(
    jobs: &[Job],
    procs: u32,
    config: &SimConfig,
    policy: &mut dyn SchedulingPolicy,
    inspector: &mut dyn InspectorHook,
) -> SimResult {
    assert!(
        jobs.iter().all(|j| j.procs <= procs),
        "sequence contains a job wider than the machine"
    );
    RefSim::new(jobs, procs, *config).run(policy, inspector)
}

struct RefSim<'a> {
    jobs: &'a [Job],
    config: SimConfig,
    cluster: RefCluster,
    queue: Vec<usize>,
    rejections: Vec<u32>,
    next_arrival: usize,
    now: f64,
    outcomes: Vec<JobOutcome>,
    inspections: u64,
    total_rejections: u64,
}

impl<'a> RefSim<'a> {
    fn new(jobs: &'a [Job], procs: u32, config: SimConfig) -> Self {
        RefSim {
            jobs,
            config,
            cluster: RefCluster::new(procs),
            queue: Vec::new(),
            rejections: vec![0; jobs.len()],
            next_arrival: 0,
            now: 0.0,
            outcomes: Vec::new(),
            inspections: 0,
            total_rejections: 0,
        }
    }

    fn run(
        mut self,
        policy: &mut dyn SchedulingPolicy,
        inspector: &mut dyn InspectorHook,
    ) -> SimResult {
        loop {
            self.admit_arrivals();
            if self.queue.is_empty() {
                if self.next_arrival < self.jobs.len() {
                    self.now = self.now.max(self.jobs[self.next_arrival].submit);
                    self.cluster.release_up_to(self.now);
                    continue;
                }
                break;
            }

            let ctx = self.ctx();
            let qpos = policy.select(&self.queue, self.jobs, &ctx);
            assert!(qpos < self.queue.len(), "policy selected past queue end");
            let jidx = self.queue[qpos];
            let job = self.jobs[jidx];

            if self.rejections[jidx] < self.config.max_rejections {
                self.inspections += 1;
                let obs = self.observe(jidx);
                if inspector.inspect(&obs) {
                    self.total_rejections += 1;
                    self.rejections[jidx] += 1;
                    self.advance_after_rejection();
                    continue;
                }
            }

            self.queue.swap_remove(qpos);
            self.wait_and_start(job, self.rejections[jidx], policy);
        }
        SimResult {
            outcomes: self.outcomes,
            total_procs: self.cluster.total,
            inspections: self.inspections,
            rejections: self.total_rejections,
        }
    }

    fn ctx(&self) -> PolicyContext {
        PolicyContext {
            now: self.now,
            total_procs: self.cluster.total,
            free_procs: self.cluster.free(),
        }
    }

    fn admit_arrivals(&mut self) {
        while self.next_arrival < self.jobs.len() && self.jobs[self.next_arrival].submit <= self.now
        {
            self.queue.push(self.next_arrival);
            self.next_arrival += 1;
        }
    }

    fn observe(&self, jidx: usize) -> Observation {
        let job = self.jobs[jidx];
        let runnable = self.cluster.can_run(job.procs);
        let backfillable = if self.config.backfill && !runnable {
            match self.cluster.reservation(job.procs, self.now) {
                Some((t_res, extra)) => self
                    .queue
                    .iter()
                    .filter(|&&q| q != jidx)
                    .filter(|&&q| {
                        can_backfill(&self.jobs[q], self.now, &self.cluster, t_res, extra)
                    })
                    .count() as u32,
                None => 0,
            }
        } else {
            0
        };
        let queue: Vec<QueueEntry> = self
            .queue
            .iter()
            .filter(|&&q| q != jidx)
            .map(|&q| {
                let j = &self.jobs[q];
                QueueEntry {
                    id: j.id,
                    wait: self.now - j.submit,
                    estimate: j.estimate,
                    procs: j.procs,
                }
            })
            .collect();
        Observation {
            now: self.now,
            job,
            wait: self.now - job.submit,
            rejections: self.rejections[jidx],
            max_rejections: self.config.max_rejections,
            free_procs: self.cluster.free(),
            total_procs: self.cluster.total,
            runnable,
            backfill_enabled: self.config.backfill,
            backfillable,
            queue,
        }
    }

    fn advance_after_rejection(&mut self) {
        let mut t_next = self.now + self.config.max_interval;
        if self.next_arrival < self.jobs.len() {
            t_next = t_next.min(self.jobs[self.next_arrival].submit);
        }
        if let Some(tc) = self.cluster.next_completion() {
            t_next = t_next.min(tc);
        }
        self.now = t_next;
        self.cluster.release_up_to(self.now);
    }

    fn wait_and_start(&mut self, job: Job, rejections: u32, policy: &mut dyn SchedulingPolicy) {
        while !self.cluster.can_run(job.procs) {
            if self.config.backfill {
                self.backfill_pass(&job, policy);
                if self.cluster.can_run(job.procs) {
                    break;
                }
            }
            let tc = self
                .cluster
                .next_completion()
                .expect("job cannot run on an idle cluster");
            let t_next = match self.jobs.get(self.next_arrival) {
                Some(next) if next.submit < tc => next.submit,
                _ => tc,
            };
            self.now = self.now.max(t_next);
            self.cluster.release_up_to(self.now);
            self.admit_arrivals();
        }
        self.start_job(job, rejections, false, policy);
    }

    fn backfill_pass(&mut self, committed: &Job, policy: &mut dyn SchedulingPolicy) {
        loop {
            let Some((t_res, extra)) = self.cluster.reservation(committed.procs, self.now) else {
                return;
            };
            let ctx = self.ctx();
            let mut best: Option<(usize, (f64, u64))> = None;
            for (pos, &jidx) in self.queue.iter().enumerate() {
                let j = &self.jobs[jidx];
                if !can_backfill(j, self.now, &self.cluster, t_res, extra) {
                    continue;
                }
                let key = (policy.score(j, &ctx), j.id);
                let better = match &best {
                    None => true,
                    Some((_, bk)) => key.0 < bk.0 || (key.0 == bk.0 && key.1 < bk.1),
                };
                if better {
                    best = Some((pos, key));
                }
            }
            let Some((pos, _)) = best else { return };
            let jidx = self.queue.swap_remove(pos);
            let job = self.jobs[jidx];
            let rejections = self.rejections[jidx];
            self.start_job(job, rejections, true, policy);
        }
    }

    fn start_job(
        &mut self,
        job: Job,
        rejections: u32,
        backfilled: bool,
        policy: &mut dyn SchedulingPolicy,
    ) {
        self.cluster
            .start(job.procs, self.now, job.runtime, job.estimate);
        policy.on_start(&job, self.now);
        self.outcomes.push(JobOutcome {
            id: job.id,
            submit: job.submit,
            start: self.now,
            end: self.now + job.runtime,
            runtime: job.runtime,
            procs: job.procs,
            backfilled,
            rejections,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use policies::{Fcfs, Sjf};
    use simhpc::{NoInspector, Simulator};

    #[test]
    fn trivial_sequence_matches_hand_schedule() {
        let jobs = vec![
            Job::new(1, 0.0, 10.0, 10.0, 2),
            Job::new(2, 0.0, 5.0, 5.0, 2),
        ];
        // 4 procs: both start at t=0 regardless of policy.
        let r = reference_simulate(&jobs, 4, &SimConfig::default(), &mut Fcfs, &mut NoInspector);
        assert_eq!(r.outcomes.len(), 2);
        assert!(r.outcomes.iter().all(|o| o.start == 0.0));
        assert_eq!(r.inspections, 2);
        assert_eq!(r.rejections, 0);
    }

    #[test]
    fn contended_sequence_matches_optimized_simulator() {
        let jobs = vec![
            Job::new(1, 0.0, 100.0, 120.0, 3),
            Job::new(2, 1.0, 10.0, 15.0, 3),
            Job::new(3, 2.0, 50.0, 60.0, 2),
            Job::new(4, 3.0, 5.0, 8.0, 1),
        ];
        for config in [SimConfig::default(), SimConfig::with_backfill()] {
            let reference = reference_simulate(&jobs, 4, &config, &mut Sjf, &mut NoInspector);
            let optimized = Simulator::new(4, config).run(&jobs, &mut Sjf);
            assert_eq!(reference, optimized);
        }
    }

    #[test]
    fn reject_everything_still_terminates_and_counts() {
        let jobs = vec![
            Job::new(1, 0.0, 10.0, 10.0, 1),
            Job::new(2, 0.5, 10.0, 10.0, 1),
        ];
        let config = SimConfig {
            max_rejections: 3,
            ..SimConfig::default()
        };
        let mut always_reject = |_: &Observation| true;
        let r = reference_simulate(&jobs, 2, &config, &mut Fcfs, &mut always_reject);
        assert_eq!(r.outcomes.len(), 2, "capped rejections cannot starve jobs");
        assert_eq!(r.rejections, 6);
        assert_eq!(r.inspections, 6);
        assert!(r.outcomes.iter().all(|o| o.rejections == 3));
    }
}
