//! Seeded fault plans: deterministic failure injection for [`serve`].
//!
//! A [`FaultPlan`] is an [`AcceptPolicy`] that wraps every accepted
//! connection in a [`FaultStream`] — a [`Transport`] shim around the real
//! `TcpStream` whose fault decision at transport op `k` is a pure function
//! of `(fault_seed, accept-order index, k)`. Ops advance only on
//! deterministic events (data transfer or an injected fault); a real
//! read-timeout `WouldBlock` retries the same op coordinate, so wall-clock
//! timing cannot shift the schedule. The same seed therefore replays the
//! same fault plan against the same connection arrival order, which is
//! what makes a chaos failure reproducible from its printed seed pair.
//!
//! Injected faults (all server-side, against the production code paths):
//!
//! - **accept drop** — the connection is discarded before a worker sees it;
//! - **reset** — the socket is shut down and the op fails `ConnectionReset`;
//! - **torn read** — a read delivers only a 1..k-byte prefix, exercising
//!   line reassembly across arbitrary split points (no data is lost);
//! - **torn write** — a response write delivers a strict prefix and then
//!   the connection dies, exercising client-side short-read handling;
//! - **stall** — a bounded run of `WouldBlock` returns, exercising the
//!   read-timeout/shutdown-poll path without any wall-clock sleeping.

use std::io::{self, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serve::{AcceptPolicy, Transport};

/// SplitMix64: tiny, seedable, and stateless enough that per-connection
/// streams can be derived from `(seed, index)` without coordination.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The sub-generator for connection `conn` of fault seed `seed`.
    pub fn for_conn(seed: u64, conn: u64) -> Self {
        SplitMix64(seed ^ (conn.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The stateless sub-generator for transport op `op` of connection
    /// `conn`: the fault decision at any `(conn, op)` coordinate is a pure
    /// function of the plan seed, independent of how many timing-dependent
    /// events (real read timeouts) happened in between.
    pub fn for_op(seed: u64, conn: u64, op: u64) -> Self {
        let mut base = SplitMix64::for_conn(seed, conn);
        let lane = base.next_u64();
        SplitMix64(lane ^ (op.wrapping_add(1)).wrapping_mul(0xBF58_476D_1CE4_E5B9))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (false for `p <= 0`).
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit() < p
    }

    /// Uniform draw in `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi_inclusive: u64) -> u64 {
        debug_assert!(lo <= hi_inclusive);
        let span = (hi_inclusive - lo) as u128 + 1;
        lo + (self.next_u64() as u128 % span) as u64
    }
}

/// Which fault fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The connection was dropped at accept time.
    AcceptDrop,
    /// The socket was shut down and the op failed `ConnectionReset`.
    Reset,
    /// A read delivered only a `len`-byte prefix of the caller's buffer.
    TornRead {
        /// Bytes the shim allowed through.
        len: usize,
    },
    /// A write delivered a `wrote`-byte prefix, then the connection died.
    TornWrite {
        /// Bytes actually written before the reset.
        wrote: usize,
    },
    /// The next `ops` reads return `WouldBlock`.
    Stall {
        /// Length of the `WouldBlock` run.
        ops: u32,
    },
    /// A targeted kill: the socket was shut down mid-session, exactly as
    /// `kill -9` on the peer process looks from this side.
    Kill,
    /// A targeted freeze: the op blocked for `millis` before proceeding,
    /// simulating a wedged-but-alive peer against real watchdogs.
    Freeze {
        /// How long the op slept.
        millis: u64,
    },
}

/// One injected fault, for the post-mortem log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Accept-order index of the connection.
    pub conn: u64,
    /// Transport-op counter within the connection when the fault fired.
    pub op: u64,
    /// What happened.
    pub kind: FaultKind,
}

impl std::fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let FaultRecord { conn, op, kind } = self;
        match kind {
            FaultKind::AcceptDrop => write!(f, "conn {conn} op {op}: accept-drop"),
            FaultKind::Reset => write!(f, "conn {conn} op {op}: reset"),
            FaultKind::TornRead { len } => write!(f, "conn {conn} op {op}: torn-read {len}B"),
            FaultKind::TornWrite { wrote } => {
                write!(f, "conn {conn} op {op}: torn-write {wrote}B then reset")
            }
            FaultKind::Stall { ops } => write!(f, "conn {conn} op {op}: stall {ops} ops"),
            FaultKind::Kill => write!(f, "conn {conn} op {op}: targeted kill"),
            FaultKind::Freeze { millis } => {
                write!(f, "conn {conn} op {op}: targeted freeze {millis}ms")
            }
        }
    }
}

/// What a [`TargetedFault`] does when its coordinate is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Shut the socket down and fail every subsequent op with
    /// `ConnectionReset` — the transport-level signature of `kill -9`.
    Kill,
    /// Block the op for this many milliseconds, once, then proceed —
    /// a stall long enough to trip (or probe) a peer's watchdog.
    Freeze {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
}

/// A fault aimed at one `(conn, op)` coordinate instead of drawn from the
/// seeded stream: "kill worker 0 mid-epoch" is a targeted fault, "2% of
/// ops reset" is a seeded one. Fires at the first op `>= op` (op counters
/// advance with traffic, so an exact-coordinate trigger would be brittle)
/// and at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetedFault {
    /// Accept-order index of the connection to attack.
    pub conn: u64,
    /// Fire at the first transport op whose counter is `>= op`.
    pub op: u64,
    /// What to do there.
    pub kind: TargetKind,
}

/// Render a fault log as one line per record (the CI artifact format).
pub fn render_fault_log(records: &[FaultRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

/// Per-operation fault probabilities, all driven by one seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the whole plan; per-connection streams derive from it.
    pub seed: u64,
    /// P(drop a connection at accept time).
    pub accept_drop: f64,
    /// P(reset, per transport op).
    pub reset: f64,
    /// P(torn read, per read).
    pub torn_read: f64,
    /// P(torn write, per write).
    pub torn_write: f64,
    /// P(start a stall run, per read).
    pub stall: f64,
    /// Longest `WouldBlock` run a stall may inject.
    pub max_stall_ops: u32,
}

impl FaultConfig {
    /// A fault-free plan (the differential/regression baseline).
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            accept_drop: 0.0,
            reset: 0.0,
            torn_read: 0.0,
            torn_write: 0.0,
            stall: 0.0,
            max_stall_ops: 0,
        }
    }

    /// The standard chaos mix: frequent benign faults (torn reads,
    /// stalls), occasional destructive ones (resets, torn writes, accept
    /// drops).
    pub fn standard(seed: u64) -> Self {
        FaultConfig {
            seed,
            accept_drop: 0.05,
            reset: 0.01,
            torn_read: 0.25,
            torn_write: 0.02,
            stall: 0.10,
            max_stall_ops: 3,
        }
    }
}

/// The [`AcceptPolicy`] that arms every admitted connection with a seeded
/// fault stream. Construct one per server; it numbers connections in
/// accept order.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    targets: Vec<TargetedFault>,
    next_conn: u64,
    log: Arc<Mutex<Vec<FaultRecord>>>,
}

impl FaultPlan {
    /// A plan injecting per `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan::with_targets(cfg, Vec::new())
    }

    /// A plan injecting per `cfg` plus aimed one-shot faults — the chaos
    /// surface distributed-training tests use to kill or stall a specific
    /// worker connection mid-epoch.
    pub fn with_targets(cfg: FaultConfig, targets: Vec<TargetedFault>) -> Self {
        FaultPlan {
            cfg,
            targets,
            next_conn: 0,
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Shared handle to the fault log (snapshot it after the soak; the
    /// server threads stop writing once the server has drained).
    pub fn log(&self) -> Arc<Mutex<Vec<FaultRecord>>> {
        Arc::clone(&self.log)
    }
}

impl AcceptPolicy for FaultPlan {
    type Conn = FaultStream;

    fn admit(&mut self, stream: TcpStream) -> Option<FaultStream> {
        let conn = self.next_conn;
        self.next_conn += 1;
        let mut rng = SplitMix64::for_conn(self.cfg.seed, conn);
        if rng.chance(self.cfg.accept_drop) {
            self.log.lock().unwrap().push(FaultRecord {
                conn,
                op: 0,
                kind: FaultKind::AcceptDrop,
            });
            return None; // dropping the handle closes the socket
        }
        Some(FaultStream {
            inner: stream,
            cfg: self.cfg,
            targets: self
                .targets
                .iter()
                .filter(|t| t.conn == conn)
                .map(|t| (*t, false))
                .collect(),
            conn,
            op: 0,
            stall_budget: 0,
            dead: false,
            log: Arc::clone(&self.log),
        })
    }
}

/// A [`Transport`] that forwards to a real `TcpStream` but consults the
/// fault plan at every op coordinate. The op counter advances only on
/// deterministic events — data transfer or an injected fault — never on a
/// real (timing-dependent) read timeout, so the realized fault schedule is
/// replayable from the seed alone given the same traffic.
#[derive(Debug)]
pub struct FaultStream {
    inner: TcpStream,
    cfg: FaultConfig,
    /// This connection's aimed faults, each with a fired flag.
    targets: Vec<(TargetedFault, bool)>,
    conn: u64,
    op: u64,
    stall_budget: u32,
    dead: bool,
    log: Arc<Mutex<Vec<FaultRecord>>>,
}

impl FaultStream {
    fn record(&self, kind: FaultKind) {
        self.log.lock().unwrap().push(FaultRecord {
            conn: self.conn,
            op: self.op,
            kind,
        });
    }

    fn op_rng(&self) -> SplitMix64 {
        SplitMix64::for_op(self.cfg.seed, self.conn, self.op)
    }

    fn kill(&mut self) -> io::Error {
        self.dead = true;
        let _ = self.inner.shutdown(Shutdown::Both);
        io::Error::new(io::ErrorKind::ConnectionReset, "injected reset")
    }

    fn dead_err() -> io::Error {
        io::Error::new(
            io::ErrorKind::ConnectionReset,
            "injected reset (connection already dead)",
        )
    }

    /// Fire any armed targeted fault whose coordinate has been reached.
    /// `Some(err)` aborts the op (kill); `None` proceeds — a freeze has
    /// already done its blocking by the time this returns.
    fn targeted(&mut self) -> Option<io::Error> {
        for i in 0..self.targets.len() {
            let (t, fired) = self.targets[i];
            if fired || self.op < t.op {
                continue;
            }
            self.targets[i].1 = true;
            match t.kind {
                TargetKind::Kill => {
                    self.record(FaultKind::Kill);
                    self.op += 1;
                    return Some(self.kill());
                }
                TargetKind::Freeze { millis } => {
                    self.record(FaultKind::Freeze { millis });
                    self.op += 1;
                    std::thread::sleep(Duration::from_millis(millis));
                }
            }
        }
        None
    }
}

impl Transport for FaultStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::dead_err());
        }
        if let Some(e) = self.targeted() {
            return Err(e);
        }
        if self.stall_budget > 0 {
            self.stall_budget -= 1;
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "injected stall"));
        }
        let mut rng = self.op_rng();
        if rng.chance(self.cfg.reset) {
            self.record(FaultKind::Reset);
            self.op += 1;
            return Err(self.kill());
        }
        if rng.chance(self.cfg.stall) {
            let ops = rng.range_u64(1, self.cfg.max_stall_ops.max(1) as u64) as u32;
            self.record(FaultKind::Stall { ops });
            self.op += 1;
            self.stall_budget = ops.saturating_sub(1);
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "injected stall"));
        }
        if buf.len() > 1 && rng.chance(self.cfg.torn_read) {
            // Shrink the destination window: bytes are delivered in full,
            // just across more reads — a pure framing fault.
            let len = rng.range_u64(1, (buf.len() - 1) as u64) as usize;
            return match self.inner.read(&mut buf[..len]) {
                Ok(n) => {
                    self.record(FaultKind::TornRead { len });
                    self.op += 1;
                    Ok(n)
                }
                // A real timeout retries the same op coordinate later.
                Err(e) => Err(e),
            };
        }
        match self.inner.read(buf) {
            Ok(n) => {
                self.op += 1;
                Ok(n)
            }
            // Real timeouts (and hard errors) retry/abort without
            // consuming the op coordinate.
            Err(e) => Err(e),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if self.dead {
            return Err(Self::dead_err());
        }
        if let Some(e) = self.targeted() {
            return Err(e);
        }
        let mut rng = self.op_rng();
        if rng.chance(self.cfg.reset) {
            self.record(FaultKind::Reset);
            self.op += 1;
            return Err(self.kill());
        }
        if buf.len() > 1 && rng.chance(self.cfg.torn_write) {
            // A torn write is only observable as a fault if the connection
            // then dies: deliver a strict prefix, then reset.
            let wrote = rng.range_u64(1, (buf.len() - 1) as u64) as usize;
            self.record(FaultKind::TornWrite { wrote });
            self.op += 1;
            let _ = Write::write_all(&mut self.inner, &buf[..wrote]);
            return Err(self.kill());
        }
        self.op += 1;
        Write::write_all(&mut self.inner, buf)
    }

    fn configure(&mut self, read_timeout: Option<Duration>) -> io::Result<()> {
        // Setup is never faulted: the shim attacks the data path, not the
        // server's ability to install its shutdown-poll timeout.
        self.inner.set_nodelay(true)?;
        self.inner.set_read_timeout(read_timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (server, _) = listener.accept().unwrap();
        (server, client.join().unwrap())
    }

    #[test]
    fn per_conn_rng_is_reproducible_and_distinct() {
        let mut a = SplitMix64::for_conn(42, 0);
        let mut a2 = SplitMix64::for_conn(42, 0);
        let mut b = SplitMix64::for_conn(42, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xs2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, xs2);
        assert_ne!(xs, ys);
    }

    #[test]
    fn fault_free_plan_is_transparent() {
        let mut plan = FaultPlan::new(FaultConfig::none(7));
        let (server, mut client) = pair();
        let mut conn = plan.admit(server).expect("fault-free plan admits");
        Write::write_all(&mut client, b"ping\n").unwrap();
        let mut buf = [0u8; 16];
        let n = Transport::read(&mut conn, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping\n");
        Transport::write_all(&mut conn, b"pong\n").unwrap();
        let mut back = [0u8; 16];
        let n = Read::read(&mut client, &mut back).unwrap();
        assert_eq!(&back[..n], b"pong\n");
        assert!(plan.log().lock().unwrap().is_empty());
    }

    #[test]
    fn torn_reads_preserve_every_byte() {
        let cfg = FaultConfig {
            torn_read: 1.0,
            ..FaultConfig::none(3)
        };
        let mut plan = FaultPlan::new(cfg);
        let (server, mut client) = pair();
        let mut conn = plan.admit(server).unwrap();
        let msg = b"the quick brown fox jumps over the lazy dog\n";
        Write::write_all(&mut client, msg).unwrap();
        drop(client);
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match Transport::read(&mut conn, &mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    assert!(n < buf.len(), "torn read must shrink the window");
                    got.extend_from_slice(&buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(got, msg);
        assert!(!plan.log().lock().unwrap().is_empty());
    }

    #[test]
    fn reset_kills_the_connection_permanently() {
        let cfg = FaultConfig {
            reset: 1.0,
            ..FaultConfig::none(9)
        };
        let mut plan = FaultPlan::new(cfg);
        let (server, _client) = pair();
        let mut conn = plan.admit(server).unwrap();
        let mut buf = [0u8; 8];
        let e = Transport::read(&mut conn, &mut buf).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
        let e = Transport::write_all(&mut conn, b"x").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
        let log = plan.log();
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 1, "dead-connection ops are not re-logged");
        assert_eq!(log[0].kind, FaultKind::Reset);
    }

    #[test]
    fn stalls_are_bounded_wouldblock_runs() {
        let cfg = FaultConfig {
            stall: 0.5,
            max_stall_ops: 4,
            ..FaultConfig::none(11)
        };
        let mut plan = FaultPlan::new(cfg);
        let (server, mut client) = pair();
        let mut conn = plan.admit(server).unwrap();
        Write::write_all(&mut client, b"data\n").unwrap();
        let mut buf = [0u8; 16];
        let mut would_block = 0usize;
        for _ in 0..1000 {
            match Transport::read(&mut conn, &mut buf) {
                Ok(n) => {
                    assert_eq!(&buf[..n], b"data\n");
                    return; // data eventually flows
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => would_block += 1,
                Err(e) => panic!("{e}"),
            }
        }
        panic!("stalled forever ({would_block} WouldBlocks): stall runs must be bounded");
    }

    #[test]
    fn accept_drop_logs_and_discards() {
        let cfg = FaultConfig {
            accept_drop: 1.0,
            ..FaultConfig::none(5)
        };
        let mut plan = FaultPlan::new(cfg);
        let (server, _client) = pair();
        assert!(plan.admit(server).is_none());
        let log = plan.log();
        let log = log.lock().unwrap();
        assert_eq!(log[0].kind, FaultKind::AcceptDrop);
    }

    #[test]
    fn targeted_kill_fires_once_at_its_op_coordinate() {
        let targets = vec![TargetedFault {
            conn: 0,
            op: 2,
            kind: TargetKind::Kill,
        }];
        let mut plan = FaultPlan::with_targets(FaultConfig::none(1), targets);
        let (server, mut client) = pair();
        let mut conn = plan.admit(server).unwrap();
        Write::write_all(&mut client, b"one\ntwo\nthree\n").unwrap();
        let mut buf = [0u8; 4]; // small buffer: one line per read, three ops
        assert!(Transport::read(&mut conn, &mut buf).is_ok()); // op 0
        assert!(Transport::read(&mut conn, &mut buf).is_ok()); // op 1
        let e = Transport::read(&mut conn, &mut buf).unwrap_err(); // op 2: boom
        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
        // Permanently dead, but the kill is only logged once.
        assert_eq!(
            Transport::read(&mut conn, &mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        let log = plan.log();
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kind, FaultKind::Kill);
        assert_eq!((log[0].conn, log[0].op), (0, 2));
    }

    #[test]
    fn targeted_freeze_delays_without_harming_data() {
        let targets = vec![TargetedFault {
            conn: 0,
            op: 0,
            kind: TargetKind::Freeze { millis: 30 },
        }];
        let mut plan = FaultPlan::with_targets(FaultConfig::none(1), targets);
        let (server, mut client) = pair();
        let mut conn = plan.admit(server).unwrap();
        Write::write_all(&mut client, b"payload\n").unwrap();
        let start = std::time::Instant::now();
        let mut buf = [0u8; 16];
        let n = Transport::read(&mut conn, &mut buf).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(30),
            "freeze skipped"
        );
        assert_eq!(&buf[..n], b"payload\n");
        // One-shot: the next op is fault-free and instant.
        Write::write_all(&mut client, b"more\n").unwrap();
        let n = Transport::read(&mut conn, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"more\n");
        let log = plan.log();
        assert_eq!(log.lock().unwrap().len(), 1);
    }

    #[test]
    fn targets_only_hit_their_connection() {
        let targets = vec![TargetedFault {
            conn: 1,
            op: 0,
            kind: TargetKind::Kill,
        }];
        let mut plan = FaultPlan::with_targets(FaultConfig::none(1), targets);
        let (server0, mut client0) = pair();
        let mut conn0 = plan.admit(server0).unwrap();
        let (server1, _client1) = pair();
        let mut conn1 = plan.admit(server1).unwrap();
        Write::write_all(&mut client0, b"safe\n").unwrap();
        let mut buf = [0u8; 16];
        assert!(Transport::read(&mut conn0, &mut buf).is_ok());
        assert_eq!(
            Transport::read(&mut conn1, &mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
    }

    #[test]
    fn fault_log_renders_one_line_per_record() {
        let records = vec![
            FaultRecord {
                conn: 0,
                op: 0,
                kind: FaultKind::AcceptDrop,
            },
            FaultRecord {
                conn: 1,
                op: 3,
                kind: FaultKind::TornRead { len: 7 },
            },
        ];
        let text = render_fault_log(&records);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("torn-read 7B"));
    }
}
