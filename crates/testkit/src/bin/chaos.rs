//! Standalone chaos soak runner (the CI `chaos` job's workhorse).
//!
//! ```text
//! chaos [--fault-seed N] [--workload-seed N] [--clients N] [--conns N]
//!       [--requests N] [--shards N] [--swaps N] [--watchdog-secs N]
//!       [--log PATH] [--oracle-cases N]
//! ```
//!
//! Runs the differential oracle over `--oracle-cases` seeded traces, then
//! one chaos soak under the given seed pair. The fault log is written to
//! `--log` (default `chaos-fault-log.txt`) whether the run passes or not,
//! so a failing CI job always has the artifact. Exit codes: 0 green,
//! 1 invariant violation or oracle divergence, 2 bad usage, 3 drain hang
//! (via the in-harness watchdog).

use testkit::{case_from_seed, check_case, run_chaos, ChaosConfig};

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--fault-seed N] [--workload-seed N] [--clients N] [--conns N] \
         [--requests N] [--shards N] [--swaps N] [--trace 0|1] [--watchdog-secs N] \
         [--log PATH] [--oracle-cases N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut fault_seed = 1u64;
    let mut workload_seed = 1u64;
    let mut oracle_cases = 0u64;
    let mut log_path = String::from("chaos-fault-log.txt");
    let mut cfg = ChaosConfig::new(fault_seed, workload_seed);

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            usage()
        };
        match flag {
            "--fault-seed" => fault_seed = value.parse().unwrap_or_else(|_| usage()),
            "--workload-seed" => workload_seed = value.parse().unwrap_or_else(|_| usage()),
            "--clients" => cfg.clients = value.parse().unwrap_or_else(|_| usage()),
            "--conns" => cfg.conns_per_client = value.parse().unwrap_or_else(|_| usage()),
            "--requests" => cfg.requests_per_conn = value.parse().unwrap_or_else(|_| usage()),
            "--shards" => cfg.shards = value.parse().unwrap_or_else(|_| usage()),
            "--swaps" => cfg.swaps = value.parse().unwrap_or_else(|_| usage()),
            "--trace" => cfg.trace = value.parse::<u8>().unwrap_or_else(|_| usage()) != 0,
            "--watchdog-secs" => cfg.watchdog_secs = value.parse().unwrap_or_else(|_| usage()),
            "--oracle-cases" => oracle_cases = value.parse().unwrap_or_else(|_| usage()),
            "--log" => log_path = value.clone(),
            _ => usage(),
        }
        i += 2;
    }
    let base = ChaosConfig::new(fault_seed, workload_seed);
    cfg.fault = base.fault;
    cfg.workload_seed = base.workload_seed;
    cfg.workers = cfg.clients.max(1);

    let mut failed = false;

    if oracle_cases > 0 {
        let mut diverged = 0u64;
        for case_seed in 0..oracle_cases {
            // Offset by the fault seed so different CI matrix entries
            // cover different trace populations.
            let seed = fault_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case_seed;
            if let Err(msg) = check_case(&case_from_seed(seed)) {
                eprintln!("oracle divergence at case seed {seed}:\n{msg}");
                diverged += 1;
            }
        }
        println!(
            "differential oracle: {}/{oracle_cases} cases agreed",
            oracle_cases - diverged
        );
        failed |= diverged > 0;
    }

    let report = run_chaos(&cfg);
    print!("{}", report.render());
    if let Err(e) = std::fs::write(&log_path, &report.fault_log) {
        eprintln!("warning: could not write fault log to {log_path}: {e}");
    } else {
        println!("fault log written to {log_path}");
    }
    failed |= !report.ok();

    std::process::exit(if failed { 1 } else { 0 });
}
