//! The differential oracle: run the same case through the optimized
//! simulator ([`simhpc::Simulator`]) and the naive reference
//! ([`crate::refsim`]) and demand identical results.
//!
//! "Identical" is strict: the full [`SimResult`] (every outcome's start,
//! end, backfill flag and rejection count, in completion order), the
//! inspection and rejection totals, and the percentage reward each
//! simulator computes against its *own* base-policy run. Floating-point
//! equality is intentional — both simulators perform the same arithmetic
//! on the same values in the same order, so any drift is a real
//! divergence, not noise.

use inspector::RewardKind;
use simhpc::{InspectorHook, NoInspector, Observation, SimConfig, SimResult, Simulator};
use workload::Job;

use crate::fault::SplitMix64;
use crate::refsim::reference_simulate;

/// One differential test case: a job sequence, a machine, a simulator
/// configuration, and which base policy to schedule with.
#[derive(Debug, Clone)]
pub struct OracleCase {
    /// Jobs sorted by submit time.
    pub jobs: Vec<Job>,
    /// Machine size (≥ the widest job).
    pub procs: u32,
    /// Simulator configuration under test.
    pub config: SimConfig,
    /// Base policy, by registry name (fresh instances are built per run so
    /// stateful policies cannot leak accounting across simulators).
    pub policy: policies::PolicyKind,
    /// Seed of the digest inspector (`None` = no inspection).
    pub inspector_seed: Option<u64>,
}

/// A deterministic inspector whose decision is a pure function of the
/// observation content: it hashes every field the simulator exposes
/// (queue entries combined order-independently) and rejects ~25% of
/// decisions. Because it reads *all* of the observation, any divergence in
/// what the two simulators show the inspector cascades into divergent
/// schedules — the oracle's most sensitive probe.
#[derive(Debug, Clone)]
pub struct DigestInspector {
    seed: u64,
}

impl DigestInspector {
    /// An inspector keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        DigestInspector { seed }
    }

    fn mix(mut h: u64, v: u64) -> u64 {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01B3);
        h ^ (h >> 29)
    }

    fn digest(&self, obs: &Observation) -> u64 {
        let mut h = self.seed;
        h = Self::mix(h, obs.job.id);
        h = Self::mix(h, obs.now.to_bits());
        h = Self::mix(h, obs.wait.to_bits());
        h = Self::mix(h, obs.rejections as u64);
        h = Self::mix(h, obs.free_procs as u64);
        h = Self::mix(h, obs.runnable as u64);
        h = Self::mix(h, obs.backfillable as u64);
        // XOR-combine queue entries so the digest is order-independent:
        // queue *order* is checked by strict SimResult equality already,
        // and an order-sensitive digest would make every downstream
        // divergence look like an inspector disagreement.
        let mut q = 0u64;
        for e in &obs.queue {
            let mut eh = Self::mix(0x9E37_79B9, e.id);
            eh = Self::mix(eh, e.wait.to_bits());
            eh = Self::mix(eh, e.estimate.to_bits());
            eh = Self::mix(eh, e.procs as u64);
            q ^= eh;
        }
        Self::mix(h, q)
    }
}

impl InspectorHook for DigestInspector {
    fn inspect(&mut self, obs: &Observation) -> bool {
        SplitMix64::new(self.digest(obs))
            .next_u64()
            .is_multiple_of(4)
    }
}

/// Generate a random oracle case from one seed. Everything about the case
/// — trace shape, machine size, configuration, policy, inspector — derives
/// from the seed, so a failing case is reproducible from the seed alone.
pub fn case_from_seed(seed: u64) -> OracleCase {
    let mut rng = SplitMix64::new(seed);
    let procs = [4u32, 8, 16, 64][rng.range_u64(0, 3) as usize];
    let n_jobs = rng.range_u64(1, 40) as usize;
    let mut submit = 0.0f64;
    let mut jobs = Vec::with_capacity(n_jobs);
    for i in 0..n_jobs {
        // Bursty arrivals: often simultaneous, sometimes far apart.
        if rng.chance(0.6) {
            submit += (rng.unit() * 300.0).floor();
        }
        let runtime = 1.0 + (rng.unit() * 500.0).floor();
        // Estimates are ≥ runtime sometimes, < runtime sometimes — both
        // happen in real traces and both must schedule identically.
        let estimate = (runtime * (0.5 + rng.unit() * 2.0)).ceil().max(1.0);
        let width = 1 + rng.range_u64(0, (procs - 1) as u64) as u32;
        jobs.push(Job::new(i as u64 + 1, submit, runtime, estimate, width));
    }
    let config = SimConfig {
        backfill: rng.chance(0.5),
        max_interval: [1.0, 5.0, 600.0][rng.range_u64(0, 2) as usize],
        max_rejections: rng.range_u64(0, 3) as u32,
    };
    let policy = match rng.range_u64(0, 4) {
        0 => policies::PolicyKind::Fcfs,
        1 => policies::PolicyKind::Sjf,
        2 => policies::PolicyKind::Saf,
        3 => policies::PolicyKind::F1,
        _ => policies::PolicyKind::Srf,
    };
    let inspector_seed = if rng.chance(0.8) {
        Some(rng.next_u64())
    } else {
        None
    };
    OracleCase {
        jobs,
        procs,
        config,
        policy,
        inspector_seed,
    }
}

fn run_both(case: &OracleCase, inspected: bool) -> (SimResult, SimResult) {
    let run_one = |reference: bool| -> SimResult {
        let mut policy = case.policy.build();
        let mut digest = case.inspector_seed.map(DigestInspector::new);
        let hook: &mut dyn InspectorHook = match (inspected, digest.as_mut()) {
            (true, Some(d)) => d,
            _ => &mut NoInspector,
        };
        if reference {
            reference_simulate(&case.jobs, case.procs, &case.config, policy.as_mut(), hook)
        } else {
            Simulator::new(case.procs, case.config).run_inspected(&case.jobs, policy.as_mut(), hook)
        }
    };
    (run_one(true), run_one(false))
}

/// Run `case` through both simulators (inspected and base-policy runs)
/// and return a description of the first divergence, or `Ok` with the
/// agreed inspected result.
pub fn check_case(case: &OracleCase) -> Result<SimResult, String> {
    // Base-policy (fault-free, uninspected) runs must agree...
    let (ref_base, opt_base) = run_both(case, false);
    if ref_base != opt_base {
        return Err(divergence("base run", case, &ref_base, &opt_base));
    }
    // ...and so must inspected runs, including the decision counters.
    let (ref_insp, opt_insp) = run_both(case, true);
    if ref_insp != opt_insp {
        return Err(divergence("inspected run", case, &ref_insp, &opt_insp));
    }
    if ref_insp.inspections != opt_insp.inspections {
        return Err(format!(
            "inspection counts diverge: reference {} vs optimized {}",
            ref_insp.inspections, opt_insp.inspections
        ));
    }
    // Percentage rewards computed from each side's own baseline must be
    // bit-identical too (this is the quantity training actually consumes).
    let ref_reward = RewardKind::Percentage.compute(ref_base.bsld(), ref_insp.bsld());
    let opt_reward = RewardKind::Percentage.compute(opt_base.bsld(), opt_insp.bsld());
    if ref_reward != opt_reward {
        return Err(format!(
            "percentage rewards diverge: reference {ref_reward} vs optimized {opt_reward}"
        ));
    }
    Ok(opt_insp)
}

fn divergence(
    phase: &str,
    case: &OracleCase,
    reference: &SimResult,
    optimized: &SimResult,
) -> String {
    let mut msg = format!(
        "{phase} diverged (policy {:?}, procs {}, backfill {}, max_rejections {}, {} jobs)\n",
        case.policy,
        case.procs,
        case.config.backfill,
        case.config.max_rejections,
        case.jobs.len()
    );
    let first_diff = reference
        .outcomes
        .iter()
        .zip(&optimized.outcomes)
        .position(|(a, b)| a != b);
    match first_diff {
        Some(i) => {
            msg.push_str(&format!(
                "first differing outcome at position {i}:\n  reference: {:?}\n  optimized: {:?}\n",
                reference.outcomes[i], optimized.outcomes[i]
            ));
        }
        None => {
            msg.push_str(&format!(
                "outcome counts / totals differ: reference {} jobs ({} rejections), optimized {} jobs ({} rejections)\n",
                reference.outcomes.len(),
                reference.rejections,
                optimized.outcomes.len(),
                optimized.rejections
            ));
        }
    }
    msg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_inspector_is_deterministic() {
        let obs = Observation {
            now: 12.0,
            job: Job::new(3, 2.0, 10.0, 12.0, 2),
            wait: 10.0,
            rejections: 1,
            max_rejections: 72,
            free_procs: 1,
            total_procs: 8,
            runnable: false,
            backfill_enabled: true,
            backfillable: 2,
            queue: vec![],
        };
        let mut a = DigestInspector::new(42);
        let mut b = DigestInspector::new(42);
        let mut c = DigestInspector::new(43);
        assert_eq!(a.inspect(&obs), b.inspect(&obs));
        // Different seeds must be able to disagree on *some* observation.
        let disagree = (0..64).any(|i| {
            let mut o = obs.clone();
            o.job.id = i;
            let mut a = DigestInspector::new(42);
            a.inspect(&o) != c.inspect(&o)
        });
        assert!(disagree);
    }

    #[test]
    fn case_generation_is_reproducible_and_valid() {
        for seed in 0..50 {
            let a = case_from_seed(seed);
            let b = case_from_seed(seed);
            assert_eq!(a.jobs, b.jobs);
            assert_eq!(a.config, b.config);
            assert!(!a.jobs.is_empty());
            assert!(a.jobs.iter().all(|j| j.procs >= 1 && j.procs <= a.procs));
            assert!(a.jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
            assert!(a.jobs.iter().all(|j| j.runtime >= 1.0 && j.estimate >= 1.0));
        }
    }

    #[test]
    fn seeded_cases_pass_the_oracle() {
        for seed in 0..32 {
            let case = case_from_seed(seed);
            if let Err(msg) = check_case(&case) {
                panic!("seed {seed}: {msg}");
            }
        }
    }
}
