//! **testkit** — deterministic fault injection and differential oracles
//! for the SchedInspector reproduction.
//!
//! Three pillars, all seeded and therefore replayable:
//!
//! - [`fault`]: a [`FaultPlan`] that wraps every connection a
//!   [`serve`] server accepts in a deterministic failure shim
//!   ([`FaultStream`]) — torn reads/writes, resets, stalls, accept-time
//!   drops — keyed by `(fault_seed, accept-order index)`;
//! - [`refsim`]: a naive, obviously-correct transcription of the paper's
//!   §3.2 event loop, sharing no bookkeeping code with the optimized
//!   [`simhpc::Simulator`];
//! - [`oracle`] and [`chaos`]: the differential oracle (both simulators
//!   must produce identical schedules, rejection counts, and percentage
//!   rewards on generated traces) and the chaos soak (a real server under
//!   a fault plan must uphold its request-ledger, ordering, and drain
//!   invariants — including across mid-soak model hot-swaps);
//! - [`storefault`]: a seeded disk-crash simulator ([`DiskFaultPlan`])
//!   for the durable run store's WAL — truncate-to-durable-floor plus
//!   torn garbage tails, driving the crash-recovery and
//!   resume-determinism suites.
//!
//! The `chaos` binary (`cargo run -p testkit --bin chaos`) runs the soak
//! standalone for CI; any failure prints the `(fault_seed,
//! workload_seed)` pair that reproduces it.

pub mod chaos;
pub mod fault;
pub mod oracle;
pub mod refsim;
pub mod storefault;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport, ClientTally};
pub use fault::{
    render_fault_log, FaultConfig, FaultKind, FaultPlan, FaultRecord, FaultStream, SplitMix64,
    TargetKind, TargetedFault,
};
pub use oracle::{case_from_seed, check_case, DigestInspector, OracleCase};
pub use refsim::reference_simulate;
pub use storefault::{CrashOutcome, DiskFaultPlan};
