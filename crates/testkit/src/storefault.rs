//! Seeded disk-crash simulation for the durable run store.
//!
//! There is no VFS layer to interpose on, so a "kill -9 mid-write" is
//! simulated directly against the WAL file's contents: keep a seeded
//! prefix **no shorter than the fsynced length** (durability means
//! exactly that synced bytes survive), then optionally append seeded
//! garbage — the torn tail a half-applied in-flight write leaves behind.
//! Reopening the store afterwards must replay exactly the durable record
//! prefix; the `wal_recovery` and `resume_determinism` integration tests
//! drive this over many seeds.
//!
//! Like every other fault source in this crate, the plan is a pure
//! function of its seed ([`SplitMix64`]), so a red run reproduces from
//! the printed seed alone.

use std::io::Write;
use std::path::Path;

use crate::fault::SplitMix64;

/// What one simulated crash did to the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashOutcome {
    /// File length before the crash.
    pub original_len: u64,
    /// Bytes of the original file kept (`>= durable_floor`).
    pub retained: u64,
    /// Seeded garbage bytes appended after the cut (a torn write tail).
    pub garbage: u64,
}

/// A seeded storage-crash injector.
#[derive(Debug)]
pub struct DiskFaultPlan {
    seed: u64,
    rng: SplitMix64,
}

impl DiskFaultPlan {
    /// A plan seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        DiskFaultPlan {
            seed,
            rng: SplitMix64::new(seed ^ 0xD15C_FA17),
        }
    }

    /// The seed this plan derives every decision from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Simulate `kill -9` against `path`: truncate to a seeded point in
    /// `[durable_floor, len]` (a partially-applied in-flight write), then
    /// with probability 0.6 append 1–24 seeded garbage bytes (a torn
    /// tail). `durable_floor` is the fsynced length — bytes below it are
    /// guaranteed to survive, exactly the contract a real disk gives
    /// `fsync`.
    pub fn crash(&mut self, path: &Path, durable_floor: u64) -> std::io::Result<CrashOutcome> {
        let original_len = std::fs::metadata(path)?.len();
        assert!(
            durable_floor <= original_len,
            "durable floor {durable_floor} beyond file length {original_len}"
        );
        let retained = self.rng.range_u64(durable_floor, original_len);
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(retained)?;
        drop(file);
        let garbage = if self.rng.chance(0.6) {
            self.rng.range_u64(1, 24)
        } else {
            0
        };
        if garbage > 0 {
            let bytes: Vec<u8> = (0..garbage).map(|_| self.rng.next_u64() as u8).collect();
            let mut file = std::fs::OpenOptions::new().append(true).open(path)?;
            file.write_all(&bytes)?;
        }
        Ok(CrashOutcome {
            original_len,
            retained,
            garbage,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use store::RunStore;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("schedstore-crash-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crash_never_loses_fsynced_commits() {
        let dir = tmp_dir("durable");
        for seed in 0..32u64 {
            let _ = std::fs::remove_dir_all(&dir);
            let mut store = RunStore::open(&dir).unwrap();
            store.put("a", b"alpha".to_vec());
            store.put("b", b"beta".to_vec());
            store.commit().unwrap();
            let durable = store.wal_synced_len();
            let wal = store.wal_path().to_path_buf();
            drop(store);

            let mut plan = DiskFaultPlan::new(seed);
            let outcome = plan.crash(&wal, durable).unwrap();
            assert!(outcome.retained >= durable, "seed {seed}: {outcome:?}");

            let store = RunStore::open(&dir).unwrap();
            assert_eq!(
                store.get("a").unwrap().as_deref(),
                Some(&b"alpha"[..]),
                "seed {seed} lost a committed record"
            );
            assert_eq!(store.get("b").unwrap().as_deref(), Some(&b"beta"[..]));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_outcomes_are_reproducible_from_the_seed() {
        let dir = tmp_dir("repro");
        let mut outcomes = Vec::new();
        for _round in 0..2 {
            let _ = std::fs::remove_dir_all(&dir);
            let mut store = RunStore::open(&dir).unwrap();
            for i in 0..20u32 {
                store.put(format!("k{i}"), vec![i as u8; 64]);
            }
            store.commit().unwrap();
            let durable = store.wal_synced_len();
            let wal = store.wal_path().to_path_buf();
            drop(store);
            let mut plan = DiskFaultPlan::new(77);
            outcomes.push(plan.crash(&wal, durable).unwrap());
        }
        assert_eq!(outcomes[0], outcomes[1], "same seed, same crash");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_repaired_and_store_stays_writable() {
        let dir = tmp_dir("rewrite");
        let mut store = RunStore::open(&dir).unwrap();
        store.put("k", b"v1".to_vec());
        store.commit().unwrap();
        let durable = store.wal_synced_len();
        let wal = store.wal_path().to_path_buf();
        drop(store);
        // Force the garbage-append path by trying seeds until one tears.
        let mut torn = false;
        for seed in 0..64u64 {
            let mut plan = DiskFaultPlan::new(seed);
            let outcome = plan.crash(&wal, durable).unwrap();
            if outcome.garbage > 0 {
                torn = true;
                break;
            }
        }
        assert!(torn, "some seed must produce a torn tail");
        let mut store = RunStore::open(&dir).unwrap();
        assert_eq!(store.get("k").unwrap().as_deref(), Some(&b"v1"[..]));
        store.put("k", b"v2".to_vec());
        store.commit().unwrap();
        drop(store);
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.get("k").unwrap().as_deref(), Some(&b"v2"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }
}
