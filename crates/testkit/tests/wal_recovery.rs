//! WAL crash-recovery at scale: proptest over (record stream ×
//! commit pattern × truncation point × torn-write fault seed).
//!
//! The invariant under test is the store's recovery contract: after any
//! simulated `kill -9` ([`testkit::DiskFaultPlan`] — truncate to a
//! seeded point no shorter than the fsynced length, optionally append a
//! torn garbage tail), reopening the WAL replays **exactly a prefix of
//! the appended record stream**, that prefix covers at least every
//! record whose commit was fsynced before the crash, and the repaired
//! log accepts new appends that survive the next recovery.

use proptest::prelude::*;
use store::{Op, StoreMetrics, Wal};

fn tmp_wal(kind: &str, tag: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "schedstore-walprop-{kind}-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("wal.log")
}

fn build_op(i: usize, put: bool, key: u8, len: u8) -> Op {
    let key = format!("key-{key}");
    if put {
        Op::Put {
            key,
            value: (0..len).map(|b| b.wrapping_mul(i as u8 + 1)).collect(),
        }
    } else {
        Op::Delete { key }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn recovery_replays_exactly_the_durable_prefix(
        raw in prop::collection::vec((any::<bool>(), any::<u8>(), any::<u8>()), 1..40),
        commit_every in 1usize..6,
        durable_choice in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        let path = tmp_wal("prefix", fault_seed ^ (raw.len() as u64) ^ commit_every as u64);
        let ops: Vec<Op> = raw
            .iter()
            .enumerate()
            .map(|(i, &(put, key, len))| build_op(i, put, key, len))
            .collect();

        // Append with a seeded commit pattern, recording after each
        // commit how many records were fsynced and at what byte offset.
        let (mut wal, _) = Wal::open(&path, StoreMetrics::detached()).unwrap();
        let mut commits: Vec<(u64, usize)> = Vec::new(); // (synced_len, ops)
        for (i, op) in ops.iter().enumerate() {
            wal.append(op);
            if (i + 1) % commit_every == 0 {
                wal.commit().unwrap();
                commits.push((wal.synced_len(), i + 1));
            }
        }
        wal.commit().unwrap();
        commits.push((wal.synced_len(), ops.len()));
        drop(wal);

        // Crash: everything past some fsynced commit is "in flight". The
        // fault plan keeps at least the durable floor and may leave a
        // partially-cut frame plus torn garbage above it.
        let k = (durable_choice % commits.len() as u64) as usize;
        let (floor, guaranteed) = commits[k];
        let outcome = testkit::DiskFaultPlan::new(fault_seed)
            .crash(&path, floor)
            .unwrap();

        let (mut wal, replay) = Wal::open(&path, StoreMetrics::detached()).unwrap();
        prop_assert!(
            replay.ops.len() >= guaranteed,
            "lost fsynced records: {} replayed, {} durable (outcome {:?})",
            replay.ops.len(), guaranteed, outcome
        );
        prop_assert!(replay.ops.len() <= ops.len());
        prop_assert_eq!(
            &replay.ops[..],
            &ops[..replay.ops.len()],
            "recovery is not an exact prefix of the appended stream"
        );
        prop_assert!(replay.durable_len <= outcome.retained);

        // The repaired log must keep working: one more record, one more
        // recovery, and the stream extends the recovered prefix.
        let extra = Op::Put { key: "post-crash".into(), value: b"alive".to_vec() };
        let recovered = replay.ops.len();
        wal.append(&extra);
        wal.commit().unwrap();
        drop(wal);
        let (_, after) = Wal::open(&path, StoreMetrics::detached()).unwrap();
        prop_assert_eq!(after.ops.len(), recovered + 1);
        prop_assert_eq!(&after.ops[recovered], &extra);
        prop_assert!(after.tail.is_none(), "repair must have removed the torn tail");

        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn arbitrary_garbage_files_never_break_recovery(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let path = tmp_wal("garbage", bytes.len() as u64);
        std::fs::write(&path, &bytes).unwrap();
        // Opening must repair (never panic, never loop): whatever frames
        // happen to decode are a valid stream, the rest is torn tail.
        let (mut wal, replay) = Wal::open(&path, StoreMetrics::detached()).unwrap();
        let recovered = replay.ops.len();
        let op = Op::Put { key: "k".into(), value: b"v".to_vec() };
        wal.append(&op);
        wal.commit().unwrap();
        drop(wal);
        let (_, after) = Wal::open(&path, StoreMetrics::detached()).unwrap();
        prop_assert_eq!(after.ops.len(), recovered + 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
