//! Crash-safe training end to end: checkpoints journaled through the
//! durable run store, a simulated `kill -9` (including torn-write /
//! partial-fsync fault plans against the WAL), then `restore` — and the
//! resumed run's final checkpoint must be **byte-identical** to an
//! uninterrupted run of the same seed.

use inspector::{InspectorConfig, Trainer};
use policies::PolicyKind;
use store::{RunStore, StoreConfig};
use testkit::DiskFaultPlan;
use workload::{profiles, synthetic};

const EPOCHS: usize = 4;
const CKPT_KEY: &str = "checkpoint/latest";

fn config() -> InspectorConfig {
    InspectorConfig {
        batch_size: 4,
        seq_len: 32,
        epochs: EPOCHS,
        seed: 11,
        workers: 2,
        ..Default::default()
    }
}

fn trainer() -> Trainer {
    let trace = synthetic::generate(&profiles::SDSC_SP2, 400, 3);
    Trainer::builder(trace)
        .policy(PolicyKind::Sjf)
        .config(config())
        .build()
        .unwrap()
}

/// Keep everything in the WAL (no segment flush) so the crash plan
/// exercises WAL recovery, the hard case.
fn store_config() -> StoreConfig {
    StoreConfig {
        flush_bytes: 64 << 20,
        ..StoreConfig::default()
    }
}

fn tmp_dir(tag: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("schedstore-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn uninterrupted_reference() -> String {
    let mut t = trainer();
    for e in 0..EPOCHS {
        t.train_epoch(e);
    }
    t.checkpoint_text(EPOCHS)
}

#[test]
fn killed_training_resumes_byte_identically_under_crash_faults() {
    let reference = uninterrupted_reference();
    for fault_seed in [1u64, 2, 3] {
        let dir = tmp_dir(fault_seed);

        // Train 2 of 4 epochs, journaling a checkpoint per epoch, then
        // die: the process vanishes and the fault plan mangles the WAL
        // tail (truncate to a seeded point >= the fsynced length, maybe
        // a torn garbage tail).
        {
            let mut store = RunStore::open_with(&dir, store_config(), None).unwrap();
            let mut t = trainer();
            for e in 0..2 {
                t.train_epoch(e);
                store.put(CKPT_KEY, t.checkpoint_text(e + 1).into_bytes());
                store.commit().unwrap();
            }
            let durable = store.wal_synced_len();
            let wal = store.wal_path().to_path_buf();
            drop(store);
            DiskFaultPlan::new(fault_seed).crash(&wal, durable).unwrap();
        }

        // Resume: recover the durable checkpoint, restore, finish.
        let store = RunStore::open_with(&dir, store_config(), None).unwrap();
        let text = String::from_utf8(
            store
                .get(CKPT_KEY)
                .unwrap()
                .expect("fsynced checkpoint must survive the crash"),
        )
        .unwrap();
        let mut t = trainer();
        let done = t.restore(&text).unwrap();
        assert_eq!(done, 2, "fault seed {fault_seed}");
        for e in done..EPOCHS {
            t.train_epoch(e);
        }
        assert_eq!(
            t.checkpoint_text(EPOCHS),
            reference,
            "fault seed {fault_seed}: resumed run diverged from the uninterrupted one"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn torn_inflight_checkpoint_falls_back_to_the_previous_epoch() {
    // The kill lands *during* the epoch-2 checkpoint commit: only the
    // epoch-1 commit is fsynced, so the crash may cut anywhere inside
    // the in-flight frame. Recovery yields epoch 1 or epoch 2 — whichever
    // survived whole — and resuming from either must reconverge on the
    // byte-identical final checkpoint.
    let reference = uninterrupted_reference();
    let mut seen = std::collections::BTreeSet::new();
    for fault_seed in 0..6u64 {
        let dir = tmp_dir(0xF00D ^ fault_seed);
        let (wal, durable_floor) = {
            let mut store = RunStore::open_with(&dir, store_config(), None).unwrap();
            let mut t = trainer();
            t.train_epoch(0);
            store.put(CKPT_KEY, t.checkpoint_text(1).into_bytes());
            store.commit().unwrap();
            let floor = store.wal_synced_len();
            t.train_epoch(1);
            store.put(CKPT_KEY, t.checkpoint_text(2).into_bytes());
            store.commit().unwrap();
            (store.wal_path().to_path_buf(), floor)
        };
        DiskFaultPlan::new(fault_seed)
            .crash(&wal, durable_floor)
            .unwrap();

        let store = RunStore::open_with(&dir, store_config(), None).unwrap();
        let text = String::from_utf8(
            store
                .get(CKPT_KEY)
                .unwrap()
                .expect("the epoch-1 checkpoint was fsynced"),
        )
        .unwrap();
        let mut t = trainer();
        let done = t.restore(&text).unwrap();
        assert!(done == 1 || done == 2, "recovered epochs_done {done}");
        seen.insert(done);
        for e in done..EPOCHS {
            t.train_epoch(e);
        }
        assert_eq!(
            t.checkpoint_text(EPOCHS),
            reference,
            "fault seed {fault_seed}: resume from epoch {done} diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(
        seen.contains(&1),
        "across the seeds, at least one crash should cut the in-flight frame"
    );
}
