//! The differential oracle at scale: proptest-generated traces plus
//! seeded realistic episodes, all required to schedule identically on the
//! optimized simulator and the naive reference transcription.

use proptest::prelude::*;
use simhpc::{NoInspector, SimConfig, Simulator};
use testkit::{case_from_seed, check_case, reference_simulate, DigestInspector};
use workload::Job;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// ≥1000 generated traces through both simulators: identical
    /// schedules, rejection counts, and percentage rewards (the
    /// acceptance bar for the oracle).
    #[test]
    fn optimized_and_reference_simulators_agree(seed in any::<u64>()) {
        let case = case_from_seed(seed);
        if let Err(msg) = check_case(&case) {
            panic!("case seed {seed}: {msg}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Directly generated micro-traces (independent of the case
    /// generator) with extreme shapes: single-proc floods, simultaneous
    /// arrivals, estimates far off actuals.
    #[test]
    fn micro_traces_agree(
        raw in prop::collection::vec(
            (0u64..200, 1u64..400, 1u64..600, 1u32..8),
            1..12,
        ),
        backfill in any::<bool>(),
        max_rejections in 0u32..3,
        inspector_seed in any::<u64>(),
    ) {
        let mut jobs: Vec<Job> = raw
            .iter()
            .enumerate()
            .map(|(i, &(submit, runtime, estimate, procs))| {
                Job::new(i as u64 + 1, submit as f64, runtime as f64, estimate as f64, procs)
            })
            .collect();
        jobs.sort_by(|a, b| a.submit.total_cmp(&b.submit));
        let config = SimConfig { backfill, max_interval: 600.0, max_rejections };
        let procs = 8;

        let mut opt_policy = policies::PolicyKind::Sjf.build();
        let mut ref_policy = policies::PolicyKind::Sjf.build();
        let mut opt_hook = DigestInspector::new(inspector_seed);
        let mut ref_hook = DigestInspector::new(inspector_seed);
        let optimized = Simulator::new(procs, config)
            .run_inspected(&jobs, opt_policy.as_mut(), &mut opt_hook);
        let reference =
            reference_simulate(&jobs, procs, &config, ref_policy.as_mut(), &mut ref_hook);
        prop_assert_eq!(optimized, reference);
    }
}

/// Seeded fault-free "episodes": realistic synthetic traces at paper
/// scale, uninspected and digest-inspected, through both simulators.
#[test]
fn synthetic_trace_episodes_agree() {
    let trace = workload::synthetic::generate(&workload::profiles::SDSC_SP2, 256, 42);
    let procs = trace.procs;
    for (start, len, seed) in [(0usize, 64usize, 1u64), (64, 128, 2), (100, 96, 3)] {
        // An episode slice, rebased to start at t = 0 like training does.
        let jobs: Vec<Job> = trace.sequence(start, len);
        for config in [SimConfig::default(), SimConfig::with_backfill()] {
            for kind in [policies::PolicyKind::Fcfs, policies::PolicyKind::F1] {
                let mut opt_policy = kind.build();
                let mut ref_policy = kind.build();
                let base_opt = Simulator::new(procs, config).run(&jobs, opt_policy.as_mut());
                let base_ref = reference_simulate(
                    &jobs,
                    procs,
                    &config,
                    ref_policy.as_mut(),
                    &mut NoInspector,
                );
                assert_eq!(
                    base_opt, base_ref,
                    "base {kind:?} backfill={}",
                    config.backfill
                );

                let mut opt_policy = kind.build();
                let mut ref_policy = kind.build();
                let mut opt_hook = DigestInspector::new(seed);
                let mut ref_hook = DigestInspector::new(seed);
                let insp_opt = Simulator::new(procs, config).run_inspected(
                    &jobs,
                    opt_policy.as_mut(),
                    &mut opt_hook,
                );
                let insp_ref =
                    reference_simulate(&jobs, procs, &config, ref_policy.as_mut(), &mut ref_hook);
                assert_eq!(
                    insp_opt, insp_ref,
                    "inspected {kind:?} backfill={} seed={seed}",
                    config.backfill
                );
                assert!(insp_opt.rejections > 0 || insp_opt.inspections == 0);
            }
        }
    }
}

/// A stateful policy (Slurm multifactor fairshare) must also agree: its
/// `on_start` accounting is order-sensitive, so any divergence in start
/// order compounds — a sharp probe for scheduling-order bugs.
#[test]
fn stateful_slurm_policy_agrees() {
    let trace = workload::synthetic::generate(&workload::profiles::SDSC_SP2, 96, 7);
    let jobs = &trace.jobs[..];
    for config in [SimConfig::default(), SimConfig::with_backfill()] {
        let mut opt_policy = policies::SlurmMultifactor::from_trace(&trace);
        let mut ref_policy = policies::SlurmMultifactor::from_trace(&trace);
        let mut opt_hook = DigestInspector::new(99);
        let mut ref_hook = DigestInspector::new(99);
        let optimized =
            Simulator::new(trace.procs, config).run_inspected(jobs, &mut opt_policy, &mut opt_hook);
        let reference =
            reference_simulate(jobs, trace.procs, &config, &mut ref_policy, &mut ref_hook);
        assert_eq!(optimized, reference, "slurm backfill={}", config.backfill);
    }
}
