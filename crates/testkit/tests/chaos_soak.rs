//! Short seeded chaos soaks: a real `serve` server under deterministic
//! fault plans must uphold every invariant in [`testkit::chaos`]. CI runs
//! longer soaks over a seed matrix via the `chaos` binary; these keep the
//! harness honest inside `cargo test`.

use testkit::{run_chaos, ChaosConfig, FaultConfig};

#[test]
fn soak_under_standard_fault_mix() {
    for (fault_seed, workload_seed) in [(1u64, 1u64), (2, 3)] {
        let cfg = ChaosConfig {
            clients: 3,
            conns_per_client: 4,
            requests_per_conn: 5,
            workers: 3,
            ..ChaosConfig::new(fault_seed, workload_seed)
        };
        let report = run_chaos(&cfg);
        assert!(report.ok(), "{}", report.render());
    }
}

#[test]
fn soak_under_aggressive_resets() {
    // Heavy destructive faults: most connections die mid-flight. The
    // ledger and drain invariants must hold regardless.
    let cfg = ChaosConfig {
        fault: FaultConfig {
            reset: 0.15,
            torn_write: 0.10,
            accept_drop: 0.20,
            ..FaultConfig::standard(5)
        },
        workload_seed: 8,
        clients: 3,
        conns_per_client: 4,
        requests_per_conn: 5,
        workers: 3,
        shards: 2,
        watchdog_secs: 60,
        swaps: 0,
        trace: false,
    };
    let report = run_chaos(&cfg);
    assert!(report.ok(), "{}", report.render());
    assert!(!report.fault_log.is_empty());
}

#[test]
fn same_seed_pair_reproduces_the_same_fault_plan() {
    // The reproduction contract: the fault decision at every
    // (connection, op) coordinate is a pure function of the fault seed,
    // and ops advance only on deterministic events. Run the same soak
    // twice with a single client (so accept order is deterministic) and
    // require the identical fault log. Torn writes are disabled here
    // because their recorded prefix length derives from the response
    // byte count, which a `deadline_ms: 0` request can race.
    let base = ChaosConfig::new(21, 22);
    let cfg = ChaosConfig {
        fault: FaultConfig {
            torn_write: 0.0,
            ..base.fault
        },
        clients: 1,
        conns_per_client: 6,
        requests_per_conn: 4,
        workers: 1,
        ..base
    };
    let a = run_chaos(&cfg);
    let b = run_chaos(&cfg);
    assert!(a.ok(), "{}", a.render());
    assert!(b.ok(), "{}", b.render());
    assert_eq!(
        a.fault_log, b.fault_log,
        "identical seeds must replay identical fault schedules"
    );
}
