//! Scenario-compiled traces through the differential simulator oracle.
//!
//! The scenario engine produces job shapes the calibrated synthetic
//! generators never emit (tenant-skewed users, burst campaigns landing a
//! second apart, drained arrival windows), so its output must be pushed
//! through the same optimized-vs-reference check as every other trace
//! source: identical schedules, rejection counts, and decision counters
//! on both simulators, inspected and uninspected.

use scenario::{compile, ScenarioSpec};
use simhpc::SimConfig;
use testkit::{check_case, OracleCase};

const SPEC: &str = r#"
[scenario]
name = "oracle-mix"
procs = 64
horizon_hours = 2.0

[[tenant]]
name = "batch"
users = 400
rate_per_hour = 50.0
arrival = "diurnal"

[[tenant]]
name = "interactive"
users = 30
rate_per_hour = 25.0
arrival = "bursty"
mean_runtime_s = 600.0

[[event]]
kind = "flash_crowd"
tenant = "interactive"
start_hours = 0.5
duration_hours = 0.25
multiplier = 4.0

[[event]]
kind = "drain"
tenant = "batch"
start_hours = 1.5
duration_hours = 0.5
"#;

#[test]
fn scenario_traces_agree_on_both_simulators() {
    let spec = ScenarioSpec::parse(SPEC).expect("spec parses");
    for seed in [1u64, 7, 1234] {
        let compiled = compile(&spec, seed).expect("compiles");
        assert!(
            !compiled.trace.jobs.is_empty(),
            "seed {seed}: scenario compiled to an empty trace"
        );
        for config in [SimConfig::default(), SimConfig::with_backfill()] {
            for policy in [policies::PolicyKind::Fcfs, policies::PolicyKind::Sjf] {
                for inspector_seed in [None, Some(seed ^ 0xABCD)] {
                    let case = OracleCase {
                        jobs: compiled.trace.jobs.clone(),
                        procs: compiled.trace.procs,
                        config,
                        policy,
                        inspector_seed,
                    };
                    if let Err(msg) = check_case(&case) {
                        panic!(
                            "seed {seed} policy {policy:?} backfill={} inspected={}: {msg}",
                            config.backfill,
                            inspector_seed.is_some()
                        );
                    }
                }
            }
        }
    }
}
