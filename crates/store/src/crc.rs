//! CRC-32 (IEEE 802.3 polynomial, reflected) — the checksum guarding
//! every WAL and segment record and the manifest trailer.

const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"hello world");
        let mut data = *b"hello world";
        data[4] ^= 1;
        assert_ne!(crc32(&data), base);
    }
}
