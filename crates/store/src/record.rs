//! The shared record framing for WAL and segment files.
//!
//! Every record is a self-checking frame:
//!
//! ```text
//! +------------+------------+------------------+
//! | len: u32LE | crc: u32LE | payload (len B)  |
//! +------------+------------+------------------+
//! ```
//!
//! `crc` is the CRC-32 of the payload. The payload encodes one operation:
//!
//! ```text
//! tag: u8 (1 = put, 2 = delete)
//! key_len: u32LE
//! key: key_len bytes (UTF-8)
//! value: remaining bytes (puts only)
//! ```
//!
//! A frame either decodes completely and checksums clean, or the reader
//! knows the exact byte offset and reason it stopped.

use crate::crc::crc32;

/// Hard upper bound on a single payload; anything larger in a length
/// header is treated as framing corruption rather than attempted.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Bytes of frame header (length + checksum).
pub const FRAME_HEADER: usize = 8;

const TAG_PUT: u8 = 1;
const TAG_DELETE: u8 = 2;

/// One logical store mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Bind `key` to `value`.
    Put {
        /// Record key.
        key: String,
        /// Record value.
        value: Vec<u8>,
    },
    /// Remove `key` (a tombstone until compaction drops it).
    Delete {
        /// Record key.
        key: String,
    },
}

impl Op {
    /// The key this operation touches.
    pub fn key(&self) -> &str {
        match self {
            Op::Put { key, .. } | Op::Delete { key } => key,
        }
    }
}

/// Append the framed encoding of `op` to `out`.
pub fn encode_frame(op: &Op, out: &mut Vec<u8>) {
    let payload_at = out.len() + FRAME_HEADER;
    out.extend_from_slice(&[0u8; FRAME_HEADER]);
    match op {
        Op::Put { key, value } => {
            out.push(TAG_PUT);
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key.as_bytes());
            out.extend_from_slice(value);
        }
        Op::Delete { key } => {
            out.push(TAG_DELETE);
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key.as_bytes());
        }
    }
    let len = (out.len() - payload_at) as u32;
    let crc = crc32(&out[payload_at..]);
    out[payload_at - FRAME_HEADER..payload_at - 4].copy_from_slice(&len.to_le_bytes());
    out[payload_at - 4..payload_at].copy_from_slice(&crc.to_le_bytes());
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameFault {
    /// Fewer than [`FRAME_HEADER`] + `len` bytes remain — a torn write.
    Truncated,
    /// The length header is impossibly large.
    BadLength(u32),
    /// Stored vs computed CRC-32.
    Checksum {
        /// Checksum stored in the frame.
        expected: u32,
        /// Checksum of the payload as read.
        actual: u32,
    },
    /// The payload did not parse as an operation.
    BadPayload(String),
}

impl std::fmt::Display for FrameFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameFault::Truncated => write!(f, "truncated frame"),
            FrameFault::BadLength(len) => write!(f, "impossible frame length {len}"),
            FrameFault::Checksum { expected, actual } => {
                write!(
                    f,
                    "crc mismatch: stored {expected:#010x}, computed {actual:#010x}"
                )
            }
            FrameFault::BadPayload(msg) => write!(f, "bad payload: {msg}"),
        }
    }
}

/// Decode the frame starting at `buf[offset..]`. On success returns the
/// operation and the offset just past the frame.
pub fn decode_frame(buf: &[u8], offset: usize) -> Result<(Op, usize), FrameFault> {
    let rest = &buf[offset.min(buf.len())..];
    if rest.len() < FRAME_HEADER {
        return Err(FrameFault::Truncated);
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
    let expected = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(FrameFault::BadLength(len));
    }
    let len = len as usize;
    if rest.len() < FRAME_HEADER + len {
        return Err(FrameFault::Truncated);
    }
    let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
    let actual = crc32(payload);
    if actual != expected {
        return Err(FrameFault::Checksum { expected, actual });
    }
    let op = decode_payload(payload).map_err(FrameFault::BadPayload)?;
    Ok((op, offset + FRAME_HEADER + len))
}

fn decode_payload(payload: &[u8]) -> Result<Op, String> {
    if payload.len() < 5 {
        return Err(format!("payload too short ({} bytes)", payload.len()));
    }
    let tag = payload[0];
    let key_len = u32::from_le_bytes(payload[1..5].try_into().expect("4 bytes")) as usize;
    let rest = &payload[5..];
    if rest.len() < key_len {
        return Err(format!("key length {key_len} exceeds payload"));
    }
    let key = std::str::from_utf8(&rest[..key_len])
        .map_err(|e| format!("key is not UTF-8: {e}"))?
        .to_string();
    match tag {
        TAG_PUT => Ok(Op::Put {
            key,
            value: rest[key_len..].to_vec(),
        }),
        TAG_DELETE if rest.len() == key_len => Ok(Op::Delete { key }),
        TAG_DELETE => Err("delete record carries a value".to_string()),
        other => Err(format!("unknown record tag {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(op: Op) {
        let mut buf = Vec::new();
        encode_frame(&op, &mut buf);
        let (back, end) = decode_frame(&buf, 0).expect("decodes");
        assert_eq!(back, op);
        assert_eq!(end, buf.len());
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Op::Put {
            key: "checkpoint/latest".into(),
            value: vec![0, 1, 2, 255],
        });
        roundtrip(Op::Put {
            key: String::new(),
            value: Vec::new(),
        });
        roundtrip(Op::Delete {
            key: "epoch/00000004".into(),
        });
    }

    #[test]
    fn several_frames_decode_in_sequence() {
        let mut buf = Vec::new();
        let ops = vec![
            Op::Put {
                key: "a".into(),
                value: b"1".to_vec(),
            },
            Op::Delete { key: "a".into() },
            Op::Put {
                key: "b".into(),
                value: b"22".to_vec(),
            },
        ];
        for op in &ops {
            encode_frame(op, &mut buf);
        }
        let mut offset = 0;
        let mut back = Vec::new();
        while offset < buf.len() {
            let (op, next) = decode_frame(&buf, offset).expect("decodes");
            back.push(op);
            offset = next;
        }
        assert_eq!(back, ops);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let mut buf = Vec::new();
        encode_frame(
            &Op::Put {
                key: "k".into(),
                value: b"value".to_vec(),
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            let err = decode_frame(&buf[..cut], 0).expect_err("short frame must not decode");
            assert_eq!(err, FrameFault::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn flipped_bit_is_checksum_mismatch() {
        let mut buf = Vec::new();
        encode_frame(
            &Op::Put {
                key: "k".into(),
                value: b"value".to_vec(),
            },
            &mut buf,
        );
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert!(matches!(
            decode_frame(&buf, 0),
            Err(FrameFault::Checksum { .. })
        ));
    }

    #[test]
    fn absurd_length_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&buf, 0),
            Err(FrameFault::BadLength(_))
        ));
    }
}
