//! Typed store failures.
//!
//! Every fallible store operation returns [`StoreError`]. The variants
//! mirror the durability invariants: framing corruption carries the byte
//! offset of the bad record, checksum mismatches carry both sums, and
//! manifest version skew carries the versions involved so operators can
//! tell a stale reader from a second writer.

use std::io;
use std::path::PathBuf;

/// Errors from the durable run store.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// What the store was doing (`"open wal"`, `"rename manifest"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A record frame is structurally invalid (impossible length, short
    /// payload, unknown tag) at `offset`.
    CorruptRecord {
        /// File containing the bad frame.
        path: PathBuf,
        /// Byte offset of the frame header.
        offset: u64,
        /// Human-readable detail.
        detail: String,
    },
    /// A record's CRC32 did not match its payload at `offset`.
    ChecksumMismatch {
        /// File containing the bad frame.
        path: PathBuf,
        /// Byte offset of the frame header.
        offset: u64,
        /// Checksum stored in the frame.
        expected: u32,
        /// Checksum of the payload as read.
        actual: u32,
    },
    /// The `MANIFEST` file is malformed.
    CorruptManifest {
        /// Manifest path.
        path: PathBuf,
        /// 1-based line of the first offending entry (0 = whole file).
        line: usize,
        /// Human-readable detail.
        msg: String,
    },
    /// The manifest version moved backwards between two reads — either a
    /// second writer is live on the same directory or the directory was
    /// replaced underneath the reader.
    ManifestVersionSkew {
        /// Manifest path.
        path: PathBuf,
        /// Highest version this handle had previously observed.
        seen: u64,
        /// Version found on disk now.
        found: u64,
    },
    /// The requested model generation is not in the manifest.
    UnknownGeneration(u64),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "store io: {op} {}: {source}", path.display())
            }
            StoreError::CorruptRecord {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt record in {} at offset {offset}: {detail}",
                path.display()
            ),
            StoreError::ChecksumMismatch {
                path,
                offset,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in {} at offset {offset}: stored {expected:#010x}, \
                 computed {actual:#010x}",
                path.display()
            ),
            StoreError::CorruptManifest { path, line, msg } => {
                write!(f, "corrupt manifest {} line {line}: {msg}", path.display())
            }
            StoreError::ManifestVersionSkew { path, seen, found } => write!(
                f,
                "manifest version skew in {}: had seen v{seen}, disk now has v{found} \
                 (second writer or replaced store directory?)",
                path.display()
            ),
            StoreError::UnknownGeneration(generation) => {
                write!(f, "unknown model generation {generation}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    pub(crate) fn io(op: &'static str, path: impl Into<PathBuf>, source: io::Error) -> Self {
        StoreError::Io {
            op,
            path: path.into(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_essentials() {
        let e = StoreError::ChecksumMismatch {
            path: PathBuf::from("/tmp/wal"),
            offset: 40,
            expected: 0xdead_beef,
            actual: 0x0bad_f00d,
        };
        let s = e.to_string();
        assert!(s.contains("offset 40"), "{s}");
        assert!(s.contains("0xdeadbeef"), "{s}");

        let e = StoreError::ManifestVersionSkew {
            path: PathBuf::from("/tmp/MANIFEST"),
            seen: 9,
            found: 3,
        };
        assert!(e.to_string().contains("v9"), "{e}");

        let e = StoreError::io(
            "open wal",
            "/nope",
            io::Error::from(io::ErrorKind::NotFound),
        );
        assert!(std::error::Error::source(&e).is_some());
    }
}
