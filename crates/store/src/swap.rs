//! [`SwapCell`] — a single-writer, multi-reader hot-swap slot with
//! epoch-based reclamation, built for zero-drop model swaps in `serve`.
//!
//! Each reader (a serve shard) owns one cache-line-padded epoch counter.
//! A quiescent reader's epoch is **even**; [`SwapCell::pin`] makes it
//! odd, loads the current value pointer, and the guard's drop makes it
//! even again. [`SwapCell::publish`] swaps the pointer in, then waits
//! until every reader epoch is even or has moved past its snapshot
//! before freeing the old value — so a reader never observes a freed
//! model, and the writer never blocks readers (readers are wait-free;
//! only the writer spins).
//!
//! The ordering argument is the classic store-load fence pairing: a
//! reader's pin (`fetch_add` SeqCst) happens before its pointer load
//! (SeqCst), and the writer's pointer swap (SeqCst) happens before its
//! epoch snapshot (SeqCst). Either the reader's load sees the new
//! pointer, or the writer's snapshot sees the odd epoch and waits.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

#[repr(align(64))]
struct Epoch(AtomicU64);

struct Slot<T> {
    generation: u64,
    value: T,
}

/// The hot-swap cell. `T` is the shared payload (e.g. a model); readers
/// clone what they need out of it under a short pin.
pub struct SwapCell<T> {
    ptr: AtomicPtr<Slot<T>>,
    /// Mirror of the current slot's generation, readable without a pin.
    /// Updated after the pointer swap, so a reader that sees the new
    /// generation here is guaranteed to pin at least that generation.
    generation: AtomicU64,
    epochs: Box<[Epoch]>,
}

// SAFETY: the epoch protocol serializes destruction of `T` after all
// reader pins of it end; `T` crosses threads, hence the bounds.
unsafe impl<T: Send + Sync> Sync for SwapCell<T> {}
unsafe impl<T: Send> Send for SwapCell<T> {}

/// A pinned read of the current value. Keep it short: a publish cannot
/// complete while any guard from an older generation is live.
pub struct SwapGuard<'a, T> {
    slot: &'a Slot<T>,
    epoch: &'a AtomicU64,
}

impl<T> std::ops::Deref for SwapGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.slot.value
    }
}

impl<T> SwapGuard<'_, T> {
    /// Generation of the value this guard pinned.
    pub fn generation(&self) -> u64 {
        self.slot.generation
    }
}

impl<T> Drop for SwapGuard<'_, T> {
    fn drop(&mut self) {
        // Odd -> even: the reader is quiescent again.
        self.epoch.fetch_add(1, Ordering::Release);
    }
}

impl<T> SwapCell<T> {
    /// A cell with `readers` reader slots holding (`generation`,
    /// `value`).
    pub fn new(readers: usize, generation: u64, value: T) -> Self {
        let slot = Box::into_raw(Box::new(Slot { generation, value }));
        SwapCell {
            ptr: AtomicPtr::new(slot),
            generation: AtomicU64::new(generation),
            epochs: (0..readers.max(1))
                .map(|_| Epoch(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Number of reader slots.
    pub fn readers(&self) -> usize {
        self.epochs.len()
    }

    /// Generation of the newest published value. May briefly lag a
    /// concurrent publish; never runs ahead of what [`pin`](Self::pin)
    /// returns.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Pin the current value for reader slot `reader`. Wait-free.
    ///
    /// # Panics
    /// If `reader >= self.readers()`, or if this slot already holds a
    /// live guard (pins do not nest).
    pub fn pin(&self, reader: usize) -> SwapGuard<'_, T> {
        let epoch = &self.epochs[reader].0;
        let before = epoch.fetch_add(1, Ordering::SeqCst);
        assert!(
            before.is_multiple_of(2),
            "SwapCell pins do not nest (reader {reader})"
        );
        let slot = self.ptr.load(Ordering::SeqCst);
        // SAFETY: the slot cannot be freed while this reader's epoch is
        // odd — publish waits for it (see module docs).
        let slot = unsafe { &*slot };
        SwapGuard { slot, epoch }
    }

    /// Publish a new value and block until no reader can still see the
    /// old one, then free it. Single writer at a time (callers hold the
    /// watcher/CLI side; enforce externally or wrap in a mutex).
    pub fn publish(&self, generation: u64, value: T) {
        let new = Box::into_raw(Box::new(Slot { generation, value }));
        let old = self.ptr.swap(new, Ordering::SeqCst);
        self.generation.store(generation, Ordering::Release);
        // Wait for every reader pinned before the swap to unpin.
        for epoch in self.epochs.iter() {
            let snapshot = epoch.0.load(Ordering::SeqCst);
            if snapshot % 2 == 0 {
                continue; // quiescent at snapshot time; cannot hold `old`
            }
            while epoch.0.load(Ordering::Acquire) == snapshot {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
        // SAFETY: every reader that could have loaded `old` has since
        // unpinned; no new reader can load it (the pointer now points at
        // `new`).
        drop(unsafe { Box::from_raw(old) });
    }
}

impl<T> Drop for SwapCell<T> {
    fn drop(&mut self) {
        // Exclusive access: no guards can outlive the cell (lifetimes).
        drop(unsafe { Box::from_raw(*self.ptr.get_mut()) });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SwapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwapCell")
            .field("generation", &self.generation())
            .field("readers", &self.readers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn pin_sees_published_values_and_generations_advance() {
        let cell = SwapCell::new(2, 1, "one".to_string());
        assert_eq!(*cell.pin(0), "one");
        assert_eq!(cell.pin(1).generation(), 1);
        cell.publish(2, "two".to_string());
        assert_eq!(cell.generation(), 2);
        assert_eq!(*cell.pin(0), "two");
    }

    #[test]
    fn publish_waits_for_pinned_readers_before_freeing() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked(#[allow(dead_code)] u64);
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }

        let cell = Arc::new(SwapCell::new(1, 1, Tracked(1)));
        let guard_cell = Arc::clone(&cell);
        std::thread::scope(|scope| {
            let guard = guard_cell.pin(0);
            assert_eq!(guard.0, 1);
            let publisher = scope.spawn(|| {
                cell.publish(2, Tracked(2));
            });
            // The publisher must not complete (and must not free the old
            // value) while the guard is live.
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert_eq!(
                DROPS.load(Ordering::SeqCst),
                0,
                "old value freed under a pin"
            );
            assert!(
                !publisher.is_finished(),
                "publish returned under a live pin"
            );
            drop(guard);
            publisher.join().unwrap();
            assert_eq!(
                DROPS.load(Ordering::SeqCst),
                1,
                "old value freed exactly once"
            );
        });
    }

    #[test]
    fn concurrent_readers_never_see_torn_or_freed_values() {
        // Value carries its generation twice; a torn/freed read would
        // break the invariant value.0 == value.1 == slot generation.
        let cell = Arc::new(SwapCell::new(4, 0, (0u64, 0u64)));
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for reader in 0..4 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last_seen = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let guard = cell.pin(reader);
                        let (a, b) = *guard;
                        assert_eq!(a, b, "torn value");
                        assert_eq!(a, guard.generation(), "value does not match generation");
                        assert!(a >= last_seen, "generation went backwards");
                        last_seen = a;
                    }
                });
            }
            for g in 1..=500u64 {
                cell.publish(g, (g, g));
            }
            stop.store(1, Ordering::Relaxed);
        });
        assert_eq!(cell.generation(), 500);
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn nested_pins_panic() {
        let cell = SwapCell::new(1, 0, ());
        let _a = cell.pin(0);
        let _b = cell.pin(0);
    }
}
