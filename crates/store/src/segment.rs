//! Immutable, sorted segment files.
//!
//! A segment is a memtable frozen to disk: a magic line followed by
//! [`crate::record`] frames in strictly ascending key order (tombstones
//! included — they shadow older segments until compaction). Segments are
//! written to a temporary name, fsynced, and renamed into place, so a
//! segment either exists completely or not at all; readers therefore
//! treat any corruption inside a segment as a hard error, unlike the
//! WAL's tolerated torn tail.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::StoreError;
use crate::record::{decode_frame, encode_frame, FrameFault, Op};

const MAGIC: &[u8] = b"schedstore-segment v1\n";

/// Manifest-level description of one live segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Monotonic segment id; higher ids hold fresher data.
    pub id: u64,
    /// Records in the file (tombstones included).
    pub records: u64,
    /// File size in bytes.
    pub bytes: u64,
}

/// A decoded segment: `(key, value)` pairs in key order, `None` values
/// marking tombstones.
pub type SegmentEntries = Vec<(String, Option<Vec<u8>>)>;

/// `seg-000042.seg` inside `dir`.
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:06}.seg"))
}

/// Write a segment from already-sorted `entries` (`(key, None)` =
/// tombstone). Durable on return: tmp file + fsync + rename + dir fsync.
pub fn write_segment<'a>(
    dir: &Path,
    id: u64,
    entries: impl Iterator<Item = (&'a str, Option<&'a [u8]>)>,
) -> Result<SegmentMeta, StoreError> {
    let final_path = segment_path(dir, id);
    let tmp_path = final_path.with_extension("seg.tmp");
    let mut buf = Vec::with_capacity(4096);
    buf.extend_from_slice(MAGIC);
    let mut records = 0u64;
    let mut last_key: Option<String> = None;
    for (key, value) in entries {
        if let Some(prev) = &last_key {
            debug_assert!(
                prev.as_str() < key,
                "segment entries must be sorted: {prev} >= {key}"
            );
        }
        last_key = Some(key.to_string());
        let op = match value {
            Some(v) => Op::Put {
                key: key.to_string(),
                value: v.to_vec(),
            },
            None => Op::Delete {
                key: key.to_string(),
            },
        };
        encode_frame(&op, &mut buf);
        records += 1;
    }
    let bytes = buf.len() as u64;
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp_path)
        .map_err(|e| StoreError::io("create segment", &tmp_path, e))?;
    file.write_all(&buf)
        .map_err(|e| StoreError::io("write segment", &tmp_path, e))?;
    file.sync_all()
        .map_err(|e| StoreError::io("fsync segment", &tmp_path, e))?;
    drop(file);
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|e| StoreError::io("rename segment", &final_path, e))?;
    sync_dir(dir)?;
    Ok(SegmentMeta { id, records, bytes })
}

/// Read a segment fully, strictly: any framing or checksum fault is an
/// error carrying the offending offset.
pub fn read_segment(dir: &Path, id: u64) -> Result<SegmentEntries, StoreError> {
    let path = segment_path(dir, id);
    let buf = std::fs::read(&path).map_err(|e| StoreError::io("read segment", &path, e))?;
    if !buf.starts_with(MAGIC) {
        return Err(StoreError::CorruptRecord {
            path,
            offset: 0,
            detail: "missing segment magic".to_string(),
        });
    }
    let mut offset = MAGIC.len();
    let mut entries = Vec::new();
    while offset < buf.len() {
        match decode_frame(&buf, offset) {
            Ok((Op::Put { key, value }, next)) => {
                entries.push((key, Some(value)));
                offset = next;
            }
            Ok((Op::Delete { key }, next)) => {
                entries.push((key, None));
                offset = next;
            }
            Err(FrameFault::Checksum { expected, actual }) => {
                return Err(StoreError::ChecksumMismatch {
                    path,
                    offset: offset as u64,
                    expected,
                    actual,
                })
            }
            Err(fault) => {
                return Err(StoreError::CorruptRecord {
                    path,
                    offset: offset as u64,
                    detail: fault.to_string(),
                })
            }
        }
    }
    Ok(entries)
}

/// Delete a retired segment file; missing files are fine (a crash
/// between manifest write and unlink leaves orphans that a later
/// compaction retires again).
pub fn remove_segment(dir: &Path, id: u64) -> Result<(), StoreError> {
    let path = segment_path(dir, id);
    match std::fs::remove_file(&path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(StoreError::io("remove segment", &path, e)),
    }
}

/// Fsync a directory so renames within it are durable.
pub fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    let handle = File::open(dir).map_err(|e| StoreError::io("open dir", dir, e))?;
    handle
        .sync_all()
        .map_err(|e| StoreError::io("fsync dir", dir, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("schedstore-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_read_roundtrips_with_tombstones() {
        let dir = tmp_dir("roundtrip");
        let entries: Vec<(&str, Option<&[u8]>)> = vec![
            ("alpha", Some(b"1".as_slice())),
            ("beta", None),
            ("gamma", Some(b"33".as_slice())),
        ];
        let meta = write_segment(&dir, 7, entries.iter().map(|(k, v)| (*k, *v))).unwrap();
        assert_eq!(meta.id, 7);
        assert_eq!(meta.records, 3);
        let back = read_segment(&dir, 7).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], ("alpha".to_string(), Some(b"1".to_vec())));
        assert_eq!(back[1], ("beta".to_string(), None));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_a_hard_error_with_offset() {
        let dir = tmp_dir("corrupt");
        write_segment(&dir, 1, [("k", Some(b"value".as_slice()))].into_iter()).unwrap();
        let path = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        match read_segment(&dir, 1) {
            Err(StoreError::ChecksumMismatch { offset, .. }) => {
                assert_eq!(offset, MAGIC.len() as u64)
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_magic_is_corrupt() {
        let dir = tmp_dir("magic");
        std::fs::write(segment_path(&dir, 2), b"not a segment").unwrap();
        assert!(matches!(
            read_segment(&dir, 2),
            Err(StoreError::CorruptRecord { offset: 0, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_is_idempotent() {
        let dir = tmp_dir("remove");
        write_segment(&dir, 3, std::iter::empty()).unwrap();
        remove_segment(&dir, 3).unwrap();
        remove_segment(&dir, 3).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
