//! Trajectory segments: the per-epoch batch blob the distributed trainer
//! journals through the run store so a killed coordinator can account for
//! exactly which epochs completed.
//!
//! The store treats the payload as opaque bytes (the `dist` crate owns
//! the batch encoding); this module owns the key scheme and a small
//! self-describing envelope — epoch number + CRC — so a segment read back
//! after a crash is either intact or rejected, never silently truncated.

use crate::crc::crc32;

/// Magic prefix of every trajectory segment envelope.
const MAGIC: &[u8; 4] = b"TSG1";

/// Store key for epoch `epoch`'s trajectory segment: `traj/epoch-NNNNNN`.
///
/// Fixed-width decimal keeps lexicographic key order equal to epoch
/// order, so `keys()` range scans walk epochs chronologically.
pub fn epoch_key(epoch: usize) -> String {
    format!("traj/epoch-{epoch:06}")
}

/// Wrap an opaque batch payload in the segment envelope:
/// `"TSG1" | epoch u64 LE | payload len u64 LE | payload | crc32 u32 LE`.
pub fn encode_segment(epoch: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 8 + 8 + payload.len() + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Unwrap a segment envelope, returning `(epoch, payload)`.
///
/// Rejects bad magic, length mismatches, and CRC failures with a
/// descriptive error — a torn or bit-flipped segment never decodes.
pub fn decode_segment(bytes: &[u8]) -> Result<(u64, Vec<u8>), String> {
    if bytes.len() < 4 + 8 + 8 + 4 {
        return Err(format!("segment too short: {} bytes", bytes.len()));
    }
    if &bytes[..4] != MAGIC {
        return Err("bad segment magic".into());
    }
    let epoch = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let body_end = bytes.len() - 4;
    let payload = &bytes[20..body_end];
    if len != payload.len() as u64 {
        return Err(format!(
            "segment length mismatch: header says {len}, have {}",
            payload.len()
        ));
    }
    let want = u32::from_le_bytes(bytes[body_end..].try_into().unwrap());
    let got = crc32(&bytes[..body_end]);
    if want != got {
        return Err(format!("segment crc mismatch: {got:08x} != {want:08x}"));
    }
    Ok((epoch, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_sort_in_epoch_order() {
        let keys: Vec<String> = [0, 1, 9, 10, 99, 100, 123_456].map(epoch_key).into();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys[0], "traj/epoch-000000");
    }

    #[test]
    fn roundtrip_and_corruption() {
        let payload = b"opaque batch bytes \x00\xff".to_vec();
        let seg = encode_segment(42, &payload);
        assert_eq!(decode_segment(&seg).unwrap(), (42, payload.clone()));

        // Every single-byte flip is caught.
        for i in 0..seg.len() {
            let mut bad = seg.clone();
            bad[i] ^= 0x40;
            assert!(decode_segment(&bad).is_err(), "flip at byte {i} accepted");
        }
        // Every truncation is caught.
        for cut in 0..seg.len() {
            assert!(
                decode_segment(&seg[..cut]).is_err(),
                "truncation to {cut} accepted"
            );
        }
        // Trailing junk is caught (crc covers the claimed extent only if
        // lengths agree — extra bytes shift the trailer).
        let mut long = seg.clone();
        long.push(0);
        assert!(decode_segment(&long).is_err());
    }

    #[test]
    fn empty_payload_is_legal() {
        let seg = encode_segment(0, b"");
        assert_eq!(decode_segment(&seg).unwrap(), (0, Vec::new()));
    }
}
