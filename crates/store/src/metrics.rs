//! Store metrics handles, registerable on an [`obs::Registry`] so they
//! surface on the Prometheus `/metrics` endpoint.

use obs::registry::{Counter, Gauge, Registry};

/// Lock-free handles for the store's operational counters. Cheap to
/// clone; clones share the underlying cells.
#[derive(Clone, Debug)]
pub struct StoreMetrics {
    /// `store.wal.fsyncs` — group commits flushed to stable storage.
    pub wal_fsyncs: Counter,
    /// `store.wal.records` — records appended to the WAL.
    pub wal_records: Counter,
    /// `store.segments.live` — segments currently listed in the manifest.
    pub segments_live: Gauge,
    /// `store.flushes` — memtable-to-segment flushes.
    pub flushes: Counter,
    /// `store.compactions` — completed compactions.
    pub compactions: Counter,
    /// `store.models.published` — model checkpoints published.
    pub models_published: Counter,
}

impl StoreMetrics {
    /// Handles not registered anywhere (still fully usable).
    pub fn detached() -> Self {
        StoreMetrics {
            wal_fsyncs: Counter::detached(),
            wal_records: Counter::detached(),
            segments_live: Gauge::detached(),
            flushes: Counter::detached(),
            compactions: Counter::detached(),
            models_published: Counter::detached(),
        }
    }

    /// Handles registered on `registry` under the `store.*` names.
    pub fn registered(registry: &Registry) -> Self {
        StoreMetrics {
            wal_fsyncs: registry.counter(
                "store.wal.fsyncs",
                "WAL group commits flushed to stable storage",
            ),
            wal_records: registry.counter("store.wal.records", "records appended to the WAL"),
            segments_live: registry.gauge(
                "store.segments.live",
                "segment files currently listed in the manifest",
            ),
            flushes: registry.counter("store.flushes", "memtable-to-segment flushes"),
            compactions: registry.counter("store.compactions", "completed segment compactions"),
            models_published: registry.counter(
                "store.models.published",
                "model checkpoint generations published to the registry",
            ),
        }
    }
}

impl Default for StoreMetrics {
    fn default() -> Self {
        Self::detached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_handles_share_registry_state() {
        let registry = Registry::new();
        let a = StoreMetrics::registered(&registry);
        let b = StoreMetrics::registered(&registry);
        a.wal_fsyncs.inc();
        b.wal_fsyncs.add(2);
        assert_eq!(registry.counter("store.wal.fsyncs", "").get(), 3);
        a.segments_live.set(4.0);
        assert_eq!(registry.gauge("store.segments.live", "").get(), 4.0);
    }
}
