//! [`RunStore`] — the embedded LSM-flavored store tying WAL, memtable,
//! segments, and manifest together, plus the versioned model registry
//! that `serve` watches.
//!
//! Write path: [`put`](RunStore::put)/[`delete`](RunStore::delete)
//! journal to the WAL buffer and apply to the memtable;
//! [`commit`](RunStore::commit) group-commits the WAL (one fsync) and,
//! when the memtable has outgrown `flush_bytes`, flushes it to a fresh
//! immutable segment and truncates the WAL. Crash ordering: segment
//! first, manifest second, WAL truncation last — replaying a WAL whose
//! contents already landed in a segment is idempotent.
//!
//! Read path: memtable, then segments newest-to-oldest. Tombstones
//! shadow older entries until [`compact`](RunStore::compact) merges all
//! live segments into one and drops them.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use obs::registry::Registry;

use crate::error::StoreError;
use crate::manifest::{Manifest, ModelEntry};
use crate::memtable::MemTable;
use crate::metrics::StoreMetrics;
use crate::record::Op;
use crate::segment::{read_segment, remove_segment, segment_path, sync_dir, write_segment};
use crate::wal::{Replay, Wal};

/// Tunables for a [`RunStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Flush the memtable to a segment once it holds roughly this many
    /// bytes (checked at commit).
    pub flush_bytes: usize,
    /// Compact automatically when a flush leaves at least this many live
    /// segments (0 disables auto-compaction).
    pub compact_at_segments: usize,
    /// Model generations to keep on disk at compaction (older files and
    /// manifest entries are retired).
    pub keep_models: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            flush_bytes: 256 * 1024,
            compact_at_segments: 4,
            keep_models: 2,
        }
    }
}

/// A point-in-time description of the store, for `store inspect`.
#[derive(Debug, Clone)]
pub struct StoreStatus {
    /// Manifest version on disk.
    pub manifest_version: u64,
    /// Live segments (id, records, bytes).
    pub segments: Vec<(u64, u64, u64)>,
    /// WAL bytes currently durable.
    pub wal_durable_len: u64,
    /// Keys visible through the full read path.
    pub live_keys: u64,
    /// Entries resident in the memtable (tombstones included).
    pub memtable_entries: u64,
    /// Published model generations.
    pub model_generations: Vec<u64>,
}

/// The durable run store. Single-writer: open one handle per directory.
#[derive(Debug)]
pub struct RunStore {
    dir: PathBuf,
    wal: Wal,
    mem: MemTable,
    manifest: Manifest,
    cfg: StoreConfig,
    metrics: StoreMetrics,
}

impl RunStore {
    /// Open (creating if needed) the store in `dir` with defaults and
    /// detached metrics.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_with(dir, StoreConfig::default(), None)
    }

    /// Open with explicit config; metrics register on `registry` when
    /// given (under `store.*` names).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        cfg: StoreConfig,
        registry: Option<&Registry>,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io("create store dir", &dir, e))?;
        std::fs::create_dir_all(dir.join("models"))
            .map_err(|e| StoreError::io("create models dir", &dir, e))?;
        let metrics = match registry {
            Some(r) => StoreMetrics::registered(r),
            None => StoreMetrics::detached(),
        };
        let manifest = Manifest::load(&dir)?.unwrap_or_else(Manifest::empty);
        let (wal, replayed) = Wal::open(dir.join("wal"), metrics.clone())?;
        let mut mem = MemTable::new();
        for op in replayed.ops {
            mem.apply(op);
        }
        metrics.segments_live.set(manifest.segments.len() as f64);
        Ok(RunStore {
            dir,
            wal,
            mem,
            manifest,
            cfg,
            metrics,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The WAL file path (fault-injection hooks live on this).
    pub fn wal_path(&self) -> &Path {
        self.wal.path()
    }

    /// WAL bytes guaranteed durable (covered by the last fsync).
    pub fn wal_synced_len(&self) -> u64 {
        self.wal.synced_len()
    }

    /// The metrics handles this store updates.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// Stage a write. Not durable until [`commit`](RunStore::commit).
    pub fn put(&mut self, key: impl Into<String>, value: impl Into<Vec<u8>>) {
        let op = Op::Put {
            key: key.into(),
            value: value.into(),
        };
        self.wal.append(&op);
        self.mem.apply(op);
    }

    /// Stage a deletion. Not durable until [`commit`](RunStore::commit).
    pub fn delete(&mut self, key: impl Into<String>) {
        let op = Op::Delete { key: key.into() };
        self.wal.append(&op);
        self.mem.apply(op);
    }

    /// Group-commit every staged operation (one fsync), then flush the
    /// memtable to a segment if it outgrew `flush_bytes`.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        self.wal.commit()?;
        if self.mem.approx_bytes() >= self.cfg.flush_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// The freshest value of `key` through memtable then segments
    /// newest-to-oldest. Uncommitted staged writes are visible (they are
    /// in the memtable).
    pub fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        if let Some(state) = self.mem.get(key) {
            return Ok(state.map(|v| v.to_vec()));
        }
        for seg in self.manifest.segments.iter().rev() {
            // Segment files are small (memtable-sized); a linear scan per
            // lookup is fine for the checkpoint/registry workload.
            for (k, v) in read_segment(&self.dir, seg.id)? {
                if k == key {
                    return Ok(v);
                }
            }
        }
        Ok(None)
    }

    /// Every live key, sorted (tombstoned keys excluded).
    pub fn keys(&self) -> Result<Vec<String>, StoreError> {
        Ok(self
            .merged_view()?
            .into_iter()
            .filter_map(|(k, v)| v.map(|_| k))
            .collect())
    }

    /// Freshest state of every key ever written (tombstones as `None`).
    fn merged_view(&self) -> Result<BTreeMap<String, Option<Vec<u8>>>, StoreError> {
        let mut view = BTreeMap::new();
        for seg in &self.manifest.segments {
            for (k, v) in read_segment(&self.dir, seg.id)? {
                view.insert(k, v);
            }
        }
        for (k, v) in self.mem.iter() {
            view.insert(k.to_string(), v.map(|b| b.to_vec()));
        }
        Ok(view)
    }

    /// Force the memtable into a fresh immutable segment, publish it in
    /// the manifest, and truncate the WAL. No-op on an empty memtable
    /// (after committing any staged records).
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.wal.commit()?;
        if self.mem.is_empty() {
            return Ok(());
        }
        let id = self.manifest.next_segment;
        let meta = write_segment(&self.dir, id, self.mem.iter())?;
        self.manifest.next_segment = id + 1;
        self.manifest.segments.push(meta);
        self.manifest.version += 1;
        self.manifest.store(&self.dir)?;
        // Only after the manifest says the segment is live may the WAL
        // forget those records.
        self.wal.reset()?;
        self.mem.clear();
        self.metrics.flushes.inc();
        self.metrics
            .segments_live
            .set(self.manifest.segments.len() as f64);
        if self.cfg.compact_at_segments > 0
            && self.manifest.segments.len() >= self.cfg.compact_at_segments
        {
            self.compact()?;
        }
        Ok(())
    }

    /// Merge all live segments into one, dropping tombstones and
    /// superseded values, and retire old model generations beyond
    /// `keep_models`. Returns the number of segments retired.
    pub fn compact(&mut self) -> Result<usize, StoreError> {
        // Flush staged/memtable state first so the compacted segment is
        // complete.
        self.wal.commit()?;
        if !self.mem.is_empty() {
            let id = self.manifest.next_segment;
            let meta = write_segment(&self.dir, id, self.mem.iter())?;
            self.manifest.next_segment = id + 1;
            self.manifest.segments.push(meta);
            self.mem.clear();
            self.wal.reset()?;
            self.metrics.flushes.inc();
        }
        let old: Vec<u64> = self.manifest.segments.iter().map(|s| s.id).collect();
        if old.is_empty() {
            return Ok(0);
        }
        let mut view = BTreeMap::new();
        for seg in &self.manifest.segments {
            for (k, v) in read_segment(&self.dir, seg.id)? {
                view.insert(k, v);
            }
        }
        // Live values only; compaction is where tombstones die.
        let live: Vec<(String, Vec<u8>)> = view
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect();
        let id = self.manifest.next_segment;
        let meta = write_segment(
            &self.dir,
            id,
            live.iter().map(|(k, v)| (k.as_str(), Some(v.as_slice()))),
        )?;
        self.manifest.next_segment = id + 1;
        self.manifest.segments = vec![meta];

        // Retire superseded model generations (keep the newest K).
        let keep = self.cfg.keep_models.max(1);
        let retired_models: Vec<ModelEntry> = if self.manifest.models.len() > keep {
            self.manifest
                .models
                .drain(..self.manifest.models.len() - keep)
                .collect()
        } else {
            Vec::new()
        };

        self.manifest.version += 1;
        self.manifest.store(&self.dir)?;
        // Manifest no longer references the old files; unlink them.
        for seg_id in &old {
            remove_segment(&self.dir, *seg_id)?;
        }
        for entry in &retired_models {
            // Orphans from a failed unlink are retried next compaction.
            let _ = std::fs::remove_file(self.dir.join(&entry.path));
        }
        self.metrics.compactions.inc();
        self.metrics
            .segments_live
            .set(self.manifest.segments.len() as f64);
        Ok(old.len())
    }

    /// Publish `text` as the next model generation: the checkpoint file
    /// lands durably under `models/`, then the manifest records it.
    /// Returns the new generation number.
    pub fn publish_model(&mut self, text: &str) -> Result<u64, StoreError> {
        let generation = self
            .manifest
            .latest_model()
            .map(|m| m.generation + 1)
            .unwrap_or(1);
        let rel = format!("models/gen-{generation:06}.model");
        let final_path = self.dir.join(&rel);
        let tmp_path = self.dir.join(format!("models/gen-{generation:06}.tmp"));
        std::fs::write(&tmp_path, text).map_err(|e| StoreError::io("write model", &tmp_path, e))?;
        let file = std::fs::File::open(&tmp_path)
            .map_err(|e| StoreError::io("open model", &tmp_path, e))?;
        file.sync_all()
            .map_err(|e| StoreError::io("fsync model", &tmp_path, e))?;
        drop(file);
        std::fs::rename(&tmp_path, &final_path)
            .map_err(|e| StoreError::io("rename model", &final_path, e))?;
        sync_dir(&self.dir.join("models"))?;
        self.manifest.models.push(ModelEntry {
            generation,
            path: rel,
        });
        self.manifest.version += 1;
        self.manifest.store(&self.dir)?;
        self.metrics.models_published.inc();
        Ok(generation)
    }

    /// Read the checkpoint text of `generation`.
    pub fn model(&self, generation: u64) -> Result<String, StoreError> {
        let entry = self
            .manifest
            .models
            .iter()
            .find(|m| m.generation == generation)
            .ok_or(StoreError::UnknownGeneration(generation))?;
        let path = self.dir.join(&entry.path);
        std::fs::read_to_string(&path).map_err(|e| StoreError::io("read model", &path, e))
    }

    /// The newest `(generation, text)`, if any model was ever published.
    pub fn latest_model(&self) -> Result<Option<(u64, String)>, StoreError> {
        match self.manifest.latest_model() {
            Some(entry) => Ok(Some((entry.generation, self.model(entry.generation)?))),
            None => Ok(None),
        }
    }

    /// Point-in-time description for `store inspect`.
    pub fn status(&self) -> Result<StoreStatus, StoreError> {
        Ok(StoreStatus {
            manifest_version: self.manifest.version,
            segments: self
                .manifest
                .segments
                .iter()
                .map(|s| (s.id, s.records, s.bytes))
                .collect(),
            wal_durable_len: self.wal.synced_len(),
            live_keys: self.keys()?.len() as u64,
            memtable_entries: self.mem.len() as u64,
            model_generations: self.manifest.models.iter().map(|m| m.generation).collect(),
        })
    }

    /// Verify every on-disk structure strictly: manifest CRC, every
    /// listed segment, and the WAL (a torn WAL tail is an error here,
    /// unlike recovery). Returns the number of records checked.
    pub fn verify(&self) -> Result<u64, StoreError> {
        let mut records = 0u64;
        for seg in &self.manifest.segments {
            records += read_segment(&self.dir, seg.id)?.len() as u64;
            let meta_bytes = std::fs::metadata(segment_path(&self.dir, seg.id))
                .map_err(|e| StoreError::io("stat segment", segment_path(&self.dir, seg.id), e))?
                .len();
            if meta_bytes != seg.bytes {
                return Err(StoreError::CorruptManifest {
                    path: crate::manifest::manifest_path(&self.dir),
                    line: 0,
                    msg: format!(
                        "segment {} is {meta_bytes} bytes on disk but manifest says {}",
                        seg.id, seg.bytes
                    ),
                });
            }
        }
        let replayed: Replay = crate::wal::replay(self.wal.path())?;
        if let Some(err) = replayed.tail_error(self.wal.path()) {
            return Err(err);
        }
        records += replayed.ops.len() as u64;
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("schedstore-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_commit_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let mut store = RunStore::open(&dir).unwrap();
            store.put("checkpoint/latest", b"state-1".as_slice());
            store.put("epoch/00000000", b"{}".as_slice());
            store.commit().unwrap();
        }
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.get("checkpoint/latest").unwrap().unwrap(), b"state-1");
        assert_eq!(store.keys().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_writes_do_not_survive() {
        let dir = tmp_dir("uncommitted");
        {
            let mut store = RunStore::open(&dir).unwrap();
            store.put("durable", b"yes".as_slice());
            store.commit().unwrap();
            store.put("volatile", b"no".as_slice());
            // dropped without commit
        }
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.get("durable").unwrap().unwrap(), b"yes");
        assert_eq!(store.get("volatile").unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_moves_data_to_segments_and_empties_wal() {
        let dir = tmp_dir("flush");
        let mut store = RunStore::open(&dir).unwrap();
        store.put("a", b"1".as_slice());
        store.put("b", b"2".as_slice());
        store.flush().unwrap();
        let status = store.status().unwrap();
        assert_eq!(status.segments.len(), 1);
        assert_eq!(status.wal_durable_len, 0);
        assert_eq!(store.get("a").unwrap().unwrap(), b"1");
        // Newer write shadows the segment.
        store.put("a", b"1b".as_slice());
        store.commit().unwrap();
        assert_eq!(store.get("a").unwrap().unwrap(), b"1b");
        // And survives reopen with both layers present.
        drop(store);
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.get("a").unwrap().unwrap(), b"1b");
        assert_eq!(store.get("b").unwrap().unwrap(), b"2");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deletes_shadow_across_flush_and_die_in_compaction() {
        let dir = tmp_dir("tombstone");
        let mut store = RunStore::open(&dir).unwrap();
        store.put("gone", b"x".as_slice());
        store.flush().unwrap();
        store.delete("gone");
        store.put("kept", b"y".as_slice());
        store.flush().unwrap();
        assert_eq!(store.get("gone").unwrap(), None);
        let retired = store.compact().unwrap();
        assert_eq!(retired, 2);
        assert_eq!(store.get("gone").unwrap(), None);
        assert_eq!(store.get("kept").unwrap().unwrap(), b"y");
        let status = store.status().unwrap();
        assert_eq!(status.segments.len(), 1);
        assert_eq!(status.live_keys, 1);
        store.verify().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_flush_and_auto_compact_trigger_on_thresholds() {
        let dir = tmp_dir("auto");
        let cfg = StoreConfig {
            flush_bytes: 64,
            compact_at_segments: 3,
            keep_models: 2,
        };
        let registry = Registry::new();
        let mut store = RunStore::open_with(&dir, cfg, Some(&registry)).unwrap();
        for i in 0..30 {
            store.put(format!("key/{i:04}"), vec![7u8; 32]);
            store.commit().unwrap();
        }
        let status = store.status().unwrap();
        assert!(
            status.segments.len() < 3,
            "auto-compaction keeps segment count bounded: {status:?}"
        );
        assert_eq!(status.live_keys, 30);
        assert!(registry.counter("store.wal.fsyncs", "").get() >= 30);
        assert!(registry.counter("store.compactions", "").get() >= 1);
        assert_eq!(
            registry.gauge("store.segments.live", "").get(),
            status.segments.len() as f64
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn model_registry_publishes_monotonic_generations() {
        let dir = tmp_dir("models");
        let mut store = RunStore::open(&dir).unwrap();
        assert!(store.latest_model().unwrap().is_none());
        assert_eq!(store.publish_model("model-a").unwrap(), 1);
        assert_eq!(store.publish_model("model-b").unwrap(), 2);
        assert_eq!(store.publish_model("model-c").unwrap(), 3);
        let (generation, text) = store.latest_model().unwrap().unwrap();
        assert_eq!((generation, text.as_str()), (3, "model-c"));
        assert_eq!(store.model(2).unwrap(), "model-b");
        assert!(matches!(
            store.model(99),
            Err(StoreError::UnknownGeneration(99))
        ));
        // Compaction keeps only the newest keep_models generations.
        store.put("k", b"v".as_slice());
        store.compact().unwrap();
        assert!(matches!(
            store.model(1),
            Err(StoreError::UnknownGeneration(1))
        ));
        assert_eq!(store.model(3).unwrap(), "model-c");
        // Reopen sees the same registry.
        drop(store);
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.latest_model().unwrap().unwrap().0, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_catches_manifest_segment_size_lies() {
        let dir = tmp_dir("verify");
        let mut store = RunStore::open(&dir).unwrap();
        store.put("a", b"1".as_slice());
        store.flush().unwrap();
        store.verify().unwrap();
        // Append garbage to the segment file behind the manifest's back.
        let seg = segment_path(store.dir(), 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.push(0xFF);
        std::fs::write(&seg, &bytes).unwrap();
        assert!(store.verify().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
