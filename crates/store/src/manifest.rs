//! The versioned `MANIFEST`: the single source of truth for which
//! segments are live and which model generations exist.
//!
//! Plain text, CRC-trailed, and replaced atomically (tmp + fsync +
//! rename + dir fsync) so readers always see a complete manifest:
//!
//! ```text
//! schedstore-manifest v1
//! version 12
//! next_segment 4
//! segment 1 142 8310
//! segment 3 10 512
//! model 2 models/gen-000002.model
//! crc 89abcdef
//! ```
//!
//! `version` increases by exactly one per rewrite; a reader that ever
//! observes it decrease reports [`StoreError::ManifestVersionSkew`].

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::error::StoreError;
use crate::segment::{sync_dir, SegmentMeta};

const HEADER: &str = "schedstore-manifest v1";

/// `MANIFEST` inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

/// One published model generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelEntry {
    /// Monotonic generation counter (1 = first publish).
    pub generation: u64,
    /// Path of the checkpoint file, relative to the store directory.
    pub path: String,
}

/// The parsed manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Rewrite counter; +1 per store.
    pub version: u64,
    /// Next unused segment id.
    pub next_segment: u64,
    /// Live segments, oldest first (ids ascend).
    pub segments: Vec<SegmentMeta>,
    /// Published model generations, oldest first.
    pub models: Vec<ModelEntry>,
}

impl Manifest {
    /// A fresh manifest for an empty store.
    pub fn empty() -> Self {
        Manifest {
            version: 0,
            next_segment: 1,
            segments: Vec::new(),
            models: Vec::new(),
        }
    }

    /// The newest model entry, if any.
    pub fn latest_model(&self) -> Option<&ModelEntry> {
        self.models.last()
    }

    /// Serialize (without writing).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("version {}\n", self.version));
        out.push_str(&format!("next_segment {}\n", self.next_segment));
        for seg in &self.segments {
            out.push_str(&format!(
                "segment {} {} {}\n",
                seg.id, seg.records, seg.bytes
            ));
        }
        for model in &self.models {
            out.push_str(&format!("model {} {}\n", model.generation, model.path));
        }
        let crc = crc32(out.as_bytes());
        out.push_str(&format!("crc {crc:08x}\n"));
        out
    }

    /// Parse manifest text (as found at `path`, for error reporting).
    pub fn from_text(text: &str, path: &Path) -> Result<Manifest, StoreError> {
        let corrupt = |line: usize, msg: String| StoreError::CorruptManifest {
            path: path.to_path_buf(),
            line,
            msg,
        };
        // Split off and verify the crc trailer first.
        let trailer_start = text
            .trim_end_matches('\n')
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        let trailer = text[trailer_start..].trim_end();
        let stored = trailer
            .strip_prefix("crc ")
            .ok_or_else(|| corrupt(0, "missing crc trailer".to_string()))?;
        let stored = u32::from_str_radix(stored, 16)
            .map_err(|e| corrupt(0, format!("bad crc trailer: {e}")))?;
        let body = &text[..trailer_start];
        let actual = crc32(body.as_bytes());
        if actual != stored {
            return Err(corrupt(
                0,
                format!("crc mismatch: stored {stored:08x}, computed {actual:08x}"),
            ));
        }

        let mut lines = body.lines().enumerate();
        let (_, first) = lines
            .next()
            .ok_or_else(|| corrupt(1, "empty manifest".to_string()))?;
        if first != HEADER {
            return Err(corrupt(1, format!("bad header {first:?}")));
        }
        let mut manifest = Manifest::empty();
        let mut saw_version = false;
        for (idx, line) in lines {
            let lineno = idx + 1;
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("version") => {
                    manifest.version = parse_u64(parts.next(), lineno, "version", path)?;
                    saw_version = true;
                }
                Some("next_segment") => {
                    manifest.next_segment = parse_u64(parts.next(), lineno, "next_segment", path)?;
                }
                Some("segment") => {
                    let id = parse_u64(parts.next(), lineno, "segment id", path)?;
                    let records = parse_u64(parts.next(), lineno, "segment records", path)?;
                    let bytes = parse_u64(parts.next(), lineno, "segment bytes", path)?;
                    manifest.segments.push(SegmentMeta { id, records, bytes });
                }
                Some("model") => {
                    let generation = parse_u64(parts.next(), lineno, "model generation", path)?;
                    let rel = parts
                        .next()
                        .ok_or_else(|| corrupt(lineno, "model entry missing path".to_string()))?;
                    manifest.models.push(ModelEntry {
                        generation,
                        path: rel.to_string(),
                    });
                }
                Some(other) => return Err(corrupt(lineno, format!("unknown directive {other:?}"))),
                None => {}
            }
        }
        if !saw_version {
            return Err(corrupt(0, "missing version".to_string()));
        }
        Ok(manifest)
    }

    /// Load the manifest in `dir`; `Ok(None)` when the store has never
    /// been committed (no `MANIFEST`).
    pub fn load(dir: &Path) -> Result<Option<Manifest>, StoreError> {
        let path = manifest_path(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io("read manifest", &path, e)),
        };
        Self::from_text(&text, &path).map(Some)
    }

    /// Durably replace the manifest in `dir` with this one: write tmp,
    /// fsync, rename over `MANIFEST`, fsync the directory.
    pub fn store(&self, dir: &Path) -> Result<(), StoreError> {
        let final_path = manifest_path(dir);
        let tmp_path = dir.join("MANIFEST.tmp");
        let text = self.to_text();
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(|e| StoreError::io("create manifest", &tmp_path, e))?;
        file.write_all(text.as_bytes())
            .map_err(|e| StoreError::io("write manifest", &tmp_path, e))?;
        file.sync_all()
            .map_err(|e| StoreError::io("fsync manifest", &tmp_path, e))?;
        drop(file);
        std::fs::rename(&tmp_path, &final_path)
            .map_err(|e| StoreError::io("rename manifest", &final_path, e))?;
        sync_dir(dir)
    }
}

fn parse_u64(field: Option<&str>, line: usize, what: &str, path: &Path) -> Result<u64, StoreError> {
    field
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| StoreError::CorruptManifest {
            path: path.to_path_buf(),
            line,
            msg: format!("bad or missing {what}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("schedstore-man-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Manifest {
        Manifest {
            version: 12,
            next_segment: 4,
            segments: vec![
                SegmentMeta {
                    id: 1,
                    records: 142,
                    bytes: 8310,
                },
                SegmentMeta {
                    id: 3,
                    records: 10,
                    bytes: 512,
                },
            ],
            models: vec![ModelEntry {
                generation: 2,
                path: "models/gen-000002.model".to_string(),
            }],
        }
    }

    #[test]
    fn text_roundtrips() {
        let m = sample();
        let back = Manifest::from_text(&m.to_text(), Path::new("MANIFEST")).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.latest_model().unwrap().generation, 2);
    }

    #[test]
    fn load_store_roundtrips_and_missing_is_none() {
        let dir = tmp_dir("roundtrip");
        assert!(Manifest::load(&dir).unwrap().is_none());
        let m = sample();
        m.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap().unwrap(), m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_byte_fails_the_crc() {
        let m = sample();
        let mut text = m.to_text();
        // Corrupt a digit inside the body.
        text = text.replacen("142", "143", 1);
        let err = Manifest::from_text(&text, Path::new("MANIFEST")).unwrap_err();
        assert!(matches!(err, StoreError::CorruptManifest { .. }), "{err}");
    }

    #[test]
    fn truncated_manifest_is_corrupt() {
        let text = sample().to_text();
        let cut = &text[..text.len() / 2];
        assert!(Manifest::from_text(cut, Path::new("MANIFEST")).is_err());
        assert!(Manifest::from_text("", Path::new("MANIFEST")).is_err());
    }
}
