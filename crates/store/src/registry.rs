//! The read side of the model registry: a poll-based watcher `serve`
//! runs to notice new checkpoint generations.
//!
//! The watcher never holds the store open — each poll reads `MANIFEST`
//! (atomically replaced by the writer, so always complete) and, when the
//! latest generation advanced, the checkpoint file it names. A publish
//! racing the poll can at worst make the file read fail (compaction
//! retired it); the watcher reports `Ok(None)` for that poll and catches
//! up on the next one.

use std::path::{Path, PathBuf};

use crate::error::StoreError;
use crate::manifest::Manifest;

/// Watches a store directory for new model generations.
#[derive(Debug)]
pub struct ModelWatcher {
    dir: PathBuf,
    last_version: u64,
    last_generation: u64,
}

impl ModelWatcher {
    /// Watch the store at `dir`. The first poll reports the newest
    /// generation already present (if any).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ModelWatcher {
            dir: dir.into(),
            last_version: 0,
            last_generation: 0,
        }
    }

    /// Watch starting *after* `generation` — generations at or below it
    /// are not reported (used when serve already loaded its initial
    /// model from the registry).
    pub fn starting_after(dir: impl Into<PathBuf>, generation: u64) -> Self {
        ModelWatcher {
            dir: dir.into(),
            last_version: 0,
            last_generation: generation,
        }
    }

    /// The store directory being watched.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Newest generation reported so far.
    pub fn last_generation(&self) -> u64 {
        self.last_generation
    }

    /// Check for a newer model. `Ok(Some((generation, text)))` when one
    /// appeared since the last poll; `Ok(None)` otherwise (including
    /// "no manifest yet" and "checkpoint briefly unreadable mid-retire").
    /// A manifest whose version went backwards is
    /// [`StoreError::ManifestVersionSkew`].
    pub fn poll(&mut self) -> Result<Option<(u64, String)>, StoreError> {
        let manifest = match Manifest::load(&self.dir)? {
            Some(m) => m,
            None => return Ok(None),
        };
        if manifest.version < self.last_version {
            return Err(StoreError::ManifestVersionSkew {
                path: crate::manifest::manifest_path(&self.dir),
                seen: self.last_version,
                found: manifest.version,
            });
        }
        self.last_version = manifest.version;
        let entry = match manifest.latest_model() {
            Some(e) if e.generation > self.last_generation => e,
            _ => return Ok(None),
        };
        let path = self.dir.join(&entry.path);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            // Retired underneath us between manifest read and file read;
            // the next poll sees the newer manifest.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io("read model", &path, e)),
        };
        self.last_generation = entry.generation;
        Ok(Some((entry.generation, text)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::RunStore;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("schedstore-watch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn watcher_sees_each_generation_once() {
        let dir = tmp_dir("once");
        let mut store = RunStore::open(&dir).unwrap();
        let mut watcher = ModelWatcher::new(&dir);
        assert_eq!(watcher.poll().unwrap(), None, "nothing published yet");

        store.publish_model("gen-one").unwrap();
        assert_eq!(watcher.poll().unwrap(), Some((1, "gen-one".to_string())));
        assert_eq!(watcher.poll().unwrap(), None, "no repeat");

        store.publish_model("gen-two").unwrap();
        store.publish_model("gen-three").unwrap();
        // Two publishes between polls: only the newest is served.
        assert_eq!(watcher.poll().unwrap(), Some((3, "gen-three".to_string())));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn starting_after_skips_known_generations() {
        let dir = tmp_dir("after");
        let mut store = RunStore::open(&dir).unwrap();
        store.publish_model("initial").unwrap();
        let mut watcher = ModelWatcher::starting_after(&dir, 1);
        assert_eq!(watcher.poll().unwrap(), None);
        store.publish_model("updated").unwrap();
        assert_eq!(watcher.poll().unwrap(), Some((2, "updated".to_string())));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_skew_is_detected() {
        let dir = tmp_dir("skew");
        let mut store = RunStore::open(&dir).unwrap();
        store.publish_model("a").unwrap();
        store.publish_model("b").unwrap();
        let mut watcher = ModelWatcher::new(&dir);
        watcher.poll().unwrap();
        // Roll the manifest back (as a replaced store directory would).
        let mut manifest = Manifest::load(&dir).unwrap().unwrap();
        manifest.version = 0;
        manifest.store(&dir).unwrap();
        assert!(matches!(
            watcher.poll(),
            Err(StoreError::ManifestVersionSkew { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
