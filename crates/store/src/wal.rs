//! The append-only write-ahead log.
//!
//! Mutations are framed with [`crate::record`] encoding, buffered in
//! memory, and made durable by [`Wal::commit`] — one `write` + one
//! `fdatasync` per commit regardless of how many records it covers
//! (group commit). The recovery invariant:
//!
//! > After any crash, replay yields **exactly the prefix of records that
//! > were fully written**, in append order. The first torn, truncated, or
//! > checksum-failing frame ends the replay; everything before it is
//! > intact (frames are self-checking), everything at or after it is
//! > discarded and the file is truncated back to the durable prefix on
//! > the next open.
//!
//! Records past the last `commit` may survive a crash (the kernel may
//! have written them) or not — both outcomes are valid prefixes, which is
//! what the testkit's torn-write fault plans exercise.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::StoreError;
use crate::metrics::StoreMetrics;
use crate::record::{decode_frame, encode_frame, FrameFault, Op, FRAME_HEADER};

/// Why a replay stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailCorruption {
    /// Byte offset of the first unusable frame.
    pub offset: u64,
    /// What was wrong with it.
    pub fault: FrameFault,
}

/// The result of scanning a WAL file.
#[derive(Debug)]
pub struct Replay {
    /// Every fully-durable operation, in append order.
    pub ops: Vec<Op>,
    /// Length in bytes of the durable prefix.
    pub durable_len: u64,
    /// Set when trailing bytes after the durable prefix were unusable
    /// (a torn write); `None` when the file ended exactly on a frame
    /// boundary.
    pub tail: Option<TailCorruption>,
}

impl Replay {
    /// The tail corruption as a typed error, for strict consumers
    /// (`store inspect --strict`); recovery itself treats a torn tail as
    /// normal crash residue.
    pub fn tail_error(&self, path: &Path) -> Option<StoreError> {
        let tail = self.tail.as_ref()?;
        Some(match tail.fault {
            FrameFault::Checksum { expected, actual } => StoreError::ChecksumMismatch {
                path: path.to_path_buf(),
                offset: tail.offset,
                expected,
                actual,
            },
            ref fault => StoreError::CorruptRecord {
                path: path.to_path_buf(),
                offset: tail.offset,
                detail: fault.to_string(),
            },
        })
    }
}

/// Scan the WAL at `path` and return its durable prefix. Missing file =
/// empty replay.
pub fn replay(path: &Path) -> Result<Replay, StoreError> {
    let buf = match std::fs::read(path) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Replay {
                ops: Vec::new(),
                durable_len: 0,
                tail: None,
            })
        }
        Err(e) => return Err(StoreError::io("read wal", path, e)),
    };
    let mut ops = Vec::new();
    let mut offset = 0usize;
    let mut tail = None;
    while offset < buf.len() {
        match decode_frame(&buf, offset) {
            Ok((op, next)) => {
                ops.push(op);
                offset = next;
            }
            Err(fault) => {
                tail = Some(TailCorruption {
                    offset: offset as u64,
                    fault,
                });
                break;
            }
        }
    }
    Ok(Replay {
        ops,
        durable_len: offset as u64,
        tail,
    })
}

/// The writable WAL handle.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Frames appended but not yet written to the file.
    pending: Vec<u8>,
    pending_records: u64,
    /// Bytes written to the file (durable prefix + uncommitted writes —
    /// equal to `synced_len` outside of `commit` itself).
    len: u64,
    /// Bytes covered by the last fsync.
    synced_len: u64,
    metrics: StoreMetrics,
}

impl Wal {
    /// Open (or create) the WAL at `path`, repairing any torn tail:
    /// the file is truncated back to the durable prefix. Returns the
    /// handle and the replayed operations.
    pub fn open(
        path: impl Into<PathBuf>,
        metrics: StoreMetrics,
    ) -> Result<(Wal, Replay), StoreError> {
        let path = path.into();
        let replayed = replay(&path)?;
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| StoreError::io("open wal", &path, e))?;
        let file_len = file
            .metadata()
            .map_err(|e| StoreError::io("stat wal", &path, e))?
            .len();
        if file_len > replayed.durable_len {
            file.set_len(replayed.durable_len)
                .map_err(|e| StoreError::io("truncate torn wal tail", &path, e))?;
            file.sync_data()
                .map_err(|e| StoreError::io("fsync wal after repair", &path, e))?;
        }
        file.seek(SeekFrom::Start(replayed.durable_len))
            .map_err(|e| StoreError::io("seek wal", &path, e))?;
        let wal = Wal {
            path,
            file,
            pending: Vec::new(),
            pending_records: 0,
            len: replayed.durable_len,
            synced_len: replayed.durable_len,
            metrics,
        };
        Ok((wal, replayed))
    }

    /// Buffer one operation. Nothing reaches the file (let alone stable
    /// storage) until [`commit`](Wal::commit).
    pub fn append(&mut self, op: &Op) {
        encode_frame(op, &mut self.pending);
        self.pending_records += 1;
    }

    /// Records buffered since the last commit.
    pub fn pending_records(&self) -> u64 {
        self.pending_records
    }

    /// Group-commit everything buffered: one write, one `fdatasync`.
    /// A no-op (not even an fsync) when nothing is pending.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file
            .write_all(&self.pending)
            .map_err(|e| StoreError::io("write wal", &self.path, e))?;
        self.len += self.pending.len() as u64;
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("fsync wal", &self.path, e))?;
        self.synced_len = self.len;
        self.metrics.wal_records.add(self.pending_records);
        self.metrics.wal_fsyncs.inc();
        self.pending.clear();
        self.pending_records = 0;
        Ok(())
    }

    /// Discard the log after its contents were flushed to a segment:
    /// truncate to zero and fsync. Pending uncommitted records are
    /// dropped (callers flush from the memtable, which already holds
    /// them).
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.pending.clear();
        self.pending_records = 0;
        self.file
            .set_len(0)
            .map_err(|e| StoreError::io("truncate wal", &self.path, e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| StoreError::io("seek wal", &self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("fsync wal", &self.path, e))?;
        self.len = 0;
        self.synced_len = 0;
        Ok(())
    }

    /// Bytes covered by the last fsync — everything at or before this
    /// offset survives `kill -9`.
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Bytes written to the file (≥ [`synced_len`](Wal::synced_len)).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The file backing this log.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read back the raw file contents (test/inspect helper).
    pub fn raw_bytes(&self) -> Result<Vec<u8>, StoreError> {
        let mut file =
            File::open(&self.path).map_err(|e| StoreError::io("read wal", &self.path, e))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| StoreError::io("read wal", &self.path, e))?;
        Ok(buf)
    }
}

/// The minimum bytes a frame occupies (empty key, empty value).
pub const MIN_FRAME: usize = FRAME_HEADER + 5;

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("schedstore-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn put(key: &str, value: &[u8]) -> Op {
        Op::Put {
            key: key.into(),
            value: value.to_vec(),
        }
    }

    #[test]
    fn appends_replay_in_order_after_reopen() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal");
        let ops = vec![
            put("a", b"1"),
            Op::Delete { key: "a".into() },
            put("b", b"2"),
        ];
        {
            let (mut wal, replayed) = Wal::open(&path, StoreMetrics::detached()).unwrap();
            assert!(replayed.ops.is_empty());
            for op in &ops {
                wal.append(op);
            }
            wal.commit().unwrap();
            assert_eq!(wal.synced_len(), wal.len());
        }
        let (_, replayed) = Wal::open(&path, StoreMetrics::detached()).unwrap();
        assert_eq!(replayed.ops, ops);
        assert!(replayed.tail.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_is_group_not_per_record() {
        let dir = tmp_dir("group");
        let metrics = StoreMetrics::detached();
        let (mut wal, _) = Wal::open(dir.join("wal"), metrics.clone()).unwrap();
        for i in 0..100 {
            wal.append(&put(&format!("k{i}"), b"v"));
        }
        wal.commit().unwrap();
        wal.commit().unwrap(); // empty commit: free
        assert_eq!(metrics.wal_fsyncs.get(), 1);
        assert_eq!(metrics.wal_records.get(), 100);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal");
        let durable;
        {
            let (mut wal, _) = Wal::open(&path, StoreMetrics::detached()).unwrap();
            wal.append(&put("good", b"record"));
            wal.commit().unwrap();
            durable = wal.synced_len();
        }
        // Simulate a torn write: garbage appended past the durable prefix.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0xAB; 13]).unwrap();
        drop(file);

        let (wal, replayed) = Wal::open(&path, StoreMetrics::detached()).unwrap();
        assert_eq!(replayed.ops, vec![put("good", b"record")]);
        assert_eq!(replayed.durable_len, durable);
        assert!(replayed.tail.is_some());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), durable);
        assert!(replayed.tail_error(wal.path()).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_bit_inside_record_stops_replay_at_that_record() {
        let dir = tmp_dir("flip");
        let path = dir.join("wal");
        {
            let (mut wal, _) = Wal::open(&path, StoreMetrics::detached()).unwrap();
            wal.append(&put("first", b"ok"));
            wal.append(&put("second", b"will corrupt"));
            wal.commit().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.ops, vec![put("first", b"ok")]);
        assert!(matches!(
            replayed.tail.as_ref().unwrap().fault,
            FrameFault::Checksum { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = tmp_dir("reset");
        let path = dir.join("wal");
        let (mut wal, _) = Wal::open(&path, StoreMetrics::detached()).unwrap();
        wal.append(&put("k", b"v"));
        wal.commit().unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty());
        assert_eq!(replay(&path).unwrap().ops, Vec::<Op>::new());
        std::fs::remove_dir_all(&dir).ok();
    }
}
