//! # store — the embedded LSM-flavored durable run store
//!
//! Everything the system learns flows through this crate when
//! durability matters: training checkpoints journal through a
//! write-ahead log so a `kill -9` loses at most the uncommitted tail,
//! and trained models publish into a versioned registry that the serve
//! daemon hot-swaps from without dropping a request.
//!
//! Layout of a store directory:
//!
//! ```text
//! run-store/
//!   wal             append-only log of recent mutations (crc-framed)
//!   seg-000001.seg  immutable sorted segments (crc-framed, fsync+rename)
//!   MANIFEST        versioned source of truth (crc-trailed, atomic rename)
//!   models/         published model generations (gen-000001.model, …)
//! ```
//!
//! The moving parts, bottom-up:
//!
//! * [`record`] — the shared length-prefixed, CRC-32-checksummed frame;
//! * [`wal`] — group-commit append log whose recovery replays exactly
//!   the durable record prefix (torn tails are truncated, not fatal);
//! * [`memtable`] / [`segment`] — the in-memory table and the immutable
//!   sorted files it freezes into;
//! * [`manifest`] — the versioned `MANIFEST` naming live segments and
//!   model generations, replaced atomically;
//! * [`RunStore`] — the put/get/commit/flush/compact surface plus the
//!   model-publishing write side of the registry;
//! * [`ModelWatcher`] — the poll-based read side serve uses to notice
//!   new generations;
//! * [`SwapCell`] — the epoch-reclaimed hot-swap slot that hands a new
//!   model to serve shards with zero dropped requests.
//!
//! ## Quick start
//!
//! ```
//! use store::RunStore;
//!
//! let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! let mut run = RunStore::open(&dir).unwrap();
//! run.put("checkpoint/latest", b"epoch 3 ...".as_slice());
//! run.commit().unwrap(); // one fsync, however many puts
//!
//! let generation = run.publish_model("model text").unwrap();
//! assert_eq!(run.latest_model().unwrap().unwrap().0, generation);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod crc;
mod error;
pub mod manifest;
pub mod memtable;
mod metrics;
pub mod record;
mod registry;
pub mod segment;
mod store;
mod swap;
pub mod trajectory;
pub mod wal;

pub use error::StoreError;
pub use manifest::{Manifest, ModelEntry};
pub use metrics::StoreMetrics;
pub use record::Op;
pub use registry::ModelWatcher;
pub use store::{RunStore, StoreConfig, StoreStatus};
pub use swap::{SwapCell, SwapGuard};
pub use wal::{replay, Replay, TailCorruption, Wal};
