//! The in-memory table: the freshest view of every key, flushed to an
//! immutable segment when it grows past the configured threshold.

use std::collections::BTreeMap;

use crate::record::Op;

/// Sorted in-memory key → value map. `None` values are tombstones
/// (deletions that must shadow older segment entries until compaction
/// drops them).
#[derive(Debug, Default)]
pub struct MemTable {
    map: BTreeMap<String, Option<Vec<u8>>>,
    approx_bytes: usize,
}

impl MemTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one operation.
    pub fn apply(&mut self, op: Op) {
        match op {
            Op::Put { key, value } => self.insert(key, value),
            Op::Delete { key } => self.delete(key),
        }
    }

    /// Bind `key` to `value`.
    pub fn insert(&mut self, key: String, value: Vec<u8>) {
        self.approx_bytes += key.len() + value.len();
        if let Some(old) = self.map.insert(key, Some(value)) {
            self.approx_bytes = self.approx_bytes.saturating_sub(old.map_or(0, |v| v.len()));
        }
    }

    /// Record a tombstone for `key`.
    pub fn delete(&mut self, key: String) {
        self.approx_bytes += key.len();
        if let Some(old) = self.map.insert(key, None) {
            self.approx_bytes = self.approx_bytes.saturating_sub(old.map_or(0, |v| v.len()));
        }
    }

    /// The freshest state of `key`: `None` = never seen here,
    /// `Some(None)` = tombstoned, `Some(Some(v))` = live.
    pub fn get(&self, key: &str) -> Option<Option<&[u8]>> {
        self.map.get(key).map(|v| v.as_deref())
    }

    /// Number of entries (tombstones included).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Rough resident size in bytes, for flush triggering.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Option<&[u8]>)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_deref()))
    }

    /// Drop everything (after a flush).
    pub fn clear(&mut self) {
        self.map.clear();
        self.approx_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_write_wins_and_tombstones_shadow() {
        let mut mem = MemTable::new();
        mem.insert("k".into(), b"one".to_vec());
        mem.insert("k".into(), b"two".to_vec());
        assert_eq!(mem.get("k"), Some(Some(b"two".as_slice())));
        mem.delete("k".into());
        assert_eq!(mem.get("k"), Some(None));
        assert_eq!(mem.get("other"), None);
        assert_eq!(mem.len(), 1);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut mem = MemTable::new();
        mem.insert("b".into(), vec![2]);
        mem.insert("a".into(), vec![1]);
        mem.delete("c".into());
        let keys: Vec<&str> = mem.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn approx_bytes_tracks_replacements() {
        let mut mem = MemTable::new();
        mem.insert("key".into(), vec![0; 100]);
        let full = mem.approx_bytes();
        mem.insert("key".into(), vec![0; 10]);
        assert!(mem.approx_bytes() < full);
        mem.clear();
        assert_eq!(mem.approx_bytes(), 0);
    }
}
