//! Calibration profiles for the four traces evaluated in the paper.
//!
//! The Parallel Workloads Archive files themselves are not redistributable
//! inside this repository, so each trace is replaced by a synthetic
//! generator calibrated to the per-trace statistics the paper publishes in
//! Table 2 (cluster size, mean arrival interval, mean estimated runtime,
//! mean requested processors). See `DESIGN.md` §5 for the substitution
//! rationale.

use serde::{Deserialize, Serialize};

/// Everything needed to synthesize a Table 2 trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Trace name as used in the paper.
    pub name: &'static str,
    /// Machine processors (Table 2 "cluster size").
    pub procs: u32,
    /// Target mean inter-arrival interval in seconds (Table 2 "interval").
    pub mean_interval: f64,
    /// Target mean estimated runtime in seconds (Table 2 "est_j").
    pub mean_estimate: f64,
    /// Target mean requested processors (Table 2 "res_j").
    pub mean_procs: f64,
    /// Mean actual runtime as a fraction of the mean estimate (archive logs
    /// show heavy over-estimation; not a Table 2 column).
    pub runtime_frac: f64,
    /// Log-scale spread of the runtime log-normal (heavier ⇒ more extreme
    /// short/long mixture).
    pub runtime_sigma: f64,
    /// Exponent correlating runtime with job width (`rt ∝ (res/mean_res)^c`):
    /// wide jobs run long, the structural source of blocking/queueing in
    /// production logs (and in the Lublin model).
    pub size_runtime_corr: f64,
    /// Probability a job is serial (1 processor).
    pub serial_prob: f64,
    /// Probability a parallel job size is snapped to a power of two.
    pub pow2_prob: f64,
    /// Gamma shape of the inter-arrival distribution (1 = exponential;
    /// smaller ⇒ burstier).
    pub arrival_shape: f64,
    /// Probability an arrival event is a *campaign*: one user submitting a
    /// batch of jobs back-to-back (very characteristic of archive logs).
    pub burst_prob: f64,
    /// Mean size of a campaign batch.
    pub burst_mean: f64,
    /// Whether arrivals follow a diurnal cycle.
    pub daily_cycle: bool,
    /// Number of distinct users (Zipf-distributed activity).
    pub n_users: u32,
    /// Zipf exponent of user activity.
    pub user_skew: f64,
    /// Number of scheduling queues (jobs are binned by estimate).
    pub n_queues: u32,
}

/// SDSC-SP2: 128 procs, 1055 s interval, 6687 s est, 11 procs (Table 2).
pub const SDSC_SP2: TraceProfile = TraceProfile {
    name: "SDSC-SP2",
    procs: 128,
    mean_interval: 1055.0,
    mean_estimate: 6687.0,
    mean_procs: 11.0,
    runtime_frac: 0.85,
    runtime_sigma: 1.5,
    size_runtime_corr: 0.5,
    serial_prob: 0.25,
    pow2_prob: 0.65,
    arrival_shape: 0.30,
    burst_prob: 0.02,
    burst_mean: 10.0,
    daily_cycle: true,
    n_users: 96,
    user_skew: 1.1,
    n_queues: 4,
};

/// CTC-SP2: 338 procs, 379 s interval, 11277 s est, 11 procs (Table 2).
pub const CTC_SP2: TraceProfile = TraceProfile {
    name: "CTC-SP2",
    procs: 338,
    mean_interval: 379.0,
    mean_estimate: 11277.0,
    mean_procs: 11.0,
    runtime_frac: 0.60,
    runtime_sigma: 1.2,
    size_runtime_corr: 0.9,
    serial_prob: 0.30,
    pow2_prob: 0.55,
    arrival_shape: 0.15,
    burst_prob: 0.02,
    burst_mean: 12.0,
    daily_cycle: true,
    n_users: 160,
    user_skew: 1.05,
    n_queues: 4,
};

/// HPC2N: 240 procs, 538 s interval, 17024 s est, 6 procs (Table 2).
pub const HPC2N: TraceProfile = TraceProfile {
    name: "HPC2N",
    procs: 240,
    mean_interval: 538.0,
    mean_estimate: 17024.0,
    mean_procs: 6.0,
    runtime_frac: 0.22,
    runtime_sigma: 2.0,
    size_runtime_corr: 0.9,
    serial_prob: 0.45,
    pow2_prob: 0.60,
    arrival_shape: 0.10,
    burst_prob: 0.06,
    burst_mean: 40.0,
    daily_cycle: true,
    n_users: 128,
    user_skew: 1.2,
    n_queues: 3,
};

/// Lublin synthetic target: 256 procs, 771 s interval, 4862 s est, 22 procs
/// (Table 2). The Lublin model generates this one (see [`crate::lublin`]).
pub const LUBLIN_256: TraceProfile = TraceProfile {
    name: "Lublin",
    procs: 256,
    mean_interval: 771.0,
    mean_estimate: 4862.0,
    mean_procs: 22.0,
    runtime_frac: 0.65,
    runtime_sigma: 1.6,
    size_runtime_corr: 0.6,
    serial_prob: 0.244,
    pow2_prob: 0.576,
    arrival_shape: 0.45,
    burst_prob: 0.02,
    burst_mean: 10.0,
    daily_cycle: true,
    n_users: 64,
    user_skew: 1.0,
    n_queues: 3,
};

/// The four paper traces, in Table 2 order (CTC, SDSC, HPC2N, Lublin).
pub const ALL_PROFILES: [&TraceProfile; 4] = [&CTC_SP2, &SDSC_SP2, &HPC2N, &LUBLIN_256];

/// Look a profile up by (case-insensitive) name.
pub fn profile_by_name(name: &str) -> Option<&'static TraceProfile> {
    ALL_PROFILES
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(profile_by_name("sdsc-sp2").unwrap().procs, 128);
        assert_eq!(profile_by_name("LUBLIN").unwrap().procs, 256);
        assert!(profile_by_name("nope").is_none());
    }

    #[test]
    fn profiles_match_table2_constants() {
        assert_eq!(CTC_SP2.procs, 338);
        assert_eq!(CTC_SP2.mean_interval, 379.0);
        assert_eq!(SDSC_SP2.mean_estimate, 6687.0);
        assert_eq!(HPC2N.mean_procs, 6.0);
        assert_eq!(LUBLIN_256.mean_interval, 771.0);
    }

    #[test]
    fn probabilities_are_valid() {
        for p in ALL_PROFILES {
            assert!((0.0..=1.0).contains(&p.serial_prob), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.pow2_prob), "{}", p.name);
            assert!(p.runtime_frac > 0.0 && p.runtime_frac <= 1.0, "{}", p.name);
            assert!(p.mean_procs <= p.procs as f64, "{}", p.name);
        }
    }
}
