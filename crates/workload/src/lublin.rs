//! The Lublin–Feitelson (2003) synthetic workload model.
//!
//! Implements the batch-job portion of the model from *"The workload on
//! parallel supercomputers: modeling the characteristics of rigid jobs"*
//! (JPDC 2003), the generator behind the paper's "Lublin" trace:
//!
//! * **sizes**: serial with probability `SERIAL_PROB`; parallel sizes are
//!   `2^u` with `u` drawn from a two-stage uniform on
//!   `[ULOW, UMED] ∪ [UMED, UHI]` (`UHI = log2(machine)`), snapped to an
//!   exact power of two with probability `POW2_PROB`;
//! * **runtimes**: hyper-gamma mixture whose first-component probability
//!   decreases linearly with job size (`p = PA·size + PB`) — bigger jobs
//!   run longer;
//! * **arrivals**: gamma-distributed log₂ inter-arrival times modulated by
//!   a diurnal cycle.
//!
//! The original model's constants were fitted to late-90s logs; following
//! the reproduction plan (DESIGN.md §5) the generated trace is rescaled so
//! its Table 2 statistics match what the paper reports for its Lublin trace
//! (256 procs, 771 s mean interval, 4862 s mean estimate, 22 mean procs).

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::distributions::{calibrate_mean, Gamma, Sample};
use crate::job::Job;
use crate::profiles::LUBLIN_256;
use crate::trace::JobTrace;

/// Probability of a serial (1-processor) job.
pub const SERIAL_PROB: f64 = 0.244;
/// Probability a parallel size is an exact power of two.
pub const POW2_PROB: f64 = 0.576;
/// Lower bound of the log₂ size range.
pub const ULOW: f64 = 0.8;
/// First-stage probability of the two-stage uniform.
pub const UPROB: f64 = 0.705;
/// Hyper-gamma runtime component 1 (shape, rate) — short jobs.
pub const RT_G1: (f64, f64) = (4.2, 0.94);
/// Hyper-gamma runtime component 2 (shape, rate) — long jobs.
pub const RT_G2: (f64, f64) = (312.0, 0.03);
/// Linear coefficients of the mixture probability `p = PA·size + PB`.
pub const PA: f64 = -0.0054;
/// See [`PA`].
pub const PB: f64 = 0.78;
/// Gamma parameters (shape, scale) of log₂ inter-arrival at peak hours.
pub const ARR_GAMMA: (f64, f64) = (10.23, 0.4871);

/// Two-stage uniform: with probability `prob` uniform on `[low, med]`,
/// otherwise uniform on `[med, hi]`.
fn two_stage_uniform<R: Rng + ?Sized>(low: f64, med: f64, hi: f64, prob: f64, rng: &mut R) -> f64 {
    let (a, b) = if rng.random::<f64>() < prob {
        (low, med)
    } else {
        (med, hi)
    };
    a + (b - a) * rng.random::<f64>()
}

/// Sample a job size for a machine with `procs` processors.
pub fn sample_size<R: Rng + ?Sized>(procs: u32, rng: &mut R) -> u32 {
    if rng.random::<f64>() < SERIAL_PROB {
        return 1;
    }
    let uhi = (procs as f64).log2();
    let umed = (uhi - 2.5).max(ULOW + 0.1);
    let u = two_stage_uniform(ULOW, umed, uhi, UPROB, rng);
    let size = if rng.random::<f64>() < POW2_PROB {
        2f64.powf(u.round())
    } else {
        2f64.powf(u).round()
    };
    (size as u32).clamp(1, procs)
}

/// Sample an actual runtime (seconds) for a job of `size` processors.
pub fn sample_runtime<R: Rng + ?Sized>(size: u32, rng: &mut R) -> f64 {
    // Gamma here is parameterized (shape, rate): mean = shape / rate.
    let g1 = Gamma {
        alpha: RT_G1.0,
        theta: 1.0 / RT_G1.1,
    };
    let g2 = Gamma {
        alpha: RT_G2.0,
        theta: 1.0 / RT_G2.1,
    };
    let p = (PA * size as f64 + PB).clamp(0.05, 0.95);
    let rt = if rng.random::<f64>() < p {
        g1.sample(rng)
    } else {
        g2.sample(rng)
    };
    rt.max(1.0)
}

/// Sample a raw peak-hours inter-arrival gap: `2^Gamma(10.23, 0.4871)` s.
pub fn sample_interarrival<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let g = Gamma {
        alpha: ARR_GAMMA.0,
        theta: ARR_GAMMA.1,
    };
    2f64.powf(g.sample(rng)).max(1.0)
}

/// Diurnal modulation shared with the calibrated generators.
fn cycle_weight(t: f64) -> f64 {
    let hour = (t / 3600.0) % 24.0;
    1.0 + 0.8 * (std::f64::consts::TAU * (hour - 14.0) / 24.0).cos()
}

/// Generate a Lublin-model trace rescaled to the paper's Table 2 targets.
pub fn generate(n_jobs: usize, seed: u64) -> JobTrace {
    let p = &LUBLIN_256;
    let mut rng = StdRng::seed_from_u64(seed);

    let sizes: Vec<u32> = (0..n_jobs)
        .map(|_| sample_size(p.procs, &mut rng))
        .collect();
    let raw_rt: Vec<f64> = sizes.iter().map(|&s| sample_runtime(s, &mut rng)).collect();

    // Rescale runtimes so the *estimate* mean can land on Table 2's value:
    // estimates are runtime × a calibrated over-estimation factor.
    let raw_mean = raw_rt.iter().sum::<f64>() / n_jobs.max(1) as f64;
    let target_rt_mean = p.mean_estimate * p.runtime_frac;
    let rt_scale = target_rt_mean / raw_mean;
    let runtimes: Vec<f64> = raw_rt.iter().map(|r| (r * rt_scale).max(1.0)).collect();

    let est_of = |f: f64, probe_seed: u64| -> f64 {
        let mut r = StdRng::seed_from_u64(probe_seed);
        runtimes
            .iter()
            .map(|&rt| rt * (1.0 + f * r.random::<f64>()))
            .sum::<f64>()
            / n_jobs.max(1) as f64
    };
    let f = calibrate_mean(0.0, 40.0, p.mean_estimate, 0.005, |f| {
        est_of(f, seed ^ 0xAB)
    });
    let mut er = StdRng::seed_from_u64(seed ^ 0xAB);
    let estimates: Vec<f64> = runtimes
        .iter()
        .map(|&rt| rt * (1.0 + f * er.random::<f64>()))
        .collect();

    let mut t = 0.0;
    let mut submits = Vec::with_capacity(n_jobs);
    for _ in 0..n_jobs {
        t += sample_interarrival(&mut rng) / cycle_weight(t);
        submits.push(t);
    }
    if n_jobs > 1 {
        let span = submits[n_jobs - 1] - submits[0];
        let scale = p.mean_interval * (n_jobs - 1) as f64 / span;
        for s in &mut submits {
            *s *= scale;
        }
    }

    // The raw Lublin size distribution has a model-fitted mean; scale job
    // sizes multiplicatively (then clamp) so the mean matches Table 2.
    let size_mean = sizes.iter().map(|&s| s as f64).sum::<f64>() / n_jobs.max(1) as f64;
    let size_scale = p.mean_procs / size_mean;
    let jobs: Vec<Job> = (0..n_jobs)
        .map(|i| Job {
            id: i as u64 + 1,
            submit: submits[i],
            runtime: runtimes[i],
            estimate: estimates[i].max(runtimes[i]),
            procs: (((sizes[i] as f64) * size_scale).round() as u32).clamp(1, p.procs),
            user: (i % p.n_users as usize) as u32,
            queue: if estimates[i] <= 3600.0 {
                0
            } else if estimates[i] <= 28800.0 {
                1
            } else {
                2
            },
        })
        .collect();

    JobTrace::new(p.name, p.procs, jobs).expect("lublin generator produced an invalid trace")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(generate(300, 5), generate(300, 5));
    }

    #[test]
    fn matches_table2_targets() {
        let t = generate(6000, 99);
        let s = t.stats();
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(
            rel(s.mean_interval, 771.0) < 0.02,
            "interval {}",
            s.mean_interval
        );
        assert!(
            rel(s.mean_estimate, 4862.0) < 0.10,
            "est {}",
            s.mean_estimate
        );
        assert!(rel(s.mean_procs, 22.0) < 0.15, "procs {}", s.mean_procs);
        assert_eq!(s.cluster_size, 256);
    }

    #[test]
    fn runtime_mixture_is_bimodal() {
        let mut rng = StdRng::seed_from_u64(1);
        let rts: Vec<f64> = (0..20_000).map(|_| sample_runtime(4, &mut rng)).collect();
        let short = rts.iter().filter(|&&r| r < 100.0).count();
        let long = rts.iter().filter(|&&r| r > 1000.0).count();
        assert!(short > 1000, "short component missing: {short}");
        assert!(long > 1000, "long component missing: {long}");
    }

    #[test]
    fn sizes_within_machine() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let s = sample_size(256, &mut rng);
            assert!((1..=256).contains(&s));
        }
    }

    #[test]
    fn serial_fraction_close_to_model() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let serial = (0..n).filter(|_| sample_size(256, &mut rng) == 1).count();
        let frac = serial as f64 / n as f64;
        // Serial jobs come from SERIAL_PROB plus a sliver of rounded-down
        // parallel draws near ULOW.
        assert!((frac - SERIAL_PROB).abs() < 0.05, "serial fraction {frac}");
    }

    #[test]
    fn estimates_dominate_runtimes() {
        let t = generate(2000, 7);
        assert!(t.jobs.iter().all(|j| j.estimate >= j.runtime));
    }
}
