//! Statistical distributions implemented from scratch.
//!
//! The allowed dependency set does not include `rand_distr`, and the workload
//! models (Lublin–Feitelson, calibrated trace synthesis) need heavy-tailed
//! samplers, so this module implements the classical algorithms directly:
//! Box–Muller for the normal, Marsaglia–Tsang for the gamma, inversion for
//! the exponential and Weibull, and mixtures on top.
//!
//! All samplers are generic over [`rand::Rng`] so they stay deterministic
//! under a seeded `StdRng`.

use rand::{Rng, RngExt};

/// A real-valued distribution that can be sampled with any RNG.
pub trait Sample {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// The analytic mean, when finite and known.
    fn mean(&self) -> f64;
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter; must be positive.
    pub lambda: f64,
}

impl Exponential {
    /// Create from the mean instead of the rate.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "exponential mean must be positive");
        Exponential { lambda: 1.0 / mean }
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inversion; guard the log against u == 0.
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.lambda
    }

    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

/// Normal distribution (Box–Muller transform).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mu: f64,
    /// Standard deviation; must be non-negative.
    pub sigma: f64,
}

impl Sample for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mu + self.sigma * z
    }

    fn mean(&self) -> f64 {
        self.mu
    }
}

/// Log-normal distribution: `exp(Normal(mu, sigma))`.
///
/// Job runtimes in production HPC traces are famously heavy-tailed and are
/// well fitted by log-normals; this is the backbone of the calibrated trace
/// generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal (log scale).
    pub mu: f64,
    /// Std-dev of the underlying normal (log scale).
    pub sigma: f64,
}

impl LogNormal {
    /// Construct a log-normal with the given arithmetic mean and log-scale
    /// spread `sigma`, solving `mu = ln(mean) - sigma^2 / 2`.
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0, "log-normal mean must be positive");
        LogNormal {
            mu: mean.ln() - sigma * sigma / 2.0,
            sigma,
        }
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Normal {
            mu: self.mu,
            sigma: self.sigma,
        }
        .sample(rng)
        .exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Gamma distribution with shape `alpha` and scale `theta`
/// (mean `alpha * theta`), sampled with Marsaglia–Tsang (2000).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    /// Shape parameter; must be positive.
    pub alpha: f64,
    /// Scale parameter; must be positive.
    pub theta: f64,
}

impl Gamma {
    /// Gamma with a target mean and given shape (`theta = mean / alpha`).
    pub fn with_mean(mean: f64, alpha: f64) -> Self {
        assert!(mean > 0.0 && alpha > 0.0);
        Gamma {
            alpha,
            theta: mean / alpha,
        }
    }

    fn sample_shape_ge_one<R: Rng + ?Sized>(alpha: f64, rng: &mut R) -> f64 {
        debug_assert!(alpha >= 1.0);
        let d = alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = Normal {
                mu: 0.0,
                sigma: 1.0,
            }
            .sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v3 + d * v3.ln() {
                return d * v3;
            }
        }
    }
}

impl Sample for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // For alpha < 1 use the boosting identity
        // Gamma(a) = Gamma(a + 1) * U^(1/a).
        let raw = if self.alpha >= 1.0 {
            Self::sample_shape_ge_one(self.alpha, rng)
        } else {
            let g = Self::sample_shape_ge_one(self.alpha + 1.0, rng);
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            g * u.powf(1.0 / self.alpha)
        };
        raw * self.theta
    }

    fn mean(&self) -> f64 {
        self.alpha * self.theta
    }
}

/// Weibull distribution with shape `k` and scale `lambda` (inversion method).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    /// Shape parameter; must be positive.
    pub k: f64,
    /// Scale parameter; must be positive.
    pub lambda: f64,
}

impl Sample for Weibull {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        self.lambda * (-u.ln()).powf(1.0 / self.k)
    }

    fn mean(&self) -> f64 {
        self.lambda * gamma_fn(1.0 + 1.0 / self.k)
    }
}

/// Hyper-gamma: a two-component gamma mixture, the runtime model of the
/// Lublin–Feitelson workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperGamma {
    /// First component.
    pub g1: Gamma,
    /// Second component.
    pub g2: Gamma,
    /// Probability of drawing from the first component.
    pub p: f64,
}

impl Sample for HyperGamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.random::<f64>() < self.p {
            self.g1.sample(rng)
        } else {
            self.g2.sample(rng)
        }
    }

    fn mean(&self) -> f64 {
        self.p * self.g1.mean() + (1.0 - self.p) * self.g2.mean()
    }
}

/// Lanczos approximation of the gamma function (used by [`Weibull::mean`]).
#[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
pub fn gamma_fn(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + 7.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (std::f64::consts::TAU).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Zipf-like discrete distribution over `{0, 1, ..., n-1}` with exponent
/// `s`: `P(k) ∝ (k + 1)^-s`. Used to assign jobs to a skewed user
/// population (a few users submit most jobs, as in real logs).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the CDF table for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += ((k + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Numerically calibrate a scalar knob so that the sampled mean of
/// `make(knob)` hits `target` within `tol` (relative), via bisection on a
/// monotone knob → mean mapping. Returns the calibrated knob value.
///
/// Used by the trace generators to match the published Table 2 means.
pub fn calibrate_mean<F>(mut lo: f64, mut hi: f64, target: f64, tol: f64, mut mean_of: F) -> f64
where
    F: FnMut(f64) -> f64,
{
    let (mlo, mhi) = (mean_of(lo), mean_of(hi));
    let increasing = mhi >= mlo;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let m = mean_of(mid);
        if (m - target).abs() <= tol * target {
            return mid;
        }
        if (m < target) == increasing {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean<D: Sample>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(50.0);
        let m = sample_mean(&d, 200_000, 1);
        assert!((m - 50.0).abs() < 1.0, "mean {m}");
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Normal {
            mu: 3.0,
            sigma: 2.0,
        };
        let m = sample_mean(&d, 200_000, 2);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn lognormal_with_mean_hits_target() {
        let d = LogNormal::with_mean(1000.0, 1.5);
        assert!((d.mean() - 1000.0).abs() < 1e-6);
        let m = sample_mean(&d, 400_000, 3);
        assert!((m - 1000.0).abs() / 1000.0 < 0.05, "mean {m}");
    }

    #[test]
    fn gamma_mean_shape_above_one() {
        let d = Gamma {
            alpha: 4.2,
            theta: 10.0,
        };
        let m = sample_mean(&d, 200_000, 4);
        assert!((m - 42.0).abs() / 42.0 < 0.02, "mean {m}");
    }

    #[test]
    fn gamma_mean_shape_below_one() {
        let d = Gamma {
            alpha: 0.45,
            theta: 100.0,
        };
        let m = sample_mean(&d, 300_000, 5);
        assert!((m - 45.0).abs() / 45.0 < 0.03, "mean {m}");
    }

    #[test]
    fn hypergamma_mixes() {
        let d = HyperGamma {
            g1: Gamma {
                alpha: 4.2,
                theta: 1.0,
            },
            g2: Gamma {
                alpha: 312.0,
                theta: 0.1,
            },
            p: 0.3,
        };
        let expect = 0.3 * 4.2 + 0.7 * 31.2;
        let m = sample_mean(&d, 200_000, 6);
        assert!(
            (m - expect).abs() / expect < 0.02,
            "mean {m} expect {expect}"
        );
    }

    #[test]
    fn weibull_mean_matches_analytic() {
        let d = Weibull {
            k: 1.5,
            lambda: 100.0,
        };
        let m = sample_mean(&d, 300_000, 7);
        assert!(
            (m - d.mean()).abs() / d.mean() < 0.02,
            "mean {m} vs {}",
            d.mean()
        );
    }

    #[test]
    fn gamma_fn_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4], "rank 0 should dominate: {counts:?}");
        assert!(counts[9] > 0);
    }

    #[test]
    fn calibrate_mean_finds_knob() {
        // mean(knob) = knob * 2, target 10 -> knob 5.
        let k = calibrate_mean(0.0, 100.0, 10.0, 1e-6, |k| k * 2.0);
        assert!((k - 5.0).abs() < 1e-3);
    }

    #[test]
    fn samples_are_non_negative() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = Gamma {
            alpha: 0.3,
            theta: 5.0,
        };
        let e = Exponential::with_mean(10.0);
        let w = Weibull {
            k: 0.7,
            lambda: 3.0,
        };
        for _ in 0..10_000 {
            assert!(g.sample(&mut rng) >= 0.0);
            assert!(e.sample(&mut rng) >= 0.0);
            assert!(w.sample(&mut rng) >= 0.0);
        }
    }
}
