//! Calibrated synthetic trace generation.
//!
//! Generates SWF-compatible traces whose Table 2 statistics (mean arrival
//! interval, mean estimate, mean requested processors) match a
//! [`TraceProfile`] closely. The generator composes:
//!
//! * **sizes** — serial with `serial_prob`, otherwise log₂-uniform over
//!   `[0, log2(procs)]` with an upper-range cut-off calibrated by bisection
//!   to hit the target mean; parallel sizes are snapped to powers of two
//!   with `pow2_prob` (the canonical shape of archive logs);
//! * **runtimes** — heavy-tailed log-normal with profile spread;
//! * **estimates** — runtime × log-normal over-estimation factor, rounded
//!   up to canonical request values (10 min, 30 min, 1 h, ...), with the
//!   factor calibrated so the mean estimate matches Table 2;
//! * **arrivals** — gamma inter-arrivals (burstier than Poisson) modulated
//!   by a diurnal cycle, then rescaled to the exact target mean interval;
//! * **users/queues** — Zipf-skewed user population and estimate-binned
//!   queues, so the Slurm multifactor experiment (§4.5) has the fields it
//!   needs.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::distributions::{calibrate_mean, Exponential, Gamma, LogNormal, Sample, Zipf};
use crate::job::Job;
use crate::profiles::TraceProfile;
use crate::trace::JobTrace;

/// Canonical user-requested walltimes, seconds (10 min … 5 days).
const CANONICAL_ESTIMATES: [f64; 19] = [
    600.0, 900.0, 1200.0, 1800.0, 2700.0, 3600.0, 5400.0, 7200.0, 10800.0, 14400.0, 21600.0,
    28800.0, 43200.0, 64800.0, 86400.0, 129600.0, 172800.0, 259200.0, 432000.0,
];

/// Round an estimate up to the next canonical request value. Shared with
/// the scenario engine so compiled traces request the same walltime grid.
pub fn canonical_estimate(raw: f64) -> f64 {
    for &c in &CANONICAL_ESTIMATES {
        if raw <= c {
            return c;
        }
    }
    *CANONICAL_ESTIMATES.last().unwrap()
}

/// Diurnal arrival-rate multiplier: peak mid-afternoon, trough at night.
/// Mean over a day is 1 so it reshapes, not rescales, the arrival process.
/// Shared with the scenario engine so both generators agree on what a
/// "diurnal" arrival process is.
pub fn daily_cycle_weight(time_s: f64) -> f64 {
    let hour = (time_s / 3600.0) % 24.0;
    1.0 + 0.8 * (std::f64::consts::TAU * (hour - 14.0) / 24.0).cos()
}

/// Sample a processor count given the calibrated `hi` cut of the log₂ range.
fn sample_size<R: Rng + ?Sized>(p: &TraceProfile, hi: f64, rng: &mut R) -> u32 {
    if rng.random::<f64>() < p.serial_prob {
        return 1;
    }
    let u: f64 = rng.random::<f64>() * hi;
    let raw = 2f64.powf(u).round().max(2.0);
    let size = if rng.random::<f64>() < p.pow2_prob {
        2f64.powf(u.round())
    } else {
        raw
    };
    (size as u32).clamp(1, p.procs)
}

fn mean_size(p: &TraceProfile, hi: f64, probe: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..probe)
        .map(|_| sample_size(p, hi, &mut rng) as f64)
        .sum::<f64>()
        / probe as f64
}

/// Sample an over-estimation factor (≥ 1) with log-scale knob `k`.
fn sample_overest<R: Rng + ?Sized>(k: f64, rng: &mut R) -> f64 {
    1.0 + LogNormal::with_mean(k, 0.9).sample(rng)
}

/// Generate a calibrated synthetic trace.
///
/// The calibration is deterministic: bisection probes use fixed sub-seeds of
/// `seed`, so the same `(profile, n_jobs, seed)` always yields the same
/// trace.
pub fn generate(profile: &TraceProfile, n_jobs: usize, seed: u64) -> JobTrace {
    let p = profile;
    let log2max = (p.procs as f64).log2();

    // --- calibrate the size distribution to the target mean procs ---
    let hi = calibrate_mean(0.1, log2max, p.mean_procs, 0.01, |hi| {
        mean_size(p, hi, 8192, seed ^ 0x5157_u64)
    });

    let mut rng = StdRng::seed_from_u64(seed);

    // --- sizes and runtimes ---
    let sizes: Vec<u32> = (0..n_jobs).map(|_| sample_size(p, hi, &mut rng)).collect();
    let runtime_mean = p.mean_estimate * p.runtime_frac;
    let runtime_dist = LogNormal::with_mean(runtime_mean, p.runtime_sigma);
    let max_rt = *CANONICAL_ESTIMATES.last().unwrap();
    // Wide jobs run long (size_runtime_corr); then rescale to the target
    // mean so the correlation reshapes without shifting Table 2 statistics.
    let raw_rt: Vec<f64> = sizes
        .iter()
        .map(|&s| {
            let corr = (s as f64 / p.mean_procs).powf(p.size_runtime_corr);
            (runtime_dist.sample(&mut rng) * corr).clamp(10.0, max_rt)
        })
        .collect();
    let raw_mean = raw_rt.iter().sum::<f64>() / n_jobs.max(1) as f64;
    let rt_scale = if raw_mean > 0.0 {
        runtime_mean / raw_mean
    } else {
        1.0
    };
    let runtimes: Vec<f64> = raw_rt
        .iter()
        .map(|&r| (r * rt_scale).clamp(10.0, max_rt))
        .collect();

    // --- calibrate the over-estimation factor to the target mean estimate ---
    let est_of = |k: f64, runtimes: &[f64], probe_seed: u64| -> f64 {
        let mut r = StdRng::seed_from_u64(probe_seed);
        let m: f64 = runtimes
            .iter()
            .map(|&rt| canonical_estimate(rt * sample_overest(k, &mut r)))
            .sum();
        m / runtimes.len() as f64
    };
    let k = calibrate_mean(0.01, 12.0, p.mean_estimate, 0.01, |k| {
        est_of(k, &runtimes, seed ^ 0xE57_u64)
    });
    let mut est_rng = StdRng::seed_from_u64(seed ^ 0xE57_u64);
    let estimates: Vec<f64> = runtimes
        .iter()
        .map(|&rt| canonical_estimate(rt * sample_overest(k, &mut est_rng)))
        .collect();

    // --- arrivals: gamma inter-arrivals + diurnal cycle, exact-mean rescale ---
    let arr = Gamma::with_mean(p.mean_interval, p.arrival_shape);
    let mut t = 0.0;
    let mut submits = Vec::with_capacity(n_jobs);
    while submits.len() < n_jobs {
        let mut dt = arr.sample(&mut rng).max(1.0);
        if p.daily_cycle {
            dt /= daily_cycle_weight(t);
        }
        t += dt;
        // Campaigns: one user firing a batch of jobs back-to-back creates
        // the queue spikes real logs show even at low average load.
        let batch = if rng.random::<f64>() < p.burst_prob {
            2 + Exponential::with_mean(p.burst_mean)
                .sample(&mut rng)
                .round() as usize
        } else {
            1
        };
        for b in 0..batch.min(n_jobs - submits.len()) {
            submits.push(t + b as f64);
        }
    }
    if n_jobs > 1 {
        let span = submits[n_jobs - 1] - submits[0];
        let target_span = p.mean_interval * (n_jobs - 1) as f64;
        let scale = target_span / span;
        for s in &mut submits {
            *s *= scale;
        }
    }

    // --- users and queues ---
    let zipf = Zipf::new(p.n_users as usize, p.user_skew);
    let jobs: Vec<Job> = (0..n_jobs)
        .map(|i| {
            let runtime = runtimes[i].min(estimates[i]);
            Job {
                id: i as u64 + 1,
                submit: submits[i],
                runtime,
                estimate: estimates[i],
                procs: sizes[i],
                user: zipf.sample(&mut rng) as u32,
                queue: queue_for(estimates[i], p.n_queues),
            }
        })
        .collect();

    JobTrace::new(p.name, p.procs, jobs).expect("generator produced an invalid trace")
}

/// Bin a job into a queue by its estimate (short → queue 0, long → last).
fn queue_for(estimate: f64, n_queues: u32) -> u32 {
    debug_assert!(n_queues > 0);
    let bucket = match estimate {
        e if e <= 3600.0 => 0,
        e if e <= 14400.0 => 1,
        e if e <= 86400.0 => 2,
        _ => 3,
    };
    bucket.min(n_queues - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{ALL_PROFILES, SDSC_SP2};

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&SDSC_SP2, 500, 11);
        let b = generate(&SDSC_SP2, 500, 11);
        assert_eq!(a, b);
        let c = generate(&SDSC_SP2, 500, 12);
        assert_ne!(a.jobs, c.jobs);
    }

    #[test]
    fn table2_means_are_matched() {
        // The Lublin row is produced by the Lublin model (`lublin.rs`),
        // which has its own calibration test; this generator's canonical
        // walltime rounding cannot reach Lublin's low est/runtime ratio.
        for p in ALL_PROFILES.into_iter().filter(|p| p.name != "Lublin") {
            let t = generate(p, 6000, 42);
            let s = t.stats();
            let rel = |a: f64, b: f64| (a - b).abs() / b;
            assert!(
                rel(s.mean_interval, p.mean_interval) < 0.02,
                "{}: interval {} vs {}",
                p.name,
                s.mean_interval,
                p.mean_interval
            );
            assert!(
                rel(s.mean_estimate, p.mean_estimate) < 0.10,
                "{}: est {} vs {}",
                p.name,
                s.mean_estimate,
                p.mean_estimate
            );
            assert!(
                rel(s.mean_procs, p.mean_procs) < 0.12,
                "{}: procs {} vs {}",
                p.name,
                s.mean_procs,
                p.mean_procs
            );
        }
    }

    #[test]
    fn jobs_fit_machine_and_are_ordered() {
        let t = generate(&SDSC_SP2, 2000, 1);
        let mut last = f64::NEG_INFINITY;
        for j in &t.jobs {
            assert!(j.procs >= 1 && j.procs <= t.procs);
            assert!(j.runtime > 0.0 && j.estimate >= j.runtime);
            assert!(j.submit >= last);
            last = j.submit;
        }
    }

    #[test]
    fn estimates_are_canonical() {
        let t = generate(&SDSC_SP2, 1000, 3);
        for j in &t.jobs {
            assert!(
                CANONICAL_ESTIMATES.contains(&j.estimate),
                "estimate {} not canonical",
                j.estimate
            );
        }
    }

    #[test]
    fn users_and_queues_are_populated() {
        let t = generate(&SDSC_SP2, 2000, 4);
        let users: std::collections::HashSet<u32> = t.jobs.iter().map(|j| j.user).collect();
        let queues: std::collections::HashSet<u32> = t.jobs.iter().map(|j| j.queue).collect();
        assert!(
            users.len() > 10,
            "expected a user population, got {}",
            users.len()
        );
        assert!(
            queues.len() >= 2,
            "expected multiple queues, got {}",
            queues.len()
        );
        assert!(t.jobs.iter().all(|j| j.queue < SDSC_SP2.n_queues));
    }

    #[test]
    fn daily_cycle_weight_averages_to_one() {
        let mean: f64 = (0..240)
            .map(|i| daily_cycle_weight(i as f64 * 360.0))
            .sum::<f64>()
            / 240.0;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn canonical_estimate_rounds_up() {
        assert_eq!(canonical_estimate(0.0), 600.0);
        assert_eq!(canonical_estimate(601.0), 900.0);
        assert_eq!(canonical_estimate(1e9), 432000.0);
    }
}
