//! The simulation-facing job model.

use serde::{Deserialize, Serialize};
use swf::SwfRecord;

/// One batch job as seen by the scheduler and the simulator.
///
/// Times are seconds (`f64`) relative to the trace origin. Following the
/// paper (§3.2) the *actual* runtime drives completions while the
/// *estimated* runtime drives scheduling decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Stable job identifier (unique within a trace).
    pub id: u64,
    /// Submission time in seconds.
    pub submit: f64,
    /// Actual execution time `exe_j` in seconds (drives completion).
    pub runtime: f64,
    /// Estimated execution time `est_j` in seconds (drives scheduling).
    pub estimate: f64,
    /// Requested processors `res_j`.
    pub procs: u32,
    /// Submitting user (for the Slurm fairshare factor).
    pub user: u32,
    /// Queue / partition id (for the Slurm partition factor).
    pub queue: u32,
}

impl Job {
    /// Convenience constructor for tests and examples.
    pub fn new(id: u64, submit: f64, runtime: f64, estimate: f64, procs: u32) -> Self {
        Job {
            id,
            submit,
            runtime,
            estimate,
            procs,
            user: 0,
            queue: 0,
        }
    }

    /// Estimated area `est_j * res_j` (the SAF priority key).
    pub fn area(&self) -> f64 {
        self.estimate * self.procs as f64
    }

    /// Convert from an SWF record. Returns `None` for records that cannot be
    /// simulated (no runtime or no processor count).
    pub fn from_swf(rec: &SwfRecord) -> Option<Self> {
        if !rec.is_simulatable() {
            return None;
        }
        let procs = rec.effective_procs();
        let estimate = rec.effective_estimate().max(rec.run_time).max(1);
        Some(Job {
            id: rec.job_id,
            submit: rec.submit_time.max(0) as f64,
            runtime: rec.run_time.max(1) as f64,
            estimate: estimate as f64,
            procs: procs as u32,
            user: rec.user_id.max(0) as u32,
            queue: rec.queue.max(0) as u32,
        })
    }

    /// Convert to an SWF record (fields we do not model are left unknown).
    pub fn to_swf(&self) -> SwfRecord {
        SwfRecord {
            job_id: self.id,
            submit_time: self.submit.round() as i64,
            run_time: self.runtime.round() as i64,
            allocated_procs: self.procs as i64,
            requested_procs: self.procs as i64,
            requested_time: self.estimate.round() as i64,
            user_id: self.user as i64,
            queue: self.queue as i64,
            status: 1,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_is_estimate_times_procs() {
        let j = Job::new(1, 0.0, 100.0, 120.0, 4);
        assert_eq!(j.area(), 480.0);
    }

    #[test]
    fn from_swf_skips_unsimulatable() {
        let bad = SwfRecord {
            run_time: -1,
            ..Default::default()
        };
        assert!(Job::from_swf(&bad).is_none());
    }

    #[test]
    fn from_swf_estimate_at_least_runtime() {
        let rec = SwfRecord {
            job_id: 1,
            submit_time: 5,
            run_time: 100,
            requested_time: 50, // under-estimate in the log
            requested_procs: 2,
            ..Default::default()
        };
        let j = Job::from_swf(&rec).unwrap();
        assert_eq!(j.estimate, 100.0);
        assert_eq!(j.procs, 2);
    }

    #[test]
    fn swf_roundtrip() {
        let j = Job {
            id: 9,
            submit: 10.0,
            runtime: 60.0,
            estimate: 90.0,
            procs: 8,
            user: 3,
            queue: 1,
        };
        let j2 = Job::from_swf(&j.to_swf()).unwrap();
        assert_eq!(j, j2);
    }
}
