//! Trace manipulation tools: load scaling, filtering, and merging.
//!
//! Standard operations in scheduling research — e.g. the common
//! "load-scaling" methodology (Feitelson, *Workload Modeling*) compresses
//! or stretches inter-arrival gaps to study a system under higher or lower
//! offered load without changing the job mix.

use crate::job::Job;
use crate::trace::{JobTrace, TraceError};

/// Scale the offered load by `factor` by dividing all inter-arrival gaps:
/// `factor > 1` compresses arrivals (more load), `factor < 1` stretches
/// them. Job shapes (runtime, estimate, width) are untouched.
pub fn scale_load(trace: &JobTrace, factor: f64) -> Result<JobTrace, TraceError> {
    assert!(factor > 0.0, "load factor must be positive");
    let t0 = trace.jobs.first().map(|j| j.submit).unwrap_or(0.0);
    let jobs = trace
        .jobs
        .iter()
        .map(|j| Job {
            submit: t0 + (j.submit - t0) / factor,
            ..*j
        })
        .collect();
    JobTrace::new(format!("{}-x{factor}", trace.name), trace.procs, jobs)
}

/// Keep only jobs satisfying `keep`, renumbering nothing (ids are stable).
pub fn filter_jobs(trace: &JobTrace, keep: impl Fn(&Job) -> bool) -> Result<JobTrace, TraceError> {
    let jobs = trace.jobs.iter().filter(|j| keep(j)).copied().collect();
    JobTrace::new(format!("{}-filtered", trace.name), trace.procs, jobs)
}

/// Interleave two traces onto one machine (the larger of the two sizes),
/// offsetting the second trace's ids to keep them unique.
pub fn merge(a: &JobTrace, b: &JobTrace) -> Result<JobTrace, TraceError> {
    let id_offset = a.jobs.iter().map(|j| j.id).max().unwrap_or(0) + 1;
    let mut jobs = a.jobs.clone();
    jobs.extend(b.jobs.iter().map(|j| Job {
        id: j.id + id_offset,
        ..*j
    }));
    JobTrace::new(format!("{}+{}", a.name, b.name), a.procs.max(b.procs), jobs)
}

/// Truncate a trace to its first `n` jobs.
pub fn head(trace: &JobTrace, n: usize) -> JobTrace {
    JobTrace {
        name: trace.name.clone(),
        procs: trace.procs,
        jobs: trace.jobs.iter().take(n).copied().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> JobTrace {
        let jobs = (0..10u64)
            .map(|i| {
                Job::new(
                    i + 1,
                    100.0 + i as f64 * 50.0,
                    30.0,
                    60.0,
                    1 + (i % 4) as u32,
                )
            })
            .collect();
        JobTrace::new("base", 8, jobs).unwrap()
    }

    #[test]
    fn scale_load_compresses_intervals() {
        let t = trace();
        let dense = scale_load(&t, 2.0).unwrap();
        let s0 = t.stats();
        let s1 = dense.stats();
        assert!((s1.mean_interval - s0.mean_interval / 2.0).abs() < 1e-9);
        assert!((s1.offered_load - s0.offered_load * 2.0).abs() < 1e-9);
        // First arrival anchored; job shapes untouched.
        assert_eq!(dense.jobs[0].submit, t.jobs[0].submit);
        assert_eq!(dense.jobs[3].runtime, t.jobs[3].runtime);
    }

    #[test]
    fn scale_load_below_one_stretches() {
        let t = trace();
        let sparse = scale_load(&t, 0.5).unwrap();
        assert!((sparse.stats().mean_interval - t.stats().mean_interval * 2.0).abs() < 1e-9);
    }

    #[test]
    fn filter_keeps_matching_jobs() {
        let t = trace();
        let wide = filter_jobs(&t, |j| j.procs >= 3).unwrap();
        assert!(wide.jobs.iter().all(|j| j.procs >= 3));
        assert!(wide.len() < t.len());
        assert!(!wide.is_empty());
    }

    #[test]
    fn merge_preserves_all_jobs_with_unique_ids() {
        let a = trace();
        let b = trace();
        let m = merge(&a, &b).unwrap();
        assert_eq!(m.len(), a.len() + b.len());
        let mut ids: Vec<u64> = m.jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), m.len(), "ids must stay unique after merging");
    }

    #[test]
    fn head_truncates() {
        let t = trace();
        assert_eq!(head(&t, 3).len(), 3);
        assert_eq!(head(&t, 100).len(), 10);
    }
}
