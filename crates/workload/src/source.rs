//! The unified trace-ingestion surface.
//!
//! Historically the simulator, trainer, and experiment binaries each had
//! their own way of obtaining jobs: a name-dispatch helper for the
//! calibrated synthetic archives, ad-hoc `swf::SwfTrace::read_file` +
//! `JobTrace::from_swf` plumbing for on-disk logs, and scenario-shaped
//! generation nowhere at all. [`TraceSource`] collapses those into one
//! trait every consumer speaks:
//!
//! * [`SyntheticSource`] — a calibrated Table 2 profile (or the Lublin
//!   model) at a given job count and seed;
//! * [`SwfFileSource`] — an SWF archive file on disk;
//! * [`MemorySource`] — an already-materialized [`JobTrace`] (used by the
//!   scenario compiler and by tests).
//!
//! Loading is deterministic for deterministic sources: the same source
//! value always yields the same trace. [`TraceSource::id`] returns a
//! stable human-readable identity string suitable for logs and salting.

use std::path::PathBuf;

use crate::trace::{JobTrace, TraceError};

/// Anything that can produce a [`JobTrace`].
///
/// Implementations must be deterministic: two calls to [`load`] on the
/// same value return equal traces (file-backed sources are deterministic
/// modulo the file itself changing).
///
/// [`load`]: TraceSource::load
pub trait TraceSource {
    /// Stable, human-readable identity (e.g. `"synthetic:SDSC-SP2:10000:1"`).
    fn id(&self) -> String;

    /// Materialize the trace.
    fn load(&self) -> Result<JobTrace, SourceError>;
}

/// Errors loading a trace from a [`TraceSource`].
#[derive(Debug)]
pub enum SourceError {
    /// The named calibration profile does not exist.
    UnknownProfile(String),
    /// Reading the backing file failed.
    Io(std::io::Error),
    /// The SWF document failed to parse.
    Swf(swf::SwfError),
    /// The records did not form a valid trace.
    Trace(TraceError),
    /// Any other source-specific failure (e.g. scenario compilation).
    Other(String),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::UnknownProfile(name) => write!(f, "unknown trace profile {name:?}"),
            SourceError::Io(e) => write!(f, "cannot read trace: {e}"),
            SourceError::Swf(e) => write!(f, "cannot parse SWF: {e}"),
            SourceError::Trace(e) => write!(f, "invalid trace: {e}"),
            SourceError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SourceError::Io(e) => Some(e),
            SourceError::Swf(e) => Some(e),
            SourceError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for SourceError {
    fn from(e: TraceError) -> Self {
        SourceError::Trace(e)
    }
}

/// A calibrated synthetic trace: a Table 2 profile name (or `"Lublin"`),
/// a job count, and a seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticSource {
    /// Profile name (`SDSC-SP2`, `CTC-SP2`, `HPC2N`, `Lublin`).
    pub profile: String,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Generation seed.
    pub seed: u64,
}

impl SyntheticSource {
    /// Source for the named profile.
    pub fn new(profile: impl Into<String>, jobs: usize, seed: u64) -> Self {
        SyntheticSource {
            profile: profile.into(),
            jobs,
            seed,
        }
    }
}

impl TraceSource for SyntheticSource {
    fn id(&self) -> String {
        format!("synthetic:{}:{}:{}", self.profile, self.jobs, self.seed)
    }

    fn load(&self) -> Result<JobTrace, SourceError> {
        let profile = crate::profiles::profile_by_name(&self.profile)
            .ok_or_else(|| SourceError::UnknownProfile(self.profile.clone()))?;
        Ok(if profile.name == "Lublin" {
            crate::lublin::generate(self.jobs, self.seed)
        } else {
            crate::synthetic::generate(profile, self.jobs, self.seed)
        })
    }
}

/// An SWF archive file on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfFileSource {
    /// Path to the `.swf` file.
    pub path: PathBuf,
    /// Trace name; defaults to the file stem.
    pub name: Option<String>,
}

impl SwfFileSource {
    /// Source for the file at `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        SwfFileSource {
            path: path.into(),
            name: None,
        }
    }

    fn trace_name(&self) -> String {
        self.name.clone().unwrap_or_else(|| {
            self.path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "swf".to_string())
        })
    }
}

impl TraceSource for SwfFileSource {
    fn id(&self) -> String {
        format!("swf:{}", self.path.display())
    }

    fn load(&self) -> Result<JobTrace, SourceError> {
        let swf = swf::SwfTrace::read_file(&self.path).map_err(|e| match e {
            swf::SwfError::Io { .. } => SourceError::Io(std::io::Error::other(format!(
                "{}: {e}",
                self.path.display()
            ))),
            other => SourceError::Swf(other),
        })?;
        Ok(JobTrace::from_swf(self.trace_name(), &swf)?)
    }
}

/// An already-materialized trace (scenario-compiled traces, tests).
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySource {
    /// Identity tag reported by [`TraceSource::id`].
    pub tag: String,
    trace: JobTrace,
}

impl MemorySource {
    /// Wrap a trace; `tag` should describe where it came from
    /// (e.g. `"scenario:flash-crowd:7"`).
    pub fn new(tag: impl Into<String>, trace: JobTrace) -> Self {
        MemorySource {
            tag: tag.into(),
            trace,
        }
    }
}

impl TraceSource for MemorySource {
    fn id(&self) -> String {
        self.tag.clone()
    }

    fn load(&self) -> Result<JobTrace, SourceError> {
        Ok(self.trace.clone())
    }
}

/// Blanket impl so `&S` and boxed sources are sources too.
impl<S: TraceSource + ?Sized> TraceSource for &S {
    fn id(&self) -> String {
        (**self).id()
    }

    fn load(&self) -> Result<JobTrace, SourceError> {
        (**self).load()
    }
}

impl TraceSource for Box<dyn TraceSource> {
    fn id(&self) -> String {
        (**self).id()
    }

    fn load(&self) -> Result<JobTrace, SourceError> {
        (**self).load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_source_matches_the_direct_generators() {
        let src = SyntheticSource::new("HPC2N", 300, 9);
        let a = src.load().unwrap();
        let b = crate::synthetic::generate(&crate::profiles::HPC2N, 300, 9);
        assert_eq!(a, b, "source must reproduce the calibrated generator");
        assert_eq!(src.id(), "synthetic:HPC2N:300:9");
        // The Lublin name routes to the Lublin–Feitelson model instead.
        let lublin = SyntheticSource::new("Lublin", 200, 1).load().unwrap();
        assert_eq!(lublin, crate::lublin::generate(200, 1));
        assert_eq!(lublin.procs, 256);
    }

    #[test]
    fn synthetic_source_rejects_unknown_profile() {
        let err = SyntheticSource::new("nope", 10, 1).load().unwrap_err();
        assert!(matches!(err, SourceError::UnknownProfile(_)));
    }

    #[test]
    fn swf_file_source_roundtrips() {
        let trace = SyntheticSource::new("SDSC-SP2", 50, 3).load().unwrap();
        let dir = std::env::temp_dir().join("schedinspector-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.swf");
        trace.to_swf().write_file(&path).unwrap();
        let src = SwfFileSource::new(&path);
        let back = src.load().unwrap();
        assert_eq!(back.procs, trace.procs);
        assert_eq!(back.len(), trace.len());
        assert_eq!(back.name, "roundtrip");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn swf_file_source_missing_file_is_io() {
        let err = SwfFileSource::new("/nonexistent/trace.swf")
            .load()
            .unwrap_err();
        assert!(matches!(err, SourceError::Io(_)), "{err}");
    }

    #[test]
    fn memory_source_returns_trace() {
        let trace = SyntheticSource::new("SDSC-SP2", 20, 1).load().unwrap();
        let src = MemorySource::new("test:mem", trace.clone());
        assert_eq!(src.load().unwrap(), trace);
        assert_eq!(src.id(), "test:mem");
        // And through a trait object.
        let boxed: Box<dyn TraceSource> = Box::new(src);
        assert_eq!(boxed.load().unwrap(), trace);
    }
}
