//! Workload substrate for the SchedInspector reproduction.
//!
//! Provides the simulation job model, job traces with Table 2 statistics,
//! train/test splitting and sequence sampling, from-scratch statistical
//! distributions, the Lublin–Feitelson synthetic workload model, and
//! calibrated synthetic replacements for the Parallel Workloads Archive
//! traces the paper evaluates (SDSC-SP2, CTC-SP2, HPC2N).
//!
//! # Quick start
//!
//! ```
//! use workload::{profiles, synthetic};
//!
//! // A 1000-job synthetic SDSC-SP2 trace calibrated to the paper's Table 2.
//! let trace = synthetic::generate(&profiles::SDSC_SP2, 1000, 42);
//! let stats = trace.stats();
//! assert_eq!(stats.cluster_size, 128);
//! let (train, test) = trace.split(0.2);
//! assert!(train.len() < test.len());
//! ```

pub mod distributions;
pub mod job;
pub mod lublin;
pub mod profiles;
pub mod sampling;
pub mod source;
pub mod stats;
pub mod synthetic;
pub mod tools;
mod trace;

pub use job::Job;
pub use profiles::TraceProfile;
pub use sampling::SequenceSampler;
pub use source::{MemorySource, SourceError, SwfFileSource, SyntheticSource, TraceSource};
pub use stats::TraceStats;
pub use trace::{JobTrace, TraceError};
