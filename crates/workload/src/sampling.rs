//! Random sampling of job sequences from a trace.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::job::Job;
use crate::trace::JobTrace;

/// Draws random fixed-length job sequences from a trace, the paper's unit of
/// training (128 sequential jobs from a random start index) and testing
/// (50 random sequences of 256 jobs).
#[derive(Debug)]
pub struct SequenceSampler {
    trace: JobTrace,
    len: usize,
    rng: StdRng,
}

impl SequenceSampler {
    /// Create a sampler yielding sequences of `len` jobs, seeded for
    /// reproducibility.
    pub fn new(trace: JobTrace, len: usize, seed: u64) -> Self {
        assert!(len > 0, "sequence length must be positive");
        SequenceSampler {
            trace,
            len,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &JobTrace {
        &self.trace
    }

    /// Sample one sequence (submit times rebased to zero). Returns the start
    /// index along with the jobs. If the trace is shorter than the sequence
    /// length, the whole trace is returned.
    pub fn sample(&mut self) -> (usize, Vec<Job>) {
        let n = self.trace.len();
        if n <= self.len {
            return (0, self.trace.sequence(0, n));
        }
        let start = self.rng.random_range(0..=(n - self.len));
        (start, self.trace.sequence(start, self.len))
    }

    /// Sample `count` sequences.
    pub fn sample_many(&mut self, count: usize) -> Vec<(usize, Vec<Job>)> {
        (0..count).map(|_| self.sample()).collect()
    }

    /// Deterministic evenly-spaced sequence starts covering the trace —
    /// useful for exhaustive evaluation passes.
    pub fn grid(&self, count: usize) -> Vec<usize> {
        let n = self.trace.len();
        if n <= self.len || count == 0 {
            return vec![0];
        }
        let max_start = n - self.len;
        if count == 1 {
            return vec![max_start / 2];
        }
        (0..count).map(|i| i * max_start / (count - 1)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(n: usize) -> JobTrace {
        let jobs = (0..n)
            .map(|i| Job::new(i as u64 + 1, i as f64 * 10.0, 5.0, 5.0, 1))
            .collect();
        JobTrace::new("t", 4, jobs).unwrap()
    }

    #[test]
    fn sample_has_requested_length() {
        let mut s = SequenceSampler::new(trace(100), 16, 7);
        for _ in 0..20 {
            let (_, seq) = s.sample();
            assert_eq!(seq.len(), 16);
            assert_eq!(seq[0].submit, 0.0);
        }
    }

    #[test]
    fn short_trace_returns_everything() {
        let mut s = SequenceSampler::new(trace(5), 16, 7);
        let (start, seq) = s.sample();
        assert_eq!(start, 0);
        assert_eq!(seq.len(), 5);
    }

    #[test]
    fn same_seed_same_sequences() {
        let a: Vec<usize> = SequenceSampler::new(trace(200), 16, 42)
            .sample_many(10)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let b: Vec<usize> = SequenceSampler::new(trace(200), 16, 42)
            .sample_many(10)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn grid_covers_trace() {
        let s = SequenceSampler::new(trace(100), 20, 1);
        let g = s.grid(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], 0);
        assert_eq!(*g.last().unwrap(), 80);
    }
}
