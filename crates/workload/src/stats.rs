//! Trace summary statistics — the columns of the paper's Table 2.

use serde::{Deserialize, Serialize};

use crate::trace::JobTrace;

/// Summary statistics of a job trace.
///
/// `cluster_size`, `mean_interval`, `mean_estimate`, and `mean_procs` are
/// exactly the four columns the paper reports in Table 2 to argue trace
/// diversity; the remaining fields support calibration and analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of jobs.
    pub n_jobs: usize,
    /// Machine processors (Table 2 "cluster size").
    pub cluster_size: u32,
    /// Mean inter-arrival interval in seconds (Table 2 "interval").
    pub mean_interval: f64,
    /// Mean estimated runtime in seconds (Table 2 "est_j").
    pub mean_estimate: f64,
    /// Mean requested processors (Table 2 "res_j").
    pub mean_procs: f64,
    /// Mean actual runtime in seconds.
    pub mean_runtime: f64,
    /// Maximum estimated runtime.
    pub max_estimate: f64,
    /// Maximum requested processors.
    pub max_procs: u32,
    /// Trace span (last submit − first submit) in seconds.
    pub span: f64,
    /// Offered load: Σ runtime·procs / (span · cluster).
    pub offered_load: f64,
}

impl TraceStats {
    /// Compute statistics for a trace. An empty trace yields zeros.
    pub fn of(trace: &JobTrace) -> TraceStats {
        let n = trace.jobs.len();
        if n == 0 {
            return TraceStats {
                n_jobs: 0,
                cluster_size: trace.procs,
                mean_interval: 0.0,
                mean_estimate: 0.0,
                mean_procs: 0.0,
                mean_runtime: 0.0,
                max_estimate: 0.0,
                max_procs: 0,
                span: 0.0,
                offered_load: 0.0,
            };
        }
        let first = trace.jobs.first().unwrap().submit;
        let last = trace.jobs.last().unwrap().submit;
        let span = last - first;
        let sum_est: f64 = trace.jobs.iter().map(|j| j.estimate).sum();
        let sum_run: f64 = trace.jobs.iter().map(|j| j.runtime).sum();
        let sum_procs: f64 = trace.jobs.iter().map(|j| j.procs as f64).sum();
        let work: f64 = trace.jobs.iter().map(|j| j.runtime * j.procs as f64).sum();
        TraceStats {
            n_jobs: n,
            cluster_size: trace.procs,
            mean_interval: if n > 1 { span / (n - 1) as f64 } else { 0.0 },
            mean_estimate: sum_est / n as f64,
            mean_procs: sum_procs / n as f64,
            mean_runtime: sum_run / n as f64,
            max_estimate: trace.jobs.iter().map(|j| j.estimate).fold(0.0, f64::max),
            max_procs: trace.jobs.iter().map(|j| j.procs).max().unwrap_or(0),
            span,
            offered_load: if span > 0.0 {
                work / (span * trace.procs as f64)
            } else {
                0.0
            },
        }
    }

    /// Render one Table 2 row: `name  cluster  interval  est  res`.
    pub fn table2_row(&self, name: &str) -> String {
        format!(
            "{name:<10} {:>6} {:>10.0} {:>10.0} {:>7.1}",
            self.cluster_size, self.mean_interval, self.mean_estimate, self.mean_procs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    #[test]
    fn stats_of_simple_trace() {
        let jobs = vec![
            Job::new(1, 0.0, 100.0, 200.0, 2),
            Job::new(2, 100.0, 300.0, 400.0, 4),
            Job::new(3, 200.0, 500.0, 600.0, 6),
        ];
        let t = JobTrace::new("t", 8, jobs).unwrap();
        let s = t.stats();
        assert_eq!(s.n_jobs, 3);
        assert_eq!(s.cluster_size, 8);
        assert_eq!(s.mean_interval, 100.0);
        assert_eq!(s.mean_estimate, 400.0);
        assert_eq!(s.mean_procs, 4.0);
        assert_eq!(s.mean_runtime, 300.0);
        assert_eq!(s.max_procs, 6);
        assert_eq!(s.span, 200.0);
        // work = 100*2 + 300*4 + 500*6 = 4400; span*cluster = 1600.
        assert!((s.offered_load - 4400.0 / 1600.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_zeroed() {
        let t = JobTrace::new("e", 8, vec![]).unwrap();
        let s = t.stats();
        assert_eq!(s.n_jobs, 0);
        assert_eq!(s.mean_interval, 0.0);
    }

    #[test]
    fn single_job_has_zero_interval() {
        let t = JobTrace::new("one", 8, vec![Job::new(1, 5.0, 10.0, 10.0, 1)]).unwrap();
        assert_eq!(t.stats().mean_interval, 0.0);
        assert_eq!(t.stats().span, 0.0);
    }
}
