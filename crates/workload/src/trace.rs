//! Job traces: ordered job collections bound to a machine size.

use serde::{Deserialize, Serialize};
use swf::{SwfHeader, SwfRecord, SwfTrace};

use crate::job::Job;
use crate::stats::TraceStats;

/// A job trace: the machine's processor count plus jobs sorted by submit
/// time. This is the unit the simulator, trainer, and evaluator consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTrace {
    /// Human-readable trace name (e.g. `"SDSC-SP2"`).
    pub name: String,
    /// Total processors of the simulated cluster.
    pub procs: u32,
    /// Jobs sorted by non-decreasing submit time.
    pub jobs: Vec<Job>,
}

impl JobTrace {
    /// Build a trace, sorting jobs by submit time and validating that every
    /// job fits the machine.
    pub fn new(
        name: impl Into<String>,
        procs: u32,
        mut jobs: Vec<Job>,
    ) -> Result<Self, TraceError> {
        if procs == 0 {
            return Err(TraceError::EmptyMachine);
        }
        for j in &jobs {
            if j.procs == 0 || j.procs > procs {
                return Err(TraceError::JobTooLarge {
                    job: j.id,
                    procs: j.procs,
                    machine: procs,
                });
            }
            let positive = |x: f64| x.is_finite() && x > 0.0;
            if !positive(j.runtime) || !positive(j.estimate) {
                return Err(TraceError::NonPositiveTime { job: j.id });
            }
        }
        jobs.sort_by(|a, b| a.submit.total_cmp(&b.submit).then(a.id.cmp(&b.id)));
        Ok(JobTrace {
            name: name.into(),
            procs,
            jobs,
        })
    }

    /// Load from a parsed SWF trace. Oversized and unsimulatable records are
    /// dropped (matching common practice for archive logs, which contain
    /// failed submissions).
    pub fn from_swf(name: impl Into<String>, swf: &SwfTrace) -> Result<Self, TraceError> {
        let procs = swf.machine_procs().ok_or(TraceError::UnknownMachineSize)?;
        let jobs: Vec<Job> = swf
            .records
            .iter()
            .filter_map(Job::from_swf)
            .filter(|j| j.procs <= procs)
            .collect();
        Self::new(name, procs, jobs)
    }

    /// Serialize to an SWF document (with `MaxProcs` header).
    pub fn to_swf(&self) -> SwfTrace {
        let mut header = SwfHeader::default();
        header.absorb_comment(&format!(" Computer: synthetic {}", self.name));
        header.absorb_comment(&format!(" MaxProcs: {}", self.procs));
        header.absorb_comment(&format!(" MaxJobs: {}", self.jobs.len()));
        let records: Vec<SwfRecord> = self.jobs.iter().map(Job::to_swf).collect();
        SwfTrace { header, records }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Summary statistics (the Table 2 columns).
    pub fn stats(&self) -> TraceStats {
        TraceStats::of(self)
    }

    /// Extract `len` consecutive jobs starting at index `start`, with submit
    /// times rebased so the first job arrives at t = 0. This is the paper's
    /// "job sequence" unit (128 jobs for training, 256 for testing).
    pub fn sequence(&self, start: usize, len: usize) -> Vec<Job> {
        let start = start.min(self.jobs.len());
        let end = (start + len).min(self.jobs.len());
        let slice = &self.jobs[start..end];
        let Some(first) = slice.first() else {
            return Vec::new();
        };
        let t0 = first.submit;
        slice
            .iter()
            .map(|j| Job {
                submit: j.submit - t0,
                ..*j
            })
            .collect()
    }

    /// Split into train/test sub-traces: the first `train_frac` of the jobs
    /// train, the rest test (§4.4: first 20% train, remaining 80% test).
    pub fn split(&self, train_frac: f64) -> (JobTrace, JobTrace) {
        let cut = ((self.jobs.len() as f64) * train_frac).round() as usize;
        let cut = cut.min(self.jobs.len());
        let mk = |part: &str, jobs: &[Job]| JobTrace {
            name: format!("{}-{part}", self.name),
            procs: self.procs,
            jobs: jobs.to_vec(),
        };
        (
            mk("train", &self.jobs[..cut]),
            mk("test", &self.jobs[cut..]),
        )
    }
}

/// Errors constructing a [`JobTrace`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// Machine processor count was zero.
    EmptyMachine,
    /// The SWF header did not declare `MaxProcs`/`MaxNodes`.
    UnknownMachineSize,
    /// A job requests more processors than the machine has.
    JobTooLarge {
        /// Offending job id.
        job: u64,
        /// Processors requested.
        procs: u32,
        /// Machine size.
        machine: u32,
    },
    /// A job has a non-positive runtime or estimate.
    NonPositiveTime {
        /// Offending job id.
        job: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::EmptyMachine => write!(f, "machine has zero processors"),
            TraceError::UnknownMachineSize => write!(f, "SWF header lacks MaxProcs/MaxNodes"),
            TraceError::JobTooLarge {
                job,
                procs,
                machine,
            } => {
                write!(
                    f,
                    "job {job} requests {procs} procs but machine has {machine}"
                )
            }
            TraceError::NonPositiveTime { job } => {
                write!(f, "job {job} has non-positive runtime/estimate")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs3() -> Vec<Job> {
        vec![
            Job::new(2, 50.0, 10.0, 20.0, 2),
            Job::new(1, 0.0, 10.0, 20.0, 2),
            Job::new(3, 100.0, 10.0, 20.0, 2),
        ]
    }

    #[test]
    fn new_sorts_by_submit() {
        let t = JobTrace::new("t", 4, jobs3()).unwrap();
        let ids: Vec<u64> = t.jobs.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn rejects_oversized_job() {
        let jobs = vec![Job::new(1, 0.0, 10.0, 10.0, 8)];
        let err = JobTrace::new("t", 4, jobs).unwrap_err();
        assert!(matches!(err, TraceError::JobTooLarge { job: 1, .. }));
    }

    #[test]
    fn rejects_zero_runtime() {
        let jobs = vec![Job::new(1, 0.0, 0.0, 10.0, 1)];
        assert!(matches!(
            JobTrace::new("t", 4, jobs).unwrap_err(),
            TraceError::NonPositiveTime { job: 1 }
        ));
    }

    #[test]
    fn sequence_rebases_submit() {
        let t = JobTrace::new("t", 4, jobs3()).unwrap();
        let seq = t.sequence(1, 2);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0].submit, 0.0);
        assert_eq!(seq[1].submit, 50.0);
    }

    #[test]
    fn sequence_clamps_to_len() {
        let t = JobTrace::new("t", 4, jobs3()).unwrap();
        assert_eq!(t.sequence(2, 10).len(), 1);
        assert!(t.sequence(5, 10).is_empty());
    }

    #[test]
    fn split_respects_fraction() {
        let t = JobTrace::new("t", 4, jobs3()).unwrap();
        let (train, test) = t.split(0.34);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 2);
        assert_eq!(train.procs, 4);
        assert!(train.name.ends_with("-train"));
    }

    #[test]
    fn swf_roundtrip_via_trace() {
        let t = JobTrace::new("rt", 16, jobs3()).unwrap();
        let swf = t.to_swf();
        let back = JobTrace::from_swf("rt", &swf).unwrap();
        assert_eq!(t.jobs, back.jobs);
        assert_eq!(t.procs, back.procs);
    }
}
