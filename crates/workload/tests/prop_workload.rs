//! Property tests on the workload substrate: distribution sanity, trace
//! construction invariants, sampling bounds, and generator validity.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::distributions::{Exponential, Gamma, LogNormal, Sample, Weibull, Zipf};
use workload::{Job, JobTrace, SequenceSampler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Positive-support distributions never emit negatives or NaNs.
    #[test]
    fn samplers_stay_positive(seed in any::<u64>(), mean in 0.1f64..1e5, shape in 0.1f64..20.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        macro_rules! check {
            ($d:expr) => {
                for _ in 0..50 {
                    let x = $d.sample(&mut rng);
                    prop_assert!(x.is_finite() && x >= 0.0, "bad sample {}", x);
                }
            };
        }
        check!(Exponential::with_mean(mean));
        check!(Gamma::with_mean(mean, shape));
        check!(LogNormal::with_mean(mean, 1.0));
        check!(Weibull { k: shape.min(5.0), lambda: mean });
    }

    /// Zipf ranks are always in range and deterministic per seed.
    #[test]
    fn zipf_in_range(n in 1usize..200, s in 0.0f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let ra = z.sample(&mut a);
            prop_assert!(ra < n);
            prop_assert_eq!(ra, z.sample(&mut b));
        }
    }

    /// JobTrace::new sorts and validates arbitrary job soups.
    #[test]
    fn trace_construction_sorts(
        specs in prop::collection::vec((0.0f64..1e6, 1.0f64..1e4, 1u32..32), 1..50),
    ) {
        let jobs: Vec<Job> = specs
            .iter()
            .enumerate()
            .map(|(i, (submit, rt, procs))| Job::new(i as u64, *submit, *rt, rt * 2.0, *procs))
            .collect();
        let trace = JobTrace::new("p", 32, jobs).unwrap();
        for w in trace.jobs.windows(2) {
            prop_assert!(w[0].submit <= w[1].submit);
        }
        let stats = trace.stats();
        prop_assert!(stats.mean_interval >= 0.0);
        prop_assert!(stats.max_procs <= 32);
    }

    /// Sequence sampling always rebases to zero and respects bounds.
    #[test]
    fn sampling_bounds(n in 2usize..300, len in 1usize..64, seed in any::<u64>()) {
        let jobs: Vec<Job> =
            (0..n).map(|i| Job::new(i as u64, i as f64 * 7.0, 10.0, 20.0, 1)).collect();
        let trace = JobTrace::new("s", 4, jobs).unwrap();
        let mut sampler = SequenceSampler::new(trace, len, seed);
        for _ in 0..10 {
            let (start, seq) = sampler.sample();
            prop_assert!(start + seq.len() <= n);
            prop_assert_eq!(seq.len(), len.min(n));
            if let Some(first) = seq.first() {
                prop_assert_eq!(first.submit, 0.0);
            }
        }
    }

    /// Generated paper traces are always simulator-valid.
    #[test]
    fn generators_produce_valid_traces(seed in any::<u64>(), idx in 0usize..4) {
        let name = ["SDSC-SP2", "CTC-SP2", "HPC2N", "Lublin"][idx];
        let t = workload::TraceSource::load(&workload::SyntheticSource::new(name, 300, seed)).unwrap();
        prop_assert_eq!(t.len(), 300);
        for j in &t.jobs {
            prop_assert!(j.procs >= 1 && j.procs <= t.procs);
            prop_assert!(j.runtime > 0.0);
            prop_assert!(j.estimate >= j.runtime);
        }
    }
}
