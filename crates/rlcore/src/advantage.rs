//! Returns and advantage estimation for sparse terminal rewards.
//!
//! With intermediate rewards fixed at 0 and no discounting, every step's
//! return equals the trajectory's terminal reward; the critic provides the
//! baseline, and advantages are normalized per batch to stabilize PPO.

use crate::trajectory::Batch;
use crate::value::ValueNet;

/// Flattened training arrays computed from a batch.
#[derive(Debug, Clone, Default)]
pub struct Advantages {
    /// Per-step return (the trajectory's terminal reward).
    pub returns: Vec<f32>,
    /// Per-step normalized advantage.
    pub advantages: Vec<f32>,
}

/// Compute returns and normalized advantages for every step in the batch,
/// in trajectory-then-step order (matching a flattened iteration).
pub fn compute(batch: &Batch, critic: &ValueNet) -> Advantages {
    let mut returns = Vec::with_capacity(batch.total_steps());
    let mut advantages = Vec::with_capacity(batch.total_steps());
    for t in &batch.trajectories {
        for s in &t.steps {
            returns.push(t.reward);
            advantages.push(t.reward - critic.value(&s.state));
        }
    }
    normalize(&mut advantages);
    Advantages {
        returns,
        advantages,
    }
}

/// In-place mean/std normalization (no-op on empty or constant input).
pub fn normalize(xs: &mut [f32]) {
    let n = xs.len();
    if n == 0 {
        return;
    }
    let mean = xs.iter().sum::<f32>() / n as f32;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
    let std = var.sqrt();
    if std < 1e-8 {
        for x in xs.iter_mut() {
            *x -= mean;
        }
        return;
    }
    for x in xs.iter_mut() {
        *x = (*x - mean) / std;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::{Step, Trajectory};

    fn step(v: f32) -> Step {
        Step {
            state: vec![v],
            action: 0,
            logp: -0.7,
        }
    }

    #[test]
    fn returns_equal_terminal_reward() {
        let batch = Batch {
            trajectories: vec![
                Trajectory {
                    steps: vec![step(0.0), step(1.0)],
                    reward: 5.0,
                },
                Trajectory {
                    steps: vec![step(2.0)],
                    reward: -1.0,
                },
            ],
        };
        let critic = ValueNet::new(1, 0);
        let adv = compute(&batch, &critic);
        assert_eq!(adv.returns, vec![5.0, 5.0, -1.0]);
        assert_eq!(adv.advantages.len(), 3);
    }

    #[test]
    fn normalize_zero_mean_unit_std() {
        let mut xs = vec![1.0f32, 2.0, 3.0, 4.0];
        normalize(&mut xs);
        let mean: f32 = xs.iter().sum::<f32>() / 4.0;
        let var: f32 = xs.iter().map(|x| x * x).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-5);
    }

    #[test]
    fn normalize_handles_degenerate_inputs() {
        let mut empty: Vec<f32> = vec![];
        normalize(&mut empty);
        let mut constant = vec![3.0f32; 5];
        normalize(&mut constant);
        assert!(constant.iter().all(|&x| x == 0.0));
    }
}
