//! The critic: a state-value network with the same architecture as the
//! policy (§3.1: "These two networks use the same architecture and take the
//! same inputs, but output different values").

use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tinynn::{Activation, Mlp, Tape};

/// State-value estimator `V(s)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueNet {
    net: Mlp,
}

impl ValueNet {
    /// Paper architecture (hidden 32/16/8, scalar output).
    pub fn new(input_dim: usize, seed: u64) -> Self {
        Self::with_hidden(input_dim, &[32, 16, 8], seed)
    }

    /// Custom hidden sizes.
    pub fn with_hidden(input_dim: usize, hidden: &[usize], seed: u64) -> Self {
        let mut sizes = Vec::with_capacity(hidden.len() + 2);
        sizes.push(input_dim);
        sizes.extend_from_slice(hidden);
        sizes.push(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        ValueNet {
            net: Mlp::new(&sizes, Activation::Tanh, Activation::Identity, &mut rng),
        }
    }

    /// Estimated value of `state`.
    pub fn value(&self, state: &[f32]) -> f32 {
        self.net.forward(state)[0]
    }

    /// Total parameters.
    pub fn param_count(&self) -> usize {
        self.net.param_count()
    }

    /// The underlying network (checkpoint serialization).
    pub fn mlp(&self) -> &Mlp {
        &self.net
    }

    /// Rebuild a critic around an existing network; it must end in a
    /// single output unit.
    pub fn from_mlp(net: Mlp) -> Result<Self, String> {
        match net.layers().last() {
            Some(last) if last.fan_out == 1 => Ok(ValueNet { net }),
            Some(last) => Err(format!(
                "value network must output 1 value, got {}",
                last.fan_out
            )),
            None => Err("value network has no layers".to_string()),
        }
    }

    pub(crate) fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    pub(crate) fn forward_train<'t>(&self, state: &[f32], tape: &'t mut Tape) -> &'t [f32] {
        self.net.forward_train(state, tape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_a_scalar() {
        let v = ValueNet::new(7, 0);
        assert!(v.value(&[0.0; 7]).is_finite());
        // Same trunk as the policy but a 1-unit head: 938 - (8*2+2) + (8+1).
        assert_eq!(v.param_count(), 929);
    }
}
