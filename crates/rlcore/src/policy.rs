//! The stochastic binary policy (accept / reject) over a two-logit MLP.

use rand::{Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use tinynn::loss::{log_softmax, softmax};
use tinynn::{Activation, ForwardScratch, Mlp, Tape};

/// Action index for "accept the scheduling decision".
pub const ACCEPT: u8 = 0;
/// Action index for "reject the scheduling decision".
pub const REJECT: u8 = 1;

/// Reusable buffers for the allocation-free policy queries
/// ([`BinaryPolicy::sample_scratch`] / [`BinaryPolicy::greedy_scratch`]).
/// One per rollout worker; warm after the first query.
#[derive(Debug, Clone, Default)]
pub struct PolicyScratch {
    fwd: ForwardScratch,
}

/// Greedy action and its log-probability from raw `[accept, reject]`
/// logits — the exact computation [`BinaryPolicy::greedy_scratch`] performs
/// after its forward pass, exposed so batched inference paths that run the
/// network themselves (e.g. the serving engine's fused forward) produce
/// bit-identical decisions.
#[inline]
pub fn greedy_from_logits(l0: f32, l1: f32) -> (u8, f32) {
    let max = l0.max(l1);
    let lse = ((l0 - max).exp() + (l1 - max).exp()).ln() + max;
    let lp = [l0 - lse, l1 - lse];
    let action = if lp[REJECT as usize].exp() > 0.5 {
        REJECT
    } else {
        ACCEPT
    };
    (action, lp[action as usize])
}

/// A categorical policy over {accept, reject}, backed by an MLP emitting two
/// logits (the paper's policy network: hidden layers 32/16/8, §3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinaryPolicy {
    net: Mlp,
}

impl BinaryPolicy {
    /// Build the paper's architecture for `input_dim` features.
    pub fn new(input_dim: usize, seed: u64) -> Self {
        Self::with_hidden(input_dim, &[32, 16, 8], seed)
    }

    /// Build with custom hidden layer sizes.
    pub fn with_hidden(input_dim: usize, hidden: &[usize], seed: u64) -> Self {
        let mut sizes = Vec::with_capacity(hidden.len() + 2);
        sizes.push(input_dim);
        sizes.extend_from_slice(hidden);
        sizes.push(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        BinaryPolicy {
            net: Mlp::new(&sizes, Activation::Tanh, Activation::Identity, &mut rng),
        }
    }

    /// Wrap an existing two-logit network (e.g. a deserialized model).
    pub fn from_mlp(net: Mlp) -> Result<Self, String> {
        if net.output_dim() != 2 {
            return Err(format!(
                "binary policy needs 2 logits, network has {}",
                net.output_dim()
            ));
        }
        Ok(BinaryPolicy { net })
    }

    /// The underlying network (read-only; used by serialization).
    pub fn mlp(&self) -> &Mlp {
        &self.net
    }

    /// Expected feature-vector length.
    pub fn input_dim(&self) -> usize {
        self.net.input_dim()
    }

    /// Total parameters (938 for the paper's 7-feature configuration).
    pub fn param_count(&self) -> usize {
        self.net.param_count()
    }

    /// Raw logits `[accept, reject]`.
    pub fn logits(&self, state: &[f32]) -> Vec<f32> {
        self.net.forward(state)
    }

    /// Probability of rejecting in `state`.
    pub fn prob_reject(&self, state: &[f32]) -> f32 {
        softmax(&self.logits(state))[REJECT as usize]
    }

    /// Sample an action; returns `(action, log-prob)`.
    pub fn sample<R: Rng + ?Sized>(&self, state: &[f32], rng: &mut R) -> (u8, f32) {
        let lp = log_softmax(&self.logits(state));
        let p_reject = lp[REJECT as usize].exp();
        let action = if rng.random::<f32>() < p_reject {
            REJECT
        } else {
            ACCEPT
        };
        (action, lp[action as usize])
    }

    /// Greedy action (used at deployment/inference time).
    pub fn greedy(&self, state: &[f32]) -> u8 {
        if self.prob_reject(state) > 0.5 {
            REJECT
        } else {
            ACCEPT
        }
    }

    /// Log-probability of `action` in `state`.
    pub fn logp(&self, state: &[f32], action: u8) -> f32 {
        log_softmax(&self.logits(state))[action as usize]
    }

    /// Log-probabilities `[accept, reject]` without allocating: one scratch
    /// forward pass plus an inlined two-logit log-softmax (the same
    /// max-shifted computation as [`log_softmax`], term for term, so results
    /// are bit-identical to the allocating path).
    fn log_probs_scratch(&self, state: &[f32], scratch: &mut PolicyScratch) -> [f32; 2] {
        let logits = self.net.forward_scratch(state, &mut scratch.fwd);
        let (l0, l1) = (logits[0], logits[1]);
        let max = l0.max(l1);
        let lse = ((l0 - max).exp() + (l1 - max).exp()).ln() + max;
        [l0 - lse, l1 - lse]
    }

    /// Allocation-free [`BinaryPolicy::sample`]: same action and log-prob
    /// for the same rng state, no per-call heap traffic.
    pub fn sample_scratch<R: Rng + ?Sized>(
        &self,
        state: &[f32],
        rng: &mut R,
        scratch: &mut PolicyScratch,
    ) -> (u8, f32) {
        let lp = self.log_probs_scratch(state, scratch);
        let p_reject = lp[REJECT as usize].exp();
        let action = if rng.random::<f32>() < p_reject {
            REJECT
        } else {
            ACCEPT
        };
        (action, lp[action as usize])
    }

    /// Allocation-free greedy action plus its log-probability (one forward
    /// pass instead of the two that `greedy` + `logp` would make).
    pub fn greedy_scratch(&self, state: &[f32], scratch: &mut PolicyScratch) -> (u8, f32) {
        let logits = self.net.forward_scratch(state, &mut scratch.fwd);
        greedy_from_logits(logits[0], logits[1])
    }

    /// Mutable access for the PPO updater.
    pub(crate) fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Forward with tape, returning logits (for training).
    pub(crate) fn forward_train<'t>(&self, state: &[f32], tape: &'t mut Tape) -> &'t [f32] {
        self.net.forward_train(state, tape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn paper_architecture_parameter_count() {
        let p = BinaryPolicy::new(7, 0);
        assert_eq!(p.param_count(), 938);
        assert_eq!(p.input_dim(), 7);
    }

    #[test]
    fn probabilities_are_valid() {
        let p = BinaryPolicy::new(4, 1);
        let pr = p.prob_reject(&[0.1, 0.2, 0.3, 0.4]);
        assert!((0.0..=1.0).contains(&pr));
    }

    #[test]
    fn sampling_matches_probabilities() {
        let p = BinaryPolicy::new(3, 2);
        let state = [0.5f32, -0.5, 0.1];
        let pr = p.prob_reject(&state) as f64;
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let rejects = (0..n)
            .filter(|_| p.sample(&state, &mut rng).0 == REJECT)
            .count();
        let freq = rejects as f64 / n as f64;
        assert!((freq - pr).abs() < 0.02, "freq {freq} vs prob {pr}");
    }

    #[test]
    fn logp_is_log_of_sample_prob() {
        let p = BinaryPolicy::new(3, 4);
        let state = [0.2f32, 0.0, -0.3];
        let pr = p.prob_reject(&state);
        assert!((p.logp(&state, REJECT).exp() - pr).abs() < 1e-5);
        assert!((p.logp(&state, ACCEPT).exp() - (1.0 - pr)).abs() < 1e-5);
    }

    #[test]
    fn scratch_paths_match_allocating_paths() {
        let p = BinaryPolicy::new(5, 9);
        let mut scratch = PolicyScratch::default();
        for i in 0..20 {
            let t = i as f32 * 0.37;
            let state = [t.sin(), t.cos(), -t.sin() * 0.5, 0.1 * t, -0.8];
            // Same rng stream on both sides -> bit-identical samples.
            let mut rng_a = StdRng::seed_from_u64(i);
            let mut rng_b = StdRng::seed_from_u64(i);
            assert_eq!(
                p.sample(&state, &mut rng_a),
                p.sample_scratch(&state, &mut rng_b, &mut scratch)
            );
            let (greedy, logp) = p.greedy_scratch(&state, &mut scratch);
            assert_eq!(greedy, p.greedy(&state));
            assert_eq!(logp, p.logp(&state, greedy));
        }
    }

    #[test]
    fn greedy_thresholds_at_half() {
        let p = BinaryPolicy::new(2, 5);
        let s = [0.3f32, 0.9];
        let expect = if p.prob_reject(&s) > 0.5 {
            REJECT
        } else {
            ACCEPT
        };
        assert_eq!(p.greedy(&s), expect);
    }
}
