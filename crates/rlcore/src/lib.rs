//! `rlcore` — the reinforcement-learning substrate: trajectories with
//! sparse terminal rewards, a binary (accept/reject) categorical policy, a
//! value-network critic, PPO with a clipped surrogate objective, and
//! deterministic parallel rollout collection.
//!
//! The SchedInspector paper (§3.1, §4.1) trains a 3-hidden-layer MLP
//! actor–critic with PPO at lr 1e-3 over batches of 100 trajectories; this
//! crate provides exactly those pieces, built on [`tinynn`].
//!
//! ```
//! use rlcore::{BinaryPolicy, PpoConfig, PpoTrainer, Trajectory, Step, Batch};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut trainer = PpoTrainer::new(7, PpoConfig::default(), 42);
//! let mut rng = StdRng::seed_from_u64(0);
//! let state = vec![0.0f32; 7];
//! let (action, logp) = trainer.policy.sample(&state, &mut rng);
//! let batch = Batch { trajectories: vec![
//!     Trajectory { steps: vec![Step { state, action, logp }], reward: 1.0 },
//! ]};
//! let stats = trainer.update(&batch);
//! assert!(stats.pi_iters >= 1);
//! ```

mod advantage;
pub mod merge;
mod policy;
mod ppo;
mod rollout;
mod trajectory;
mod value;

pub use advantage::{compute as compute_advantages, normalize, Advantages};
pub use merge::{average_ppo, average_stats, MergeShard};
pub use policy::{greedy_from_logits, BinaryPolicy, PolicyScratch, ACCEPT, REJECT};
pub use ppo::{PpoConfig, PpoTrainer, UpdateStats};
pub use rollout::{default_workers, parallel_map};
pub use trajectory::{Batch, Step, Trajectory};
pub use value::ValueNet;
