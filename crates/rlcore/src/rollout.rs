//! Deterministic parallel rollout collection.
//!
//! PPO epochs need many independent episodes (the paper collects 100
//! trajectories per model update). Episodes are embarrassingly parallel:
//! each worker owns a private simulator and reads a shared immutable policy
//! snapshot. Workers claim indices from a shared atomic counter
//! (work-stealing), so uneven episode lengths — rejection-heavy episodes
//! simulate many more scheduling points — never leave a thread idle behind
//! a static chunk assignment. The output is index-ordered, so results are
//! identical regardless of worker count or claim interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f(0..n)` across `workers` threads and return results in index order.
///
/// `f` must be deterministic in its index (derive per-episode RNG seeds from
/// it) for run-to-run reproducibility.
pub fn parallel_map<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (f, next) = (&f, &next);
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        done.push((i, f(i)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("rollout worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("all indices claimed"))
        .collect()
}

/// A sensible default worker count: the machine's parallelism, capped so
/// small batches do not over-spawn.
pub fn default_workers(n_tasks: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    hw.clamp(1, n_tasks.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered() {
        let out = parallel_map(100, 7, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_path() {
        assert_eq!(parallel_map(5, 1, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_exceeding_tasks_is_fine() {
        assert_eq!(parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn matches_sequential_for_stateful_computation() {
        let seq: Vec<u64> = (0..50)
            .map(|i| (i as u64).wrapping_mul(0x9E3779B9))
            .collect();
        let par = parallel_map(50, 8, |i| (i as u64).wrapping_mul(0x9E3779B9));
        assert_eq!(seq, par);
    }

    #[test]
    fn uneven_task_durations_stay_index_ordered() {
        // Task cost varies by ~100×: with work-stealing every worker keeps
        // claiming until the counter drains, and ordering still holds.
        let busy = |i: usize| {
            let spins = if i.is_multiple_of(7) { 20_000 } else { 200 };
            (0..spins).fold(i as u64, |acc, k| {
                acc.wrapping_mul(31).wrapping_add(k as u64)
            })
        };
        let seq: Vec<u64> = (0..40).map(busy).collect();
        for workers in [2, 3, 8] {
            assert_eq!(parallel_map(40, workers, busy), seq);
        }
    }

    #[test]
    fn default_workers_bounded() {
        assert_eq!(default_workers(0), 1);
        assert!(default_workers(1000) >= 1);
        assert!(default_workers(2) <= 2);
    }
}
