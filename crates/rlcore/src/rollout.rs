//! Deterministic parallel rollout collection.
//!
//! PPO epochs need many independent episodes (the paper collects 100
//! trajectories per model update). Episodes are embarrassingly parallel:
//! each worker owns a private simulator and reads a shared immutable policy
//! snapshot. `crossbeam::scope` keeps lifetimes simple and the output is
//! index-ordered, so results are identical regardless of worker count.

/// Run `f(0..n)` across `workers` threads and return results in index order.
///
/// `f` must be deterministic in its index (derive per-episode RNG seeds from
/// it) for run-to-run reproducibility.
pub fn parallel_map<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    crossbeam::scope(|scope| {
        for (w, slice) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                for (off, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(f(w * chunk + off));
                }
            });
        }
    })
    .expect("rollout worker panicked");
    slots.into_iter().map(|s| s.expect("all slots filled")).collect()
}

/// A sensible default worker count: the machine's parallelism, capped so
/// small batches do not over-spawn.
pub fn default_workers(n_tasks: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    hw.clamp(1, n_tasks.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered() {
        let out = parallel_map(100, 7, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_path() {
        assert_eq!(parallel_map(5, 1, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_exceeding_tasks_is_fine() {
        assert_eq!(parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn matches_sequential_for_stateful_computation() {
        let seq: Vec<u64> = (0..50).map(|i| (i as u64).wrapping_mul(0x9E3779B9)).collect();
        let par = parallel_map(50, 8, |i| (i as u64).wrapping_mul(0x9E3779B9));
        assert_eq!(seq, par);
    }

    #[test]
    fn default_workers_bounded() {
        assert_eq!(default_workers(0), 1);
        assert!(default_workers(1000) >= 1);
        assert!(default_workers(2) <= 2);
    }
}
