//! Proximal Policy Optimization with a clipped surrogate objective
//! (Schulman et al., 2017), the paper's training algorithm (§4.1).

use obs::Telemetry;
use serde::{Deserialize, Serialize};
use tinynn::loss::{log_softmax, softmax};
use tinynn::{Adam, Tape};

use crate::advantage;
use crate::policy::BinaryPolicy;
use crate::trajectory::Batch;
use crate::value::ValueNet;

/// PPO hyper-parameters. Defaults follow the paper (§4.1: lr 1e-3) and
/// SpinningUp's PPO defaults for the rest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Clipping radius ε of the surrogate objective.
    pub clip: f32,
    /// Policy learning rate.
    pub pi_lr: f32,
    /// Value-function learning rate.
    pub vf_lr: f32,
    /// Gradient passes over the batch for the policy.
    pub train_pi_iters: usize,
    /// Gradient passes over the batch for the critic.
    pub train_vf_iters: usize,
    /// Early-stop policy passes once approximate KL exceeds 1.5× this.
    pub target_kl: f32,
    /// Entropy bonus coefficient (0 disables).
    pub ent_coef: f32,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            clip: 0.2,
            pi_lr: 1e-3,
            vf_lr: 1e-3,
            train_pi_iters: 10,
            train_vf_iters: 10,
            target_kl: 0.02,
            ent_coef: 0.003,
        }
    }
}

/// Diagnostics from one PPO update.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Final surrogate policy loss.
    pub pi_loss: f32,
    /// Final critic MSE.
    pub vf_loss: f32,
    /// Approximate KL divergence at the last policy pass.
    pub approx_kl: f32,
    /// Mean policy entropy.
    pub entropy: f32,
    /// Fraction of steps whose ratio was clipped at the last policy pass.
    pub clip_frac: f32,
    /// L2 norm of the mean policy gradient at the last policy pass.
    pub grad_norm: f32,
    /// Policy passes actually executed (≤ `train_pi_iters`).
    pub pi_iters: usize,
}

/// Actor–critic PPO trainer owning both networks and their optimizers.
#[derive(Debug, Clone)]
pub struct PpoTrainer {
    /// The policy (actor).
    pub policy: BinaryPolicy,
    /// The critic.
    pub critic: ValueNet,
    config: PpoConfig,
    pi_opt: Adam,
    vf_opt: Adam,
}

impl PpoTrainer {
    /// Create a trainer for `input_dim` features.
    pub fn new(input_dim: usize, config: PpoConfig, seed: u64) -> Self {
        let policy = BinaryPolicy::new(input_dim, seed);
        let critic = ValueNet::new(input_dim, seed.wrapping_add(1));
        let pi_opt = Adam::new(config.pi_lr, policy.param_count());
        let vf_opt = Adam::new(config.vf_lr, critic.param_count());
        PpoTrainer {
            policy,
            critic,
            config,
            pi_opt,
            vf_opt,
        }
    }

    /// Hyper-parameters in use.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// The optimizer states `(policy, critic)` — exposed so trainers can
    /// checkpoint mid-run and resume bit-identically.
    pub fn optimizers(&self) -> (&Adam, &Adam) {
        (&self.pi_opt, &self.vf_opt)
    }

    /// Reassemble a trainer from checkpointed parts. Optimizer moment
    /// vectors must match the corresponding network sizes.
    pub fn from_parts(
        policy: BinaryPolicy,
        critic: ValueNet,
        config: PpoConfig,
        pi_opt: Adam,
        vf_opt: Adam,
    ) -> Result<Self, String> {
        // Adam::step asserts the same invariant; checking here turns a
        // mismatched checkpoint into an error instead of a later panic.
        if pi_opt.param_len() != policy.param_count() {
            return Err(format!(
                "policy optimizer covers {} params, network has {}",
                pi_opt.param_len(),
                policy.param_count()
            ));
        }
        if vf_opt.param_len() != critic.param_count() {
            return Err(format!(
                "critic optimizer covers {} params, network has {}",
                vf_opt.param_len(),
                critic.param_count()
            ));
        }
        Ok(PpoTrainer {
            policy,
            critic,
            config,
            pi_opt,
            vf_opt,
        })
    }

    /// One PPO update from a batch of trajectories.
    pub fn update(&mut self, batch: &Batch) -> UpdateStats {
        self.update_traced(batch, &Telemetry::disabled())
    }

    /// Like [`PpoTrainer::update`], but streaming per-minibatch diagnostics:
    /// one `ppo.minibatch.{kl,pi_loss,clip_frac,grad_norm}` histogram sample
    /// per policy pass and one `ppo.minibatch.vf_loss` sample per critic
    /// pass, plus final `ppo.{kl,entropy,clip_frac,grad_norm}` gauges. The
    /// numerical result is identical to the untraced path.
    pub fn update_traced(&mut self, batch: &Batch, telemetry: &Telemetry) -> UpdateStats {
        let n = batch.total_steps();
        if n == 0 {
            return UpdateStats::default();
        }
        let adv = advantage::compute(batch, &self.critic);
        let mut stats = UpdateStats::default();
        let mut tape = Tape::default();

        // ---- policy (clipped surrogate, early stop on KL) ----
        for iter in 0..self.config.train_pi_iters {
            self.policy.net_mut().zero_grads();
            let mut kl_sum = 0.0f64;
            let mut loss_sum = 0.0f64;
            let mut ent_sum = 0.0f64;
            let mut clipped_count = 0usize;
            let mut flat = 0usize;
            for t in &batch.trajectories {
                for s in &t.steps {
                    let a = adv.advantages[flat];
                    flat += 1;
                    let logits = self.policy.forward_train(&s.state, &mut tape).to_vec();
                    let lp = log_softmax(&logits);
                    let p = softmax(&logits);
                    let logp_new = lp[s.action as usize];
                    let ratio = (logp_new - s.logp).exp();
                    let clipped = (a >= 0.0 && ratio > 1.0 + self.config.clip)
                        || (a < 0.0 && ratio < 1.0 - self.config.clip);
                    clipped_count += clipped as usize;
                    let surr = if clipped {
                        ratio.clamp(1.0 - self.config.clip, 1.0 + self.config.clip) * a
                    } else {
                        ratio * a
                    };
                    loss_sum += -surr as f64;
                    kl_sum += (s.logp - logp_new) as f64;
                    let entropy: f32 = -p
                        .iter()
                        .zip(&lp)
                        .map(|(&pi, &li)| if pi > 0.0 { pi * li } else { 0.0 })
                        .sum::<f32>();
                    ent_sum += entropy as f64;

                    // d(-surr)/dlogits + entropy bonus gradient.
                    let d_surr_d_logp = if clipped { 0.0 } else { ratio * a };
                    let mut grad = [0.0f32; 2];
                    for k in 0..2 {
                        let onehot = if k == s.action as usize { 1.0 } else { 0.0 };
                        // minimize: -(surrogate + c·entropy)
                        grad[k] = -d_surr_d_logp * (onehot - p[k])
                            + self.config.ent_coef * p[k] * (lp[k] + entropy);
                    }
                    self.policy.net_mut().backward(&tape, &grad);
                }
            }
            stats.pi_loss = (loss_sum / n as f64) as f32;
            stats.approx_kl = (kl_sum / n as f64) as f32;
            stats.entropy = (ent_sum / n as f64) as f32;
            stats.clip_frac = clipped_count as f32 / n as f32;
            stats.grad_norm = self.policy.mlp().grad_norm() / n as f32;
            stats.pi_iters = iter + 1;
            if telemetry.is_enabled() {
                telemetry.observe("ppo.minibatch.kl", stats.approx_kl as f64);
                telemetry.observe("ppo.minibatch.pi_loss", stats.pi_loss as f64);
                telemetry.observe("ppo.minibatch.clip_frac", stats.clip_frac as f64);
                telemetry.observe("ppo.minibatch.grad_norm", stats.grad_norm as f64);
            }
            if stats.approx_kl > 1.5 * self.config.target_kl && iter > 0 {
                break;
            }
            self.pi_opt.step(self.policy.net_mut(), 1.0 / n as f32);
        }

        // ---- critic (MSE regression to returns) ----
        for _ in 0..self.config.train_vf_iters {
            self.critic.net_mut().zero_grads();
            let mut vf_sum = 0.0f64;
            let mut flat = 0usize;
            for t in &batch.trajectories {
                for s in &t.steps {
                    let ret = adv.returns[flat];
                    flat += 1;
                    let v = self.critic.forward_train(&s.state, &mut tape)[0];
                    let d = v - ret;
                    vf_sum += (d * d) as f64;
                    self.critic.net_mut().backward(&tape, &[2.0 * d]);
                }
            }
            stats.vf_loss = (vf_sum / n as f64) as f32;
            telemetry.observe("ppo.minibatch.vf_loss", stats.vf_loss as f64);
            self.vf_opt.step(self.critic.net_mut(), 1.0 / n as f32);
        }
        if telemetry.is_enabled() {
            telemetry.gauge("ppo.kl", stats.approx_kl as f64);
            telemetry.gauge("ppo.entropy", stats.entropy as f64);
            telemetry.gauge("ppo.clip_frac", stats.clip_frac as f64);
            telemetry.gauge("ppo.grad_norm", stats.grad_norm as f64);
            telemetry.gauge("ppo.pi_iters", stats.pi_iters as f64);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ACCEPT, REJECT};
    use crate::trajectory::{Step, Trajectory};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A bandit-style check: states with `x > 0` should be rejected
    /// (reward +1), states with `x < 0` accepted (reward +1 for accept).
    /// PPO must learn the mapping from sparse trajectory rewards.
    #[test]
    fn ppo_learns_a_contextual_bandit() {
        let mut trainer = PpoTrainer::new(1, PpoConfig::default(), 7);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..60 {
            let mut batch = Batch::default();
            for i in 0..32 {
                let x = if i % 2 == 0 { 0.8f32 } else { -0.8 };
                let state = vec![x];
                let (action, logp) = trainer.policy.sample(&state, &mut rng);
                let correct = if x > 0.0 { REJECT } else { ACCEPT };
                let reward = if action == correct { 1.0 } else { -1.0 };
                batch.trajectories.push(Trajectory {
                    steps: vec![Step {
                        state,
                        action,
                        logp,
                    }],
                    reward,
                });
            }
            trainer.update(&batch);
        }
        assert!(
            trainer.policy.prob_reject(&[0.8]) > 0.8,
            "should reject positive states: p = {}",
            trainer.policy.prob_reject(&[0.8])
        );
        assert!(
            trainer.policy.prob_reject(&[-0.8]) < 0.2,
            "should accept negative states: p = {}",
            trainer.policy.prob_reject(&[-0.8])
        );
    }

    #[test]
    fn critic_regresses_to_returns() {
        let mut trainer = PpoTrainer::new(1, PpoConfig::default(), 3);
        // All trajectories from state [0.5] carry reward 2.0.
        let batch = Batch {
            trajectories: (0..16)
                .map(|_| Trajectory {
                    steps: vec![Step {
                        state: vec![0.5],
                        action: 0,
                        logp: -0.69,
                    }],
                    reward: 2.0,
                })
                .collect(),
        };
        for _ in 0..30 {
            trainer.update(&batch);
        }
        let v = trainer.critic.value(&[0.5]);
        assert!((v - 2.0).abs() < 0.3, "critic did not converge: {v}");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut trainer = PpoTrainer::new(2, PpoConfig::default(), 0);
        let before = trainer.policy.clone();
        let stats = trainer.update(&Batch::default());
        assert_eq!(stats.pi_iters, 0);
        assert_eq!(
            trainer.policy.logits(&[0.1, 0.2]),
            before.logits(&[0.1, 0.2])
        );
    }

    #[test]
    fn kl_early_stopping_bounds_iterations() {
        let mut config = PpoConfig {
            target_kl: 1e-9,
            ..Default::default()
        };
        config.pi_lr = 0.1; // big steps force KL past the threshold fast
        let mut trainer = PpoTrainer::new(1, config, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut batch = Batch::default();
        for _ in 0..8 {
            let state = vec![0.3f32];
            let (action, logp) = trainer.policy.sample(&state, &mut rng);
            batch.trajectories.push(Trajectory {
                steps: vec![Step {
                    state,
                    action,
                    logp,
                }],
                reward: 1.0,
            });
        }
        let stats = trainer.update(&batch);
        assert!(
            stats.pi_iters < config.train_pi_iters,
            "early stop expected"
        );
    }
}
