//! Trajectories with sparse terminal rewards.
//!
//! SchedInspector holds intermediate rewards at 0 and assigns one final
//! reward per scheduled job sequence (§3 "reward calculation"), so a
//! trajectory is a list of (state, action, log-prob) steps plus a single
//! scalar reward.

use serde::{Deserialize, Serialize};

/// One inspection decision inside a trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// Feature vector observed at the scheduling point.
    pub state: Vec<f32>,
    /// Action taken: 1 = reject, 0 = accept.
    pub action: u8,
    /// Log-probability of the action under the behavior policy.
    pub logp: f32,
}

/// One episode: all inspection decisions over a job sequence plus the final
/// reward computed after the last job finished.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trajectory {
    /// Steps in decision order.
    pub steps: Vec<Step>,
    /// Terminal reward for the whole sequence.
    pub reward: f32,
}

impl Trajectory {
    /// Number of decisions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trajectory recorded no decisions.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Fraction of reject actions.
    pub fn rejection_ratio(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().filter(|s| s.action == 1).count() as f64 / self.steps.len() as f64
    }
}

/// A batch of trajectories — the unit of one PPO model update (the paper
/// collects 100 trajectories per epoch, §4.1).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Batch {
    /// Collected trajectories.
    pub trajectories: Vec<Trajectory>,
}

impl Batch {
    /// Total number of steps across all trajectories.
    pub fn total_steps(&self) -> usize {
        self.trajectories.iter().map(Trajectory::len).sum()
    }

    /// Mean terminal reward.
    pub fn mean_reward(&self) -> f32 {
        if self.trajectories.is_empty() {
            return 0.0;
        }
        self.trajectories.iter().map(|t| t.reward).sum::<f32>() / self.trajectories.len() as f32
    }

    /// Overall rejection ratio across the batch.
    pub fn rejection_ratio(&self) -> f64 {
        let total = self.total_steps();
        if total == 0 {
            return 0.0;
        }
        let rejects: usize = self
            .trajectories
            .iter()
            .map(|t| t.steps.iter().filter(|s| s.action == 1).count())
            .sum();
        rejects as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(action: u8) -> Step {
        Step {
            state: vec![0.0],
            action,
            logp: -0.7,
        }
    }

    #[test]
    fn rejection_ratio_counts_rejects() {
        let t = Trajectory {
            steps: vec![step(1), step(0), step(1), step(1)],
            reward: 0.0,
        };
        assert_eq!(t.rejection_ratio(), 0.75);
        assert_eq!(Trajectory::default().rejection_ratio(), 0.0);
    }

    #[test]
    fn batch_aggregates() {
        let b = Batch {
            trajectories: vec![
                Trajectory {
                    steps: vec![step(1), step(0)],
                    reward: 2.0,
                },
                Trajectory {
                    steps: vec![step(0), step(0)],
                    reward: 4.0,
                },
            ],
        };
        assert_eq!(b.total_steps(), 4);
        assert_eq!(b.mean_reward(), 3.0);
        assert_eq!(b.rejection_ratio(), 0.25);
    }
}
