//! Parameter-space merging of PPO replicas — the DD-PPO-style
//! (decentralized distributed PPO) reduction step.
//!
//! Each rollout worker runs a *local* PPO update over its shard of the
//! batch, then the coordinator blends the resulting replicas back into one
//! state: a weighted average of policy parameters, critic parameters, and
//! Adam moment vectors, with the Adam step count taken as the maximum
//! across replicas. Averaging is performed in `f64` and iterates shards in
//! the order given, so for a fixed shard order the merged state is
//! bit-deterministic — and a single shard with any positive weight merges
//! to exactly itself (`w·x / w == x` is exact through `f64`), which is
//! what makes a 1-worker decentralized run byte-identical to the
//! synchronous path.

use crate::policy::BinaryPolicy;
use crate::ppo::{PpoTrainer, UpdateStats};
use crate::value::ValueNet;
use tinynn::Adam;

/// One replica entering the merge: a trained PPO state plus its weight
/// (conventionally the shard's episode count).
pub struct MergeShard<'a> {
    /// The replica's full PPO state after its local update.
    pub ppo: &'a PpoTrainer,
    /// Relative weight of this replica (must be positive and finite).
    pub weight: f64,
}

/// Weighted average of flat `f32` vectors, accumulated in `f64` and
/// iterated in shard order (deterministic for a fixed order).
fn average_vecs(vecs: &[(&[f32], f64)], total: f64) -> Vec<f32> {
    let len = vecs.first().map_or(0, |(v, _)| v.len());
    let mut acc = vec![0.0f64; len];
    for (v, w) in vecs {
        for (a, &x) in acc.iter_mut().zip(v.iter()) {
            *a += w * x as f64;
        }
    }
    acc.into_iter().map(|a| (a / total) as f32).collect()
}

/// Blend replica states into one [`PpoTrainer`]. All replicas must share
/// network shapes and optimizer hyper-parameters; the merged Adam step
/// count is the maximum across replicas (every moment vector has absorbed
/// at least that much decay on the heaviest-trained shard).
pub fn average_ppo(shards: &[MergeShard]) -> Result<PpoTrainer, String> {
    let first = shards.first().ok_or("cannot merge zero replicas")?;
    let total: f64 = shards.iter().map(|s| s.weight).sum();
    if !(total.is_finite() && total > 0.0)
        || shards.iter().any(|s| s.weight.is_nan() || s.weight <= 0.0)
    {
        return Err("merge weights must be positive and finite".into());
    }
    let pi_params = first.ppo.policy.param_count();
    let vf_params = first.ppo.critic.param_count();
    for s in shards {
        if s.ppo.policy.param_count() != pi_params || s.ppo.critic.param_count() != vf_params {
            return Err(format!(
                "replica network shapes disagree: ({}, {}) vs ({}, {})",
                s.ppo.policy.param_count(),
                s.ppo.critic.param_count(),
                pi_params,
                vf_params
            ));
        }
        if s.ppo.config() != first.ppo.config() {
            return Err("replica PPO hyper-parameters disagree".into());
        }
    }

    let policy_params: Vec<Vec<f32>> = shards.iter().map(|s| s.ppo.policy.mlp().params()).collect();
    let critic_params: Vec<Vec<f32>> = shards.iter().map(|s| s.ppo.critic.mlp().params()).collect();
    let weights: Vec<f64> = shards.iter().map(|s| s.weight).collect();
    fn pair<'a>(vecs: &'a [Vec<f32>], weights: &[f64]) -> Vec<(&'a [f32], f64)> {
        vecs.iter()
            .zip(weights)
            .map(|(v, &w)| (v.as_slice(), w))
            .collect()
    }

    let mut policy_net = first.ppo.policy.mlp().clone();
    policy_net.set_params(&average_vecs(&pair(&policy_params, &weights), total))?;
    let mut critic_net = first.ppo.critic.mlp().clone();
    critic_net.set_params(&average_vecs(&pair(&critic_params, &weights), total))?;

    let merge_opt = |pick: fn(&PpoTrainer) -> &Adam| -> Result<Adam, String> {
        let proto = pick(first.ppo);
        let ms: Vec<(&[f32], f64)> = shards
            .iter()
            .zip(&weights)
            .map(|(s, &w)| (pick(s.ppo).moments().0, w))
            .collect();
        let vs: Vec<(&[f32], f64)> = shards
            .iter()
            .zip(&weights)
            .map(|(s, &w)| (pick(s.ppo).moments().1, w))
            .collect();
        let t = shards
            .iter()
            .map(|s| pick(s.ppo).steps())
            .max()
            .unwrap_or(0);
        Adam::from_state(
            proto.lr,
            proto.beta1,
            proto.beta2,
            proto.eps,
            average_vecs(&ms, total),
            average_vecs(&vs, total),
            t,
        )
    };
    let pi_opt = merge_opt(|p| p.optimizers().0)?;
    let vf_opt = merge_opt(|p| p.optimizers().1)?;

    PpoTrainer::from_parts(
        BinaryPolicy::from_mlp(policy_net)?,
        ValueNet::from_mlp(critic_net)?,
        *first.ppo.config(),
        pi_opt,
        vf_opt,
    )
}

/// Weighted mean of per-replica update diagnostics (same `f64`-accumulate,
/// shard-order discipline as [`average_ppo`]); `pi_iters` reports the
/// maximum across replicas.
pub fn average_stats(stats: &[(UpdateStats, f64)]) -> UpdateStats {
    let total: f64 = stats.iter().map(|(_, w)| w).sum();
    if stats.is_empty() || !total.is_finite() || total <= 0.0 {
        return UpdateStats::default();
    }
    let mean = |pick: fn(&UpdateStats) -> f32| -> f32 {
        (stats.iter().map(|(s, w)| w * pick(s) as f64).sum::<f64>() / total) as f32
    };
    UpdateStats {
        pi_loss: mean(|s| s.pi_loss),
        vf_loss: mean(|s| s.vf_loss),
        approx_kl: mean(|s| s.approx_kl),
        entropy: mean(|s| s.entropy),
        clip_frac: mean(|s| s.clip_frac),
        grad_norm: mean(|s| s.grad_norm),
        pi_iters: stats.iter().map(|(s, _)| s.pi_iters).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::{Batch, Step, Trajectory};

    fn trained(seed: u64, reward: f32) -> PpoTrainer {
        let mut t = PpoTrainer::new(3, crate::PpoConfig::default(), seed);
        let batch = Batch {
            trajectories: (0..8)
                .map(|i| Trajectory {
                    steps: vec![Step {
                        state: vec![0.1 * i as f32, -0.2, 0.5],
                        action: (i % 2) as u8,
                        logp: -0.7,
                    }],
                    reward,
                })
                .collect(),
        };
        t.update(&batch);
        t
    }

    fn state_text(p: &PpoTrainer) -> String {
        let (pi, vf) = p.optimizers();
        format!(
            "{:?}{:?}{}{}",
            p.policy.mlp().params(),
            p.critic.mlp().params(),
            pi.to_text(),
            vf.to_text()
        )
    }

    #[test]
    fn single_replica_merges_to_itself_bit_exactly() {
        let t = trained(7, 1.0);
        for weight in [1.0, 4.0, 0.25] {
            let merged = average_ppo(&[MergeShard { ppo: &t, weight }]).unwrap();
            assert_eq!(state_text(&merged), state_text(&t));
        }
    }

    #[test]
    fn identical_replicas_merge_to_themselves() {
        let t = trained(3, 0.5);
        let merged = average_ppo(&[
            MergeShard {
                ppo: &t,
                weight: 2.0,
            },
            MergeShard {
                ppo: &t,
                weight: 2.0,
            },
        ])
        .unwrap();
        // x·w/Σw may round, but for equal replicas the f64 average of two
        // identical values is exact.
        assert_eq!(state_text(&merged), state_text(&t));
    }

    #[test]
    fn average_lands_between_distinct_replicas() {
        let a = trained(1, 1.0);
        let b = trained(2, -1.0);
        let merged = average_ppo(&[
            MergeShard {
                ppo: &a,
                weight: 1.0,
            },
            MergeShard {
                ppo: &b,
                weight: 1.0,
            },
        ])
        .unwrap();
        let (pa, pb, pm) = (
            a.policy.mlp().params(),
            b.policy.mlp().params(),
            merged.policy.mlp().params(),
        );
        for ((&x, &y), &m) in pa.iter().zip(&pb).zip(&pm) {
            let (lo, hi) = (x.min(y), x.max(y));
            assert!((lo..=hi).contains(&m), "{m} outside [{lo}, {hi}]");
        }
        let t_max = a.optimizers().0.steps().max(b.optimizers().0.steps());
        assert_eq!(merged.optimizers().0.steps(), t_max);
    }

    #[test]
    fn merge_order_is_part_of_the_contract() {
        // Reversing shard order may change low bits; the API promises
        // determinism for a *fixed* order, which is what the coordinator
        // provides (logical shard index order).
        let a = trained(1, 1.0);
        let b = trained(2, -1.0);
        let fwd = average_ppo(&[
            MergeShard {
                ppo: &a,
                weight: 1.0,
            },
            MergeShard {
                ppo: &b,
                weight: 3.0,
            },
        ])
        .unwrap();
        let fwd2 = average_ppo(&[
            MergeShard {
                ppo: &a,
                weight: 1.0,
            },
            MergeShard {
                ppo: &b,
                weight: 3.0,
            },
        ])
        .unwrap();
        assert_eq!(state_text(&fwd), state_text(&fwd2));
    }

    #[test]
    fn shape_and_weight_mismatches_are_errors() {
        let a = trained(1, 1.0);
        let wide = PpoTrainer::new(5, crate::PpoConfig::default(), 1);
        assert!(average_ppo(&[]).is_err());
        assert!(average_ppo(&[
            MergeShard {
                ppo: &a,
                weight: 1.0
            },
            MergeShard {
                ppo: &wide,
                weight: 1.0
            },
        ])
        .is_err());
        assert!(average_ppo(&[MergeShard {
            ppo: &a,
            weight: 0.0
        }])
        .is_err());
        assert!(average_ppo(&[MergeShard {
            ppo: &a,
            weight: f64::NAN
        }])
        .is_err());
    }

    #[test]
    fn stats_average_is_weighted_and_exact_for_one() {
        let s = UpdateStats {
            pi_loss: 0.5,
            vf_loss: 1.5,
            approx_kl: 0.01,
            entropy: 0.69,
            clip_frac: 0.125,
            grad_norm: 2.0,
            pi_iters: 7,
        };
        assert_eq!(average_stats(&[(s, 3.0)]), s);
        let z = UpdateStats::default();
        let mixed = average_stats(&[(s, 1.0), (z, 1.0)]);
        assert_eq!(mixed.pi_loss, 0.25);
        assert_eq!(mixed.pi_iters, 7);
        assert_eq!(average_stats(&[]), UpdateStats::default());
    }
}
