//! Property tests on the RL substrate: probability coherence of the
//! binary policy, PPO numerical hygiene, and advantage normalization.

use proptest::prelude::*;
use rlcore::{
    compute_advantages, normalize, Batch, BinaryPolicy, PpoConfig, PpoTrainer, Step, Trajectory,
    ValueNet, ACCEPT, REJECT,
};

fn state_strategy(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0f32..1.0, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(50))]

    /// Accept/reject probabilities sum to one for any state.
    #[test]
    fn probabilities_coherent(state in state_strategy(5), seed in any::<u64>()) {
        let p = BinaryPolicy::with_hidden(5, &[8, 4], seed);
        let pa = p.logp(&state, ACCEPT).exp();
        let pr = p.logp(&state, REJECT).exp();
        prop_assert!((pa + pr - 1.0).abs() < 1e-4, "pa {} + pr {}", pa, pr);
        prop_assert!((p.prob_reject(&state) - pr).abs() < 1e-5);
    }

    /// Normalization yields zero mean and unit (or zero) variance.
    #[test]
    fn normalize_properties(mut xs in prop::collection::vec(-100f32..100.0, 0..64)) {
        normalize(&mut xs);
        if xs.is_empty() { return Ok(()); }
        let mean: f32 = xs.iter().sum::<f32>() / xs.len() as f32;
        prop_assert!(mean.abs() < 1e-3, "mean {}", mean);
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        prop_assert!(var < 1.2, "var {}", var);
    }

    /// A PPO update on arbitrary (finite) trajectories keeps the policy
    /// finite and probability-coherent.
    #[test]
    fn ppo_update_keeps_policy_finite(
        rewards in prop::collection::vec(-10.0f32..10.0, 1..8),
        seed in any::<u64>(),
    ) {
        let mut trainer = PpoTrainer::new(3, PpoConfig::default(), seed);
        let mut batch = Batch::default();
        for (i, r) in rewards.iter().enumerate() {
            let state = vec![(i as f32 / 8.0) - 0.5; 3];
            let action = (i % 2) as u8;
            let logp = trainer.policy.logp(&state, action);
            batch.trajectories.push(Trajectory {
                steps: vec![Step { state, action, logp }],
                reward: *r,
            });
        }
        let stats = trainer.update(&batch);
        prop_assert!(stats.pi_loss.is_finite());
        prop_assert!(stats.vf_loss.is_finite());
        let p = trainer.policy.prob_reject(&[0.0, 0.0, 0.0]);
        prop_assert!(p.is_finite() && (0.0..=1.0).contains(&p));
    }

    /// Advantages are returns minus baseline, in flattened step order.
    #[test]
    fn advantages_align_with_returns(
        lens in prop::collection::vec(1usize..5, 1..5),
        rewards in prop::collection::vec(-5.0f32..5.0, 5),
    ) {
        let critic = ValueNet::with_hidden(2, &[4], 3);
        let mut batch = Batch::default();
        for (i, len) in lens.iter().enumerate() {
            let reward = rewards[i % rewards.len()];
            batch.trajectories.push(Trajectory {
                steps: (0..*len)
                    .map(|j| Step { state: vec![i as f32, j as f32], action: 0, logp: -0.7 })
                    .collect(),
                reward,
            });
        }
        let adv = compute_advantages(&batch, &critic);
        prop_assert_eq!(adv.returns.len(), batch.total_steps());
        let mut flat = 0;
        for t in &batch.trajectories {
            for _ in &t.steps {
                prop_assert_eq!(adv.returns[flat], t.reward);
                flat += 1;
            }
        }
    }
}
