//! Protocol fuzzing: arbitrary byte junk, truncated JSON, mutated valid
//! lines, and interleaved pipelined requests against both the pure codec
//! (`serve::protocol`) and a live server. The decoder must answer every
//! line with a typed protocol response — never panic, never desynchronize
//! the connection, never hang.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use inspector::{FeatureBuilder, FeatureMode, Normalizer, SchedInspector};
use proptest::prelude::*;
use rlcore::BinaryPolicy;
use serve::protocol::{self, parse_request, parse_response, Response};
use serve::{serve, ServeConfig, ServerHandle};
use simhpc::Metric;

fn tiny_inspector() -> SchedInspector {
    let fb = FeatureBuilder {
        mode: FeatureMode::Manual,
        metric: Metric::Bsld,
        norm: Normalizer::new(64, 3600.0),
    };
    SchedInspector::new(BinaryPolicy::new(fb.dim(), 17), fb)
}

/// A syntactically valid infer line for the given dimension.
fn valid_infer(id: u64, dim: usize) -> String {
    let payload = (0..dim)
        .map(|i| format!("{:.3}", (i as f32) / (dim as f32)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"verb\":\"infer\",\"id\":{id},\"features\":[{payload}]}}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte junk through the request parser: `Ok` or `Err`,
    /// never a panic.
    #[test]
    fn parse_request_never_panics_on_junk(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse_request(&line);
    }

    /// Same for the client-side response parser.
    #[test]
    fn parse_response_never_panics_on_junk(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse_response(&line);
    }

    /// Every strict prefix of a valid request is a clean parse error:
    /// truncated JSON is rejected, not misread.
    #[test]
    fn truncated_requests_error_cleanly(id in any::<u64>(), dim in 1usize..12, cut in any::<u64>()) {
        let line = valid_infer(id, dim);
        prop_assert!(parse_request(&line).is_ok());
        let at = (cut as usize) % line.len();
        // Cut on a char boundary (the line is pure ASCII).
        prop_assert!(parse_request(&line[..at]).is_err());
    }

    /// The wire `trace` field round-trips bit-exactly through the 16-hex
    /// string encoding on both requests and decision responses, for every
    /// nonzero 64-bit id.
    #[test]
    fn trace_ids_round_trip_bit_exactly(
        // Wire ids ride JSON numbers (f64), so stay in the exact range;
        // trace ids are hex *strings* precisely to dodge this.
        id in 0u64..(1 << 53),
        dim in 1usize..12,
        raw_trace in any::<u64>(),
        p in 0.0f32..1.0,
        reject in any::<bool>(),
    ) {
        let trace = raw_trace.max(1); // 0 is reserved (= untraced)
        let mut line = valid_infer(id, dim);
        line.truncate(line.len() - 1); // strip the closing brace
        line.push_str(&format!(",\"trace\":\"{trace:016x}\"}}"));
        match parse_request(&line) {
            Ok(serve::protocol::Request::Infer { trace: got, .. }) => {
                prop_assert_eq!(got, trace)
            }
            other => panic!("unexpected {other:?}"),
        }
        let mut out = String::new();
        protocol::write_decision(
            &mut out,
            id,
            inspector::Decision { reject, p_reject: p },
            trace,
        );
        match parse_response(out.trim()) {
            Ok(Response::Decision { trace: got, .. }) => prop_assert_eq!(got, trace),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Legacy requests and responses — no `trace` field anywhere — parse
    /// exactly as before (trace 0), and the untraced response encoder
    /// emits a byte-identical legacy line.
    #[test]
    fn legacy_lines_parse_unchanged(id in 0u64..(1 << 53), dim in 1usize..12, p in 0.0f32..1.0) {
        let line = valid_infer(id, dim);
        match parse_request(&line) {
            Ok(serve::protocol::Request::Infer { id: got, trace, .. }) => {
                prop_assert_eq!(got, id);
                prop_assert_eq!(trace, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let mut out = String::new();
        protocol::write_decision(
            &mut out,
            id,
            inspector::Decision { reject: false, p_reject: p },
            0,
        );
        prop_assert!(!out.contains("trace"), "legacy line must not grow a trace field: {}", out);
        let legacy = format!(
            "{{\"id\":{id},\"ok\":true,\"decision\":\"accept\",\"p_reject\":{p}}}\n"
        );
        prop_assert_eq!(&out, &legacy, "untraced decision must stay byte-identical");
    }

    /// Single-byte mutations (insert, delete, flip) never panic the
    /// parser, and whatever parses still satisfies the request grammar.
    #[test]
    fn mutated_requests_never_panic(
        id in any::<u64>(),
        dim in 1usize..12,
        pos in any::<u64>(),
        byte in any::<u8>(),
        kind in 0u8..3,
    ) {
        let line = valid_infer(id, dim);
        let mut bytes = line.into_bytes();
        let at = (pos as usize) % bytes.len();
        match kind {
            0 => bytes.insert(at, byte),
            1 => {
                bytes.remove(at);
            }
            _ => bytes[at] ^= byte | 1,
        }
        let mutated = String::from_utf8_lossy(&bytes);
        // Parsing must terminate with Ok or Err — a mutation that happens
        // to survive is fine; a panic or hang is the bug.
        let _ = parse_request(&mutated);
    }
}

fn start(max_line_bytes: usize) -> (ServerHandle, usize) {
    let inspector = tiny_inspector();
    let dim = inspector.input_dim();
    let handle = serve(
        inspector,
        ServeConfig {
            workers: 2,
            max_line_bytes,
            ..ServeConfig::default()
        },
        obs::Telemetry::disabled(),
    )
    .expect("bind ephemeral port");
    (handle, dim)
}

/// What the fuzzer expects back for one pipelined line.
enum Expect {
    Decision(u64),
    BadDim(u64),
    Pong,
    Malformed,
}

/// A live server answering interleaved pipelined garbage: exactly one
/// typed response per non-empty line, in request order, and the
/// connection survives every malformed line.
#[test]
fn pipelined_junk_gets_one_typed_response_per_line() {
    let (handle, dim) = start(1 << 20);
    // A tiny deterministic generator keeps this reproducible without
    // threading proptest through socket setup.
    let mut state = 0xF022_5EEDu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };

    for round in 0..48 {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        let mut batch = String::new();
        let mut expects = Vec::new();
        for i in 0..(1 + next() % 9) {
            let id = round * 100 + i;
            match next() % 6 {
                0 | 1 => {
                    batch.push_str(&valid_infer(id, dim));
                    expects.push(Expect::Decision(id));
                }
                2 => {
                    batch.push_str(&format!(
                        "{{\"verb\":\"infer\",\"id\":{id},\"features\":[1,2,3]}}"
                    ));
                    expects.push(Expect::BadDim(id));
                }
                3 => {
                    batch.push_str("{\"verb\":\"ping\"}");
                    expects.push(Expect::Pong);
                }
                4 => {
                    // Truncated valid JSON.
                    let line = valid_infer(id, dim);
                    let cut = 1 + (next() as usize) % (line.len() - 1);
                    batch.push_str(&line[..cut]);
                    expects.push(Expect::Malformed);
                }
                _ => {
                    // Raw junk: newline-free printable bytes, first char
                    // non-space so the server doesn't skip it as a blank
                    // line (blank lines get no response by design).
                    let mut junk = String::from("!");
                    junk.extend((0..(next() % 40)).map(|_| (0x20 + (next() % 0x5F)) as u8 as char));
                    // A junk draw could accidentally be valid JSON with a
                    // verb; overwhelmingly it is not, and the assertion
                    // below only demands *some* typed response.
                    batch.push_str(&junk);
                    expects.push(Expect::Malformed);
                }
            }
            batch.push('\n');
        }

        Write::write_all(&mut stream, batch.as_bytes()).unwrap();
        for (i, expect) in expects.iter().enumerate() {
            let mut line = String::new();
            reader
                .read_line(&mut line)
                .unwrap_or_else(|e| panic!("round {round} line {i}: read failed: {e}"));
            assert!(
                !line.is_empty(),
                "round {round} line {i}: connection closed early"
            );
            let resp = parse_response(line.trim())
                .unwrap_or_else(|e| panic!("round {round} line {i}: bad response {line:?}: {e}"));
            match (expect, resp) {
                (Expect::Decision(want), Response::Decision { id, .. }) => {
                    assert_eq!(id, *want, "round {round} line {i}")
                }
                (Expect::BadDim(want), Response::Error { id, code, .. }) => {
                    assert_eq!(id, Some(*want), "round {round} line {i}");
                    assert_eq!(code, protocol::ERR_BAD_REQUEST, "round {round} line {i}");
                }
                (Expect::Pong, Response::Pong) => {}
                (Expect::Malformed, Response::Error { id, code, .. }) => {
                    assert_eq!(id, None, "round {round} line {i}");
                    assert_eq!(code, protocol::ERR_MALFORMED, "round {round} line {i}");
                }
                (_, other) => panic!("round {round} line {i}: unexpected {other:?}"),
            }
        }
    }
    handle.shutdown();
}

/// An oversized line (beyond `max_line_bytes`) gets a typed `malformed`
/// error and a clean close — not an unbounded buffer or a hang.
#[test]
fn oversized_line_is_rejected_with_typed_error() {
    let (handle, _dim) = start(4096);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let huge = "x".repeat(8192);
    Write::write_all(&mut stream, huge.as_bytes()).unwrap();
    Write::write_all(&mut stream, b"\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    match parse_response(line.trim()).unwrap() {
        Response::Error { id, code, .. } => {
            assert_eq!(id, None);
            assert_eq!(code, protocol::ERR_MALFORMED);
        }
        other => panic!("unexpected {other:?}"),
    }
    // The server closes after flushing the error. Closing with unread
    // client bytes in its receive buffer surfaces as RST, so accept
    // either a clean EOF or a connection reset.
    let mut rest = String::new();
    match reader.read_line(&mut rest) {
        Ok(0) => {}
        Ok(n) => panic!("expected close, got {n} more bytes: {rest:?}"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset),
    }
    handle.shutdown();
}
