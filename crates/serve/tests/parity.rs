//! Serving parity: decisions served over the wire are bit-identical to
//! direct in-process `SchedInspector::decide` calls.
//!
//! This holds because the client prints `f32` features with the shortest
//! round-trippable representation and the server parses them as `f64`
//! before casting back to `f32` — an exact chain — and both sides run the
//! same scratch-buffer forward pass.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use inspector::{FeatureBuilder, FeatureMode, Normalizer, SchedInspector};
use rand::{RngExt, SeedableRng, StdRng};
use rlcore::{BinaryPolicy, PolicyScratch};
use serve::protocol::{parse_response, Response};
use serve::{serve, ServeConfig};
use simhpc::Metric;

fn inspector(seed: u64) -> SchedInspector {
    let fb = FeatureBuilder {
        mode: FeatureMode::Manual,
        metric: Metric::Bsld,
        norm: Normalizer::new(256, 7_200.0),
    };
    SchedInspector::new(BinaryPolicy::new(fb.dim(), seed), fb)
}

#[test]
fn wire_decisions_match_in_process_calls_bit_exactly() {
    let agent = inspector(101);
    let dim = agent.input_dim();
    let handle = serve(
        agent.clone(),
        ServeConfig {
            workers: 2,
            max_batch: 8,
            ..ServeConfig::default()
        },
        obs::Telemetry::disabled(),
    )
    .expect("bind ephemeral port");

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut scratch = PolicyScratch::default();
    let mut rng = StdRng::seed_from_u64(2024);

    for id in 0..500u64 {
        // Mix of in-range, boundary, and awkwardly-representable floats.
        let features: Vec<f32> = (0..dim)
            .map(|j| match (id as usize + j) % 5 {
                0 => rng.random_range(0.0f32..1.0),
                1 => rng.random_range(-1.0f32..0.0),
                2 => 1.0 / 3.0,
                3 => f32::MIN_POSITIVE,
                _ => (id as f32) / 499.0,
            })
            .collect();
        let expect = agent.decide(&features, &mut scratch);

        let payload = features
            .iter()
            .map(|x| format!("{x}"))
            .collect::<Vec<_>>()
            .join(",");
        let line = format!("{{\"verb\":\"infer\",\"id\":{id},\"features\":[{payload}]}}\n");
        stream.write_all(line.as_bytes()).unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        match parse_response(reply.trim()).expect("valid response line") {
            Response::Decision {
                id: got_id,
                reject,
                p_reject,
                ..
            } => {
                assert_eq!(got_id, id);
                assert_eq!(reject, expect.reject, "decision diverged at id {id}");
                assert_eq!(
                    p_reject.to_bits(),
                    expect.p_reject.to_bits(),
                    "p_reject not bit-identical at id {id}: wire {p_reject} vs direct {}",
                    expect.p_reject
                );
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn parity_survives_model_save_load_and_pipelining() {
    // The full deployment chain: save → load (text format) → serve, with
    // pipelined requests so real micro-batches form.
    let agent = inspector(77);
    let dim = agent.input_dim();
    let dir = std::env::temp_dir().join("schedinspector-serve-parity");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.txt");
    inspector::model_io::save(&agent, &path).unwrap();
    let loaded = inspector::model_io::load(&path).unwrap();
    assert_eq!(agent, loaded);

    let handle = serve(
        loaded,
        ServeConfig {
            workers: 2,
            max_batch: 16,
            ..ServeConfig::default()
        },
        obs::Telemetry::disabled(),
    )
    .unwrap();

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut scratch = PolicyScratch::default();
    let mut rng = StdRng::seed_from_u64(55);

    let n = 256u64;
    let mut batch = String::new();
    let mut expected = Vec::new();
    for id in 0..n {
        let features: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        expected.push(agent.decide(&features, &mut scratch));
        let payload = features
            .iter()
            .map(|x| format!("{x}"))
            .collect::<Vec<_>>()
            .join(",");
        batch.push_str(&format!(
            "{{\"verb\":\"infer\",\"id\":{id},\"features\":[{payload}]}}\n"
        ));
    }
    stream.write_all(batch.as_bytes()).unwrap();
    for id in 0..n {
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        match parse_response(reply.trim()).unwrap() {
            Response::Decision {
                id: got_id,
                reject,
                p_reject,
                ..
            } => {
                assert_eq!(got_id, id, "responses must come back in order");
                let e = &expected[id as usize];
                assert_eq!(reject, e.reject);
                assert_eq!(p_reject.to_bits(), e.p_reject.to_bits());
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    let stats = handle.stats();
    handle.shutdown(); // join first: the engine bumps counters after sending
    assert!(
        stats.mean_batch_size() > 1.0,
        "pipelined load should form real micro-batches (mean {})",
        stats.mean_batch_size()
    );
    std::fs::remove_file(&path).ok();
}
