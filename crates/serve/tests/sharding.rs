//! Sharded-engine integration tests: consistent routing, per-shard metric
//! reconciliation against the global request ledger, and the quantized
//! serving path's error budget — all over real TCP connections.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use inspector::{FeatureBuilder, FeatureMode, Normalizer, SchedInspector};
use obs::json::Json;
use proptest::prelude::*;
use rand::{RngExt, SeedableRng, StdRng};
use rlcore::{BinaryPolicy, PolicyScratch};
use serve::protocol::{parse_response, Response};
use serve::{serve, shard_for, ServeConfig};
use simhpc::Metric;

fn inspector(seed: u64) -> SchedInspector {
    let fb = FeatureBuilder {
        mode: FeatureMode::Manual,
        metric: Metric::Bsld,
        norm: Normalizer::new(256, 7_200.0),
    };
    SchedInspector::new(BinaryPolicy::new(fb.dim(), seed), fb)
}

fn infer_line(id: u64, features: &[f32]) -> String {
    let payload = features
        .iter()
        .map(|x| format!("{x}"))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"verb\":\"infer\",\"id\":{id},\"features\":[{payload}]}}\n")
}

#[test]
fn shard_sums_reconcile_with_global_ledger_over_tcp() {
    let agent = inspector(31);
    let dim = agent.input_dim();
    let handle = serve(
        agent,
        ServeConfig {
            workers: 4,
            shards: 4,
            max_batch: 8,
            ..ServeConfig::default()
        },
        obs::Telemetry::disabled(),
    )
    .expect("bind ephemeral port");

    // Several connections (sequential, so the worker pool never blocks on
    // held-open sockets), each pipelining a burst: consecutive connection
    // ids land on different shards and every request must come back in
    // submission order.
    for conn in 0..8u64 {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut batch = String::new();
        for id in 0..40u64 {
            let features: Vec<f32> = (0..dim)
                .map(|j| ((conn * 40 + id) as f32 * 0.017 + j as f32 * 0.3).sin())
                .collect();
            batch.push_str(&infer_line(id, &features));
        }
        stream.write_all(batch.as_bytes()).unwrap();
        for want_id in 0..40u64 {
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            match parse_response(reply.trim()).unwrap() {
                Response::Decision { id, .. } => assert_eq!(id, want_id, "per-conn FIFO"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    let stats = handle.stats();
    let registry = handle.registry();
    handle.shutdown();

    // Global ledger is exact.
    assert_eq!(stats.requests.get(), 8 * 40);
    assert_eq!(stats.accounted_requests(), stats.requests.get());
    // Shard sums equal the global counters.
    let shard_ok: u64 = stats.shards.iter().map(|s| s.ok.get()).sum();
    let shard_dl: u64 = stats.shards.iter().map(|s| s.deadline_exceeded.get()).sum();
    let shard_ov: u64 = stats.shards.iter().map(|s| s.overloaded.get()).sum();
    let shard_batched: u64 = stats.shards.iter().map(|s| s.batched_requests.get()).sum();
    let shard_batches: u64 = stats.shards.iter().map(|s| s.batches.get()).sum();
    assert_eq!(shard_ok, stats.ok.get());
    assert_eq!(shard_dl, stats.deadline_exceeded.get());
    assert_eq!(shard_ov, stats.overloaded.get());
    assert_eq!(shard_batched, stats.batched_requests.get());
    assert_eq!(shard_batches, stats.batches.get());

    // Per-shard families are visible on the /metrics exposition.
    let mut metrics = String::new();
    registry.render(&mut metrics);
    for i in 0..4 {
        assert!(
            metrics.contains(&format!("schedinspector_serve_shard{i}_ok_total")),
            "shard {i} ok family missing from exposition"
        );
        assert!(
            metrics.contains(&format!("schedinspector_serve_shard{i}_queue_depth")),
            "shard {i} queue_depth family missing from exposition"
        );
    }

    // And on the stats verb payload.
    let json = stats.to_json();
    let shards_json = json.get("shards").expect("stats payload lists shards");
    match shards_json {
        Json::Array(items) => assert_eq!(items.len(), 4),
        other => panic!("shards should be an array, got {other:?}"),
    }
}

#[test]
fn quantized_wire_decisions_track_f32_within_budget() {
    let agent = inspector(77);
    let dim = agent.input_dim();
    let handle = serve(
        agent.clone(),
        ServeConfig {
            workers: 2,
            shards: 2,
            quantized: true,
            max_batch: 8,
            ..ServeConfig::default()
        },
        obs::Telemetry::disabled(),
    )
    .expect("bind ephemeral port");

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut scratch = PolicyScratch::default();
    let mut rng = StdRng::seed_from_u64(9);
    let mut checked = 0;
    for id in 0..200u64 {
        let features: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let expect = agent.decide(&features, &mut scratch);
        stream
            .write_all(infer_line(id, &features).as_bytes())
            .unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        match parse_response(reply.trim()).unwrap() {
            Response::Decision {
                id: got_id,
                reject,
                p_reject,
                ..
            } => {
                assert_eq!(got_id, id);
                assert!(
                    (p_reject - expect.p_reject).abs() < 0.05,
                    "id {id}: quantized p_reject {p_reject} vs f32 {}",
                    expect.p_reject
                );
                // The binary decision may only flip inside the int8 error
                // band around p == 0.5.
                if (expect.p_reject - 0.5).abs() > 0.05 {
                    assert_eq!(reject, expect.reject);
                    checked += 1;
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(
        checked > 0,
        "at least some decisions away from the boundary"
    );
    handle.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Consistent routing never migrates a connection mid-stream: the
    /// shard is a pure function of the connection id, stable across any
    /// request sequence, in range for every shard count.
    #[test]
    fn routing_is_pure_stable_and_in_range(
        conn in any::<u64>(),
        shards in 1usize..64,
        probes in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        let first = shard_for(conn, shards);
        prop_assert!(first < shards);
        // Re-evaluating between arbitrary other routing queries (other
        // connections' traffic) never moves this connection.
        for other in probes {
            let _ = shard_for(other, shards);
            prop_assert_eq!(shard_for(conn, shards), first);
        }
    }

    /// Every shard is reachable: routing partitions the id space onto all
    /// shards (no dead shard, no out-of-range shard).
    #[test]
    fn routing_covers_all_shards(shards in 1usize..32) {
        let mut seen = vec![false; shards];
        for conn in 0..(shards as u64 * 4) {
            seen[shard_for(conn, shards)] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
