//! Load-generation clients for the decision service.
//!
//! Two complementary modes:
//!
//! * [`open_loop`] — arrivals follow an exponential inter-arrival process
//!   at a target QPS regardless of how fast the server answers (the
//!   honest way to measure latency under load: a closed loop hides
//!   queueing by self-throttling);
//! * [`closed_loop`] — each connection keeps a fixed window of requests
//!   outstanding, measuring the server's saturation throughput.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::json::Json;
use obs::trace::{derive_trace_id, hex16};
use rand::{RngExt, SeedableRng, StdRng};
use scenario::{FairnessReport, LoadProfile, TenantMetrics};
use workload::distributions::{Exponential, Sample};

use crate::protocol::{self, Response};
use crate::stats::LatencyHistogram;

/// Open-loop run parameters.
///
/// This is the legacy flag-level view; [`replay_profile`] accepts the
/// richer [`scenario::LoadProfile`] (phases, tenant mix) and [`open_loop`]
/// now delegates to it through [`LoadConfig::to_profile`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Aggregate target arrival rate across all connections.
    pub qps: f64,
    /// Sending duration in seconds.
    pub secs: f64,
    /// Parallel connections (arrivals are split evenly).
    pub conns: usize,
    /// RNG seed for inter-arrival times and feature payloads.
    pub seed: u64,
    /// Trace every Nth request (0 = tracing off): the sender stamps
    /// `derive_trace_id(seed, id)` on the wire and the receiver verifies
    /// the response echoes it bit-exactly.
    pub trace_sample: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            qps: 50_000.0,
            secs: 5.0,
            conns: 4,
            seed: 0,
            trace_sample: 0,
        }
    }
}

impl LoadConfig {
    /// The equivalent flat single-tenant [`LoadProfile`].
    pub fn to_profile(&self) -> LoadProfile {
        LoadProfile::steady(
            "open_loop",
            self.qps,
            self.secs,
            self.conns.clamp(1, u32::MAX as usize) as u32,
            self.seed,
        )
    }
}

/// Outcome of one load-generation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Human label (e.g. `open_loop` / `microbatch`).
    pub label: String,
    /// Target rate (0 for closed-loop runs).
    pub offered_qps: f64,
    /// Decisions per second actually completed.
    pub achieved_qps: f64,
    /// Requests sent.
    pub sent: u64,
    /// Decisions received.
    pub ok: u64,
    /// `overloaded` responses received.
    pub overloaded: u64,
    /// Any other error responses.
    pub errors: u64,
    /// Decisions that echoed the expected trace id (0 unless tracing).
    pub traced: u64,
    /// Traced decisions whose echoed trace id was wrong or missing.
    pub trace_mismatch: u64,
    /// First send → last response, seconds.
    pub elapsed_s: f64,
    /// Client-observed mean latency (µs; open loop only).
    pub mean_us: f64,
    /// Client-observed p50 latency (µs).
    pub p50_us: f64,
    /// Client-observed p95 latency (µs).
    pub p95_us: f64,
    /// Client-observed p99 latency (µs).
    pub p99_us: f64,
}

impl RunReport {
    /// The report as a JSON object (for `BENCH_serve.json`).
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("label".into(), Json::String(self.label.clone()));
        m.insert("offered_qps".into(), Json::Number(self.offered_qps));
        m.insert("achieved_qps".into(), Json::Number(self.achieved_qps));
        m.insert("sent".into(), Json::Number(self.sent as f64));
        m.insert("ok".into(), Json::Number(self.ok as f64));
        m.insert("overloaded".into(), Json::Number(self.overloaded as f64));
        m.insert("errors".into(), Json::Number(self.errors as f64));
        m.insert("traced".into(), Json::Number(self.traced as f64));
        m.insert(
            "trace_mismatch".into(),
            Json::Number(self.trace_mismatch as f64),
        );
        m.insert("elapsed_s".into(), Json::Number(self.elapsed_s));
        m.insert("mean_us".into(), Json::Number(self.mean_us));
        m.insert("p50_us".into(), Json::Number(self.p50_us));
        m.insert("p95_us".into(), Json::Number(self.p95_us));
        m.insert("p99_us".into(), Json::Number(self.p99_us));
        Json::Object(m)
    }
}

/// Fetch the server's stats snapshot over the wire.
pub fn query_stats(addr: &str) -> Result<Json, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(b"{\"verb\":\"stats\"}\n")
        .map_err(|e| format!("send stats: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read stats: {e}"))?;
    match protocol::parse_response(line.trim())? {
        Response::Stats(s) => Ok(s),
        other => Err(format!("expected stats reply, got {other:?}")),
    }
}

/// The loaded model's feature dimension, read from the `stats` verb.
pub fn query_input_dim(addr: &str) -> Result<usize, String> {
    query_stats(addr)?
        .get("input_dim")
        .and_then(Json::as_f64)
        .map(|x| x as usize)
        .ok_or_else(|| "stats reply missing input_dim".into())
}

/// Ask the server to drain and exit.
pub fn send_shutdown(addr: &str) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(b"{\"verb\":\"shutdown\"}\n")
        .map_err(|e| format!("send shutdown: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let _ = reader.read_line(&mut line);
    Ok(())
}

/// Pre-rendered infer-line payload pool so the send path does no float
/// formatting.
fn payload_pool(dim: usize, rng: &mut StdRng) -> Vec<String> {
    (0..64)
        .map(|_| {
            (0..dim)
                .map(|_| format!("{}", rng.random_range(-1.0f32..1.0)))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect()
}

/// Sleep-then-spin until the deadline; plain `sleep` oversleeps by more
/// than an inter-arrival gap at tens of kQPS.
fn wait_until(t: Instant) {
    loop {
        let now = Instant::now();
        if now >= t {
            return;
        }
        let left = t - now;
        if left > Duration::from_millis(1) {
            std::thread::sleep(left - Duration::from_micros(500));
        } else {
            // Yield rather than spin: on small machines a spinning sender
            // starves the very server it is measuring.
            std::thread::yield_now();
        }
    }
}

struct ConnOutcome {
    sent: u64,
    ok: u64,
    overloaded: u64,
    errors: u64,
    traced: u64,
    trace_mismatch: u64,
    last_response_ns: u64,
}

/// The trace id request `id` must carry (and its decision must echo)
/// under `trace_sample`-rate sampling, or 0 for an untraced request.
/// Sender and receiver both compute this, so nothing extra rides the wire
/// and a dropped or corrupted echo is detectable.
fn expected_trace(trace_sample: u64, seed: u64, id: u64) -> u64 {
    if trace_sample > 0 && id.is_multiple_of(trace_sample) {
        derive_trace_id(seed, id)
    } else {
        0
    }
}

/// Drive `cfg.qps` exponential arrivals at the server for `cfg.secs`
/// seconds and report client-observed latency quantiles.
pub fn open_loop(addr: &str, cfg: &LoadConfig) -> Result<RunReport, String> {
    let (report, _) = profile_run(addr, &cfg.to_profile(), 1, "open_loop", cfg.trace_sample)?;
    Ok(report)
}

/// Replay a [`LoadProfile`] open-loop against a server with `shards`
/// engine shards and report both the aggregate latency numbers and a
/// per-tenant [`FairnessReport`].
///
/// The connection count is [`LoadProfile::balanced_conns`] — rounded up to
/// a multiple of the shard count so the engine's `conn_id % shards`
/// pinning loads every shard with the same number of connections; the
/// tenant mix rides on deterministic request-id attribution
/// ([`LoadProfile::tenant_for`]) instead of on connection placement, so an
/// uneven mix cannot skew per-shard batch statistics.
pub fn replay_profile(
    addr: &str,
    profile: &LoadProfile,
    shards: usize,
    trace_sample: u64,
) -> Result<(RunReport, FairnessReport), String> {
    let label = format!("replay:{}", profile.name);
    profile_run(addr, profile, shards, &label, trace_sample)
}

/// The shared open-loop driver behind [`open_loop`] and [`replay_profile`]:
/// per-connection exponential arrivals thinned through the profile's phase
/// histogram, with per-tenant latency recording.
fn profile_run(
    addr: &str,
    profile: &LoadProfile,
    shards: usize,
    label: &str,
    trace_sample: u64,
) -> Result<(RunReport, FairnessReport), String> {
    profile.validate().map_err(|e| e.to_string())?;
    // Fetch the model dimension on a dedicated connection BEFORE opening
    // the load connections: with conns >= workers, long-lived load
    // connections occupy the whole worker pool and a stats connection
    // opened afterwards would starve behind them.
    let dim = query_input_dim(addr)?;
    let n_tenants = profile.tenants.len().max(1);
    let hist = Arc::new(LatencyHistogram::new());
    let tenant_hists: Arc<Vec<LatencyHistogram>> =
        Arc::new((0..n_tenants).map(|_| LatencyHistogram::new()).collect());
    let profile = Arc::new(profile.clone());
    let t0 = Instant::now();
    let conns = profile.balanced_conns(shards) as usize;
    let per_conn_qps = profile.qps / conns as f64;
    let peak_mult = profile.phases.iter().copied().fold(1.0f64, f64::max);
    // Generous id-space bound per connection; senders stop at the cap.
    let cap = ((per_conn_qps * profile.secs * 2.0 * peak_mult) as usize).max(1024);

    let mut handles = Vec::new();
    for c in 0..conns {
        let addr = addr.to_string();
        let hist = Arc::clone(&hist);
        let tenant_hists = Arc::clone(&tenant_hists);
        let profile = Arc::clone(&profile);
        // Globally disjoint id ranges per connection: tenant attribution
        // hashes the request id, so ids must not repeat across connections.
        let base_id = (c * cap) as u64;
        handles.push(std::thread::spawn(
            move || -> Result<ConnOutcome, String> {
                let stream =
                    TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
                stream.set_nodelay(true).ok();
                let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
                let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);

                let sent_at: Arc<Vec<AtomicU64>> =
                    Arc::new((0..cap).map(|_| AtomicU64::new(0)).collect());
                let recv_hist = Arc::clone(&hist);
                let recv_tenant_hists = Arc::clone(&tenant_hists);
                let recv_profile = Arc::clone(&profile);
                let recv_sent_at = Arc::clone(&sent_at);
                let profile_seed = profile.seed;
                let receiver = std::thread::spawn(move || {
                    let mut ok = 0u64;
                    let mut overloaded = 0u64;
                    let mut errors = 0u64;
                    let mut traced = 0u64;
                    let mut trace_mismatch = 0u64;
                    let mut last_ns = 0u64;
                    let mut reader = reader;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                        match protocol::parse_response(line.trim()) {
                            Ok(Response::Decision { id, trace, .. }) => {
                                // Round-trip check: the decision must echo
                                // exactly the id this request was stamped
                                // with (0 for unsampled requests).
                                let want = expected_trace(trace_sample, profile_seed, id);
                                if trace != want {
                                    trace_mismatch += 1;
                                } else if want != 0 {
                                    traced += 1;
                                }
                                let now_ns = t0.elapsed().as_nanos() as u64;
                                let sent_ns = id
                                    .checked_sub(base_id)
                                    .and_then(|slot| recv_sent_at.get(slot as usize))
                                    .map(|a| a.load(Ordering::Relaxed))
                                    .unwrap_or(now_ns);
                                let lat = now_ns.saturating_sub(sent_ns);
                                recv_hist.record(lat);
                                // Same id → tenant mapping as the sender
                                // side; nothing rides the wire.
                                let tenant = recv_profile.tenant_for(id);
                                recv_tenant_hists[tenant.min(recv_tenant_hists.len() - 1)]
                                    .record(lat);
                                last_ns = now_ns;
                                ok += 1;
                            }
                            Ok(Response::Error { code, .. }) => {
                                if code == protocol::ERR_OVERLOADED {
                                    overloaded += 1;
                                } else {
                                    errors += 1;
                                }
                                last_ns = t0.elapsed().as_nanos() as u64;
                            }
                            _ => errors += 1,
                        }
                    }
                    (ok, overloaded, errors, traced, trace_mismatch, last_ns)
                });

                let mut rng = StdRng::seed_from_u64(profile.seed.wrapping_add(c as u64));
                let pool = payload_pool(dim, &mut rng);
                let gap = Exponential::with_mean(1.0 / per_conn_qps.max(1e-9));
                let mut t = 0.0f64;
                let mut sent = 0u64;
                let mut line = String::with_capacity(128);
                while t0.elapsed().as_secs_f64() < profile.secs && (sent as usize) < cap {
                    // Inhomogeneous arrivals: stretch the exponential gap
                    // by the inverse phase multiplier at the current point
                    // of the run (a drained phase ≈ no arrivals).
                    let mult = profile.phase_multiplier(t / profile.secs).max(1e-3);
                    t += gap.sample(&mut rng) / mult;
                    if t >= profile.secs {
                        break;
                    }
                    wait_until(t0 + Duration::from_secs_f64(t));
                    let slot = sent as usize;
                    let id = base_id + sent;
                    line.clear();
                    line.push_str("{\"verb\":\"infer\",\"id\":");
                    line.push_str(&id.to_string());
                    line.push_str(",\"features\":[");
                    line.push_str(&pool[slot % pool.len()]);
                    line.push(']');
                    let trace = expected_trace(trace_sample, profile.seed, id);
                    if trace != 0 {
                        line.push_str(",\"trace\":\"");
                        line.push_str(&hex16(trace));
                        line.push('"');
                    }
                    line.push_str("}\n");
                    sent_at[slot].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    if writer.write_all(line.as_bytes()).is_err() {
                        break;
                    }
                    sent += 1;
                }
                let _ = stream.shutdown(Shutdown::Write);
                let (ok, overloaded, errors, traced, trace_mismatch, last_ns) =
                    receiver.join().map_err(|_| "receiver thread panicked")?;
                Ok(ConnOutcome {
                    sent,
                    ok,
                    overloaded,
                    errors,
                    traced,
                    trace_mismatch,
                    last_response_ns: last_ns,
                })
            },
        ));
    }

    let mut sent = 0;
    let mut ok = 0;
    let mut overloaded = 0;
    let mut errors = 0;
    let mut traced = 0;
    let mut trace_mismatch = 0;
    let mut last_ns = 0u64;
    for h in handles {
        let o = h.join().map_err(|_| "sender thread panicked")??;
        sent += o.sent;
        ok += o.ok;
        overloaded += o.overloaded;
        errors += o.errors;
        traced += o.traced;
        trace_mismatch += o.trace_mismatch;
        last_ns = last_ns.max(o.last_response_ns);
    }
    let elapsed_s = (last_ns as f64 / 1e9).max(1e-9);
    let report = RunReport {
        label: label.to_string(),
        offered_qps: profile.qps,
        achieved_qps: ok as f64 / elapsed_s,
        sent,
        ok,
        overloaded,
        errors,
        traced,
        trace_mismatch,
        elapsed_s,
        mean_us: hist.mean() / 1_000.0,
        p50_us: hist.quantile(0.50) as f64 / 1_000.0,
        p95_us: hist.quantile(0.95) as f64 / 1_000.0,
        p99_us: hist.quantile(0.99) as f64 / 1_000.0,
    };

    let rows: Vec<TenantMetrics> = (0..n_tenants)
        .map(|i| {
            let name = profile
                .tenants
                .get(i)
                .map(|t| t.name.clone())
                .unwrap_or_else(|| "(all)".to_string());
            let h = &tenant_hists[i];
            TenantMetrics {
                name,
                jobs: h.count(),
                mean_wait_s: h.mean() / 1e9,
                p99_wait_s: h.quantile(0.99) as f64 / 1e9,
                mean_bsld: 0.0,
                p99_bsld: 0.0,
            }
        })
        .collect();
    let fairness = FairnessReport::from_rows(profile.name.clone(), "serve", rows);
    Ok((report, fairness))
}

/// Saturate the server: each connection keeps `window` requests in flight
/// for `secs` seconds. Reports capacity (achieved QPS) plus real
/// per-request latency quantiles: each request is timestamped at send and
/// matched to its in-order response (the protocol guarantees per-connection
/// FIFO), so capacity cases report the same histogram fields as open-loop
/// runs instead of zeros.
pub fn closed_loop(
    addr: &str,
    window: usize,
    conns: usize,
    secs: f64,
    seed: u64,
    trace_sample: u64,
) -> Result<RunReport, String> {
    let dim = query_input_dim(addr)?; // before the load connections; see open_loop
    let hist = Arc::new(LatencyHistogram::new());
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..conns.max(1) {
        let addr = addr.to_string();
        let hist = Arc::clone(&hist);
        // Ids restart at 0 on every connection, so decorrelate the trace
        // ids with a per-connection seed offset.
        let trace_seed = seed.wrapping_add((c as u64) << 32);
        handles.push(std::thread::spawn(
            move || -> Result<(u64, u64, u64, u64, u64), String> {
                let stream =
                    TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
                stream.set_nodelay(true).ok();
                let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
                let mut reader = BufReader::new(stream);
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(c as u64));
                let pool = payload_pool(dim, &mut rng);

                let mut batch = String::with_capacity(window * 96);
                // (send ns, expected trace id) for in-flight requests;
                // responses arrive in submission order per connection, so
                // front-of-queue always matches the next response line.
                let mut in_flight: std::collections::VecDeque<(u64, u64)> =
                    std::collections::VecDeque::with_capacity(window.max(1));
                let mut ok = 0u64;
                let mut other = 0u64;
                let mut traced = 0u64;
                let mut trace_mismatch = 0u64;
                let mut sent = 0u64;
                let mut line = String::new();
                while t0.elapsed().as_secs_f64() < secs {
                    batch.clear();
                    in_flight.clear();
                    for _ in 0..window.max(1) {
                        batch.push_str("{\"verb\":\"infer\",\"id\":");
                        batch.push_str(&sent.to_string());
                        batch.push_str(",\"features\":[");
                        batch.push_str(&pool[sent as usize % pool.len()]);
                        batch.push(']');
                        let want = expected_trace(trace_sample, trace_seed, sent);
                        if want != 0 {
                            batch.push_str(",\"trace\":\"");
                            batch.push_str(&hex16(want));
                            batch.push('"');
                        }
                        batch.push_str("}\n");
                        sent += 1;
                        in_flight.push_back((t0.elapsed().as_nanos() as u64, want));
                    }
                    writer
                        .write_all(batch.as_bytes())
                        .map_err(|e| format!("send batch: {e}"))?;
                    for _ in 0..window.max(1) {
                        line.clear();
                        if matches!(reader.read_line(&mut line), Ok(0) | Err(_)) {
                            return Ok((sent, ok, other, traced, trace_mismatch));
                        }
                        let sent_rec = in_flight.pop_front();
                        match protocol::parse_response(line.trim()) {
                            Ok(Response::Decision { trace, .. }) => {
                                let now_ns = t0.elapsed().as_nanos() as u64;
                                if let Some((s, want)) = sent_rec {
                                    hist.record(now_ns.saturating_sub(s));
                                    if trace != want {
                                        trace_mismatch += 1;
                                    } else if want != 0 {
                                        traced += 1;
                                    }
                                }
                                ok += 1;
                            }
                            _ => other += 1,
                        }
                    }
                }
                Ok((sent, ok, other, traced, trace_mismatch))
            },
        ));
    }

    let mut sent = 0;
    let mut ok = 0;
    let mut other = 0;
    let mut traced = 0;
    let mut trace_mismatch = 0;
    for h in handles {
        let (s, o, e, t, m) = h.join().map_err(|_| "closed-loop thread panicked")??;
        sent += s;
        ok += o;
        other += e;
        traced += t;
        trace_mismatch += m;
    }
    let elapsed_s = t0.elapsed().as_secs_f64().max(1e-9);
    Ok(RunReport {
        label: "closed_loop".into(),
        offered_qps: 0.0,
        achieved_qps: ok as f64 / elapsed_s,
        sent,
        ok,
        overloaded: 0,
        errors: other,
        traced,
        trace_mismatch,
        elapsed_s,
        mean_us: hist.mean() / 1_000.0,
        p50_us: hist.quantile(0.50) as f64 / 1_000.0,
        p95_us: hist.quantile(0.95) as f64 / 1_000.0,
        p99_us: hist.quantile(0.99) as f64 / 1_000.0,
    })
}
