//! **serve** — a std-only TCP decision service for trained inspectors.
//!
//! Loads a [`SchedInspector`](inspector::SchedInspector) checkpoint and
//! answers accept/reject queries over line-delimited JSON (the protocol is
//! specified in [`protocol`]). The stack is three layers, each with
//! explicit backpressure:
//!
//! 1. an acceptor thread feeding a **bounded** connection backlog drained
//!    by a fixed pool of connection-handler threads;
//! 2. a single-threaded **micro-batching** inference engine
//!    ([`engine::BatchEngine`]) that drains up to `max_batch` queued
//!    requests per tick into scratch-buffer forward passes — batching
//!    amortizes queue synchronization, which dominates per-request cost
//!    for an MLP this small;
//! 3. always-on service stats ([`stats::ServerStats`]) exposed via the
//!    `stats` protocol verb, plus optional [`obs`] telemetry sidecars.
//!
//! Shutdown is graceful: a [`server::ShutdownSignal`] stops the acceptor
//! (woken through a loopback "wake pipe" connection), workers notice
//! within one read-timeout tick, and the engine finishes everything
//! already queued before its thread exits.
//!
//! The [`loadgen`] module (and the `loadgen` binary) drives a running
//! server with open-loop arrivals at a target QPS and writes a
//! `BENCH_serve.json` throughput/latency report.
//!
//! # Quickstart
//!
//! ```no_run
//! use serve::{serve, ServeConfig};
//!
//! let inspector = inspector::model_io::load("model.txt".as_ref()).unwrap();
//! let handle = serve(inspector, ServeConfig::default(), obs::Telemetry::disabled()).unwrap();
//! println!("listening on {}", handle.addr());
//! handle.wait(); // until a client sends {"verb":"shutdown"}
//! ```

pub mod engine;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod transport;

pub use engine::{shard_for, BatchEngine, Completion, EngineConfig, SubmitError};
pub use loadgen::{replay_profile, LoadConfig, RunReport};
pub use server::{serve, serve_with, ServeConfig, ServerHandle, ShutdownSignal, TraceConfig};
pub use stats::{LatencyHistogram, ServerStats, ShardStats};
pub use transport::{AcceptPolicy, DirectAccept, Transport};
