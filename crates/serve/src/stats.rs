//! Always-on service counters and latency histograms.
//!
//! Every live request path touches only atomics here, so keeping the stats
//! hot costs a handful of relaxed updates per request — cheap enough to
//! never switch off. The state itself now lives in a shared
//! [`obs::Registry`]: each field is a registry handle, so the `stats`
//! protocol verb and the `/metrics` exposition endpoint snapshot the *same*
//! atomics — there is no second copy to drift. `obs` telemetry (when
//! enabled) additionally streams per-batch events to a sidecar.
//!
//! The HDR-style histogram previously defined here moved to
//! [`obs::hist::LogLinearHistogram`]; the old name is re-exported for
//! compatibility. Latencies are recorded in nanosecond ticks
//! ([`obs::Histogram::observe_ticks`]), which the exposition layer scales
//! to seconds.

use std::collections::BTreeMap;
use std::sync::Arc;

use obs::json::Json;
use obs::{Counter, Gauge, Histogram, Registry};

/// The serve daemon's latency histogram type (moved to `obs`, re-exported
/// here for compatibility). Values are nanosecond ticks; the old `_ns`
/// method names are now unit-agnostic ([`LatencyHistogram::mean`],
/// [`LatencyHistogram::quantile`]).
pub use obs::LogLinearHistogram as LatencyHistogram;

/// Summary object for a nanosecond-ticks histogram handle: count, mean and
/// key quantiles in microseconds.
fn hist_json(h: &Histogram) -> Json {
    let us = |ticks: u64| Json::Number(ticks as f64 / 1_000.0);
    let mut m = BTreeMap::new();
    m.insert("count".into(), Json::Number(h.count() as f64));
    m.insert("mean_us".into(), Json::Number(h.mean_ticks() / 1_000.0));
    m.insert("p50_us".into(), us(h.quantile_ticks(0.50)));
    m.insert("p95_us".into(), us(h.quantile_ticks(0.95)));
    m.insert("p99_us".into(), us(h.quantile_ticks(0.99)));
    Json::Object(m)
}

/// Per-shard engine counters, registered under `serve.shard{N}.*` so
/// `/metrics` and the `stats` verb show shard balance. Summed across
/// shards these reconcile exactly with the global engine counters — the
/// sharding test suite asserts it.
#[derive(Debug)]
pub struct ShardStats {
    /// Decisions this shard returned.
    pub ok: Counter,
    /// Requests that expired on this shard's queue.
    pub deadline_exceeded: Counter,
    /// Submissions this shard refused with backpressure.
    pub overloaded: Counter,
    /// Inference batches this shard executed.
    pub batches: Counter,
    /// Requests served through this shard's batches.
    pub batched_requests: Counter,
    /// Current queued-request depth on this shard.
    pub queue_depth: Gauge,
    /// Executed batch sizes (a count histogram, not a latency).
    pub batch_size: Histogram,
}

impl ShardStats {
    fn new(r: &Registry, idx: usize) -> ShardStats {
        // Registry handles want `&'static str` names; shard counts are
        // small and fixed for the process lifetime, so a one-time leak per
        // metric name is the simplest correct answer.
        let name = |suffix: &str| -> &'static str {
            Box::leak(format!("serve.shard{idx}.{suffix}").into_boxed_str())
        };
        ShardStats {
            ok: r.counter(name("ok"), "decisions returned by this shard"),
            deadline_exceeded: r.counter(
                name("deadline_exceeded"),
                "requests expired on this shard's queue",
            ),
            overloaded: r.counter(
                name("overloaded"),
                "submissions refused by this shard with backpressure",
            ),
            batches: r.counter(name("batches"), "inference batches executed by this shard"),
            batched_requests: r.counter(
                name("batched_requests"),
                "requests served through this shard's batches",
            ),
            queue_depth: r.gauge(name("queue_depth"), "queued requests on this shard"),
            batch_size: r.histogram(name("batch_size"), "executed batch sizes on this shard"),
        }
    }

    /// Mean executed batch size on this shard (0 when no batch ran yet).
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.batches.get();
        if batches == 0 {
            0.0
        } else {
            self.batched_requests.get() as f64 / batches as f64
        }
    }

    fn to_json(&self) -> Json {
        let n = |c: &Counter| Json::Number(c.get() as f64);
        let mut m = BTreeMap::new();
        m.insert("ok".into(), n(&self.ok));
        m.insert("deadline_exceeded".into(), n(&self.deadline_exceeded));
        m.insert("overloaded".into(), n(&self.overloaded));
        m.insert("batches".into(), n(&self.batches));
        m.insert("batched_requests".into(), n(&self.batched_requests));
        m.insert(
            "mean_batch_size".into(),
            Json::Number(self.mean_batch_size()),
        );
        m.insert("queue_depth".into(), Json::Number(self.queue_depth.get()));
        Json::Object(m)
    }
}

/// Shared, always-on service metrics. One instance per server; every field
/// is a cheaply-cloneable [`obs::Registry`] handle updated with relaxed
/// atomics on the request path and read by both the `stats` verb and the
/// `/metrics` endpoint.
#[derive(Debug)]
pub struct ServerStats {
    /// Feature-vector length the loaded model expects (constant).
    pub input_dim: usize,
    /// Configured micro-batch cap (constant).
    pub max_batch: usize,
    /// Infer requests received (including ones later rejected).
    pub requests: Counter,
    /// Decisions successfully returned.
    pub ok: Counter,
    /// Requests rejected with `overloaded` backpressure (inference queue
    /// full). Together with `ok`, `deadline_exceeded`, `bad_dim` and
    /// `draining_rejected` this partitions `requests` exactly once the
    /// server has drained — the ledger the chaos harness reconciles.
    pub overloaded: Counter,
    /// Connections refused at accept time because the worker-pool backlog
    /// was full (these never became requests).
    pub accept_overloaded: Counter,
    /// Requests that missed their deadline while queued.
    pub deadline_exceeded: Counter,
    /// Lines that failed to parse or validate.
    pub malformed: Counter,
    /// Infer requests whose feature vector had the wrong length (also
    /// counted in `malformed`; split out so the request ledger balances).
    pub bad_dim: Counter,
    /// Infer requests refused because the server was draining.
    pub draining_rejected: Counter,
    /// Server threads that exited by panic (incremented at join time;
    /// must stay 0 under any fault sequence).
    pub thread_panics: Counter,
    /// Connections accepted.
    pub connections: Counter,
    /// Inference batches executed.
    pub batches: Counter,
    /// Requests served through batches (sum of batch sizes).
    pub batched_requests: Counter,
    /// Current queued-request depth (gauge, updated by the engine).
    pub queue_depth: Gauge,
    /// Generation of the model currently serving decisions. Advances on
    /// every hot-swap; the chaos harness asserts it moved while the
    /// request ledger stayed exact.
    pub model_generation: Gauge,
    /// Successful model hot-swaps since startup.
    pub model_swaps: Counter,
    /// Model updates that failed validation (dimension mismatch, stale
    /// generation, unreadable/corrupt checkpoint text).
    pub model_swap_errors: Counter,
    /// End-to-end latency in ns ticks: enqueue → decision produced.
    pub e2e: Histogram,
    /// Inference-only latency in ns ticks of each executed batch.
    pub infer_batch: Histogram,
    /// Per-shard engine counters (`serve.shard{N}.*`); their sums
    /// reconcile with the global counters above.
    pub shards: Vec<ShardStats>,
    registry: Arc<Registry>,
}

impl ServerStats {
    /// Fresh stats for a server with the given constants, registered into
    /// a private registry. Use [`ServerStats::with_registry`] to share one
    /// with a `/metrics` endpoint.
    pub fn new(input_dim: usize, max_batch: usize) -> Self {
        Self::sharded(input_dim, max_batch, 1)
    }

    /// Fresh stats with `shards` per-shard blocks, in a private registry.
    pub fn sharded(input_dim: usize, max_batch: usize, shards: usize) -> Self {
        Self::with_registry(Arc::new(Registry::new()), input_dim, max_batch, shards)
    }

    /// Fresh stats registered into `registry` under the `serve.*`
    /// namespace, so an exposition endpoint rendering that registry serves
    /// the exact atomics the request path updates.
    pub fn with_registry(
        registry: Arc<Registry>,
        input_dim: usize,
        max_batch: usize,
        shards: usize,
    ) -> Self {
        let r = &registry;
        ServerStats {
            shards: (0..shards.max(1)).map(|i| ShardStats::new(r, i)).collect(),
            input_dim,
            max_batch,
            requests: r.counter("serve.requests", "infer requests received"),
            ok: r.counter("serve.ok", "decisions successfully returned"),
            overloaded: r.counter("serve.overloaded", "requests rejected with backpressure"),
            accept_overloaded: r.counter(
                "serve.accept_overloaded",
                "connections refused at accept time (backlog full)",
            ),
            deadline_exceeded: r.counter(
                "serve.deadline_exceeded",
                "requests that missed their deadline while queued",
            ),
            malformed: r.counter("serve.malformed", "lines that failed to parse or validate"),
            bad_dim: r.counter(
                "serve.bad_dim",
                "infer requests with a wrong-length feature vector",
            ),
            draining_rejected: r.counter(
                "serve.draining_rejected",
                "infer requests refused because the server was draining",
            ),
            thread_panics: r.counter("serve.thread_panics", "server threads that exited by panic"),
            connections: r.counter("serve.connections", "connections accepted"),
            batches: r.counter("serve.batches", "inference batches executed"),
            batched_requests: r.counter(
                "serve.batched_requests",
                "requests served through batches (sum of batch sizes)",
            ),
            queue_depth: r.gauge("serve.queue_depth", "current queued-request depth"),
            model_generation: r.gauge(
                "serve.model.generation",
                "generation of the model currently serving decisions",
            ),
            model_swaps: r.counter("serve.model.swaps", "successful model hot-swaps"),
            model_swap_errors: r.counter(
                "serve.model.swap_errors",
                "model updates that failed validation",
            ),
            e2e: r.histogram(
                "serve.e2e_seconds",
                "end-to-end latency, enqueue to decision",
            ),
            infer_batch: r.histogram(
                "serve.infer_batch_seconds",
                "inference-only latency per executed batch",
            ),
            registry,
        }
    }

    /// The registry backing these stats (share it with a
    /// [`obs::MetricsExporter`] to expose `/metrics`).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Sum of every terminal request outcome. After the server drains,
    /// this equals `requests` exactly — every accepted infer request got
    /// exactly one decision or one typed error. The chaos harness asserts
    /// this under arbitrary fault sequences.
    pub fn accounted_requests(&self) -> u64 {
        self.ok.get()
            + self.deadline_exceeded.get()
            + self.overloaded.get()
            + self.bad_dim.get()
            + self.draining_rejected.get()
    }

    /// Mean executed batch size (0 when no batch ran yet).
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.batches.get();
        if batches == 0 {
            0.0
        } else {
            self.batched_requests.get() as f64 / batches as f64
        }
    }

    /// Snapshot the whole stats block as the `stats` verb's payload.
    pub fn to_json(&self) -> Json {
        let n = |c: &Counter| Json::Number(c.get() as f64);
        let mut m = BTreeMap::new();
        m.insert("input_dim".into(), Json::Number(self.input_dim as f64));
        m.insert("max_batch".into(), Json::Number(self.max_batch as f64));
        m.insert("requests".into(), n(&self.requests));
        m.insert("ok".into(), n(&self.ok));
        m.insert("overloaded".into(), n(&self.overloaded));
        m.insert("accept_overloaded".into(), n(&self.accept_overloaded));
        m.insert("deadline_exceeded".into(), n(&self.deadline_exceeded));
        m.insert("malformed".into(), n(&self.malformed));
        m.insert("bad_dim".into(), n(&self.bad_dim));
        m.insert("draining_rejected".into(), n(&self.draining_rejected));
        m.insert("thread_panics".into(), n(&self.thread_panics));
        m.insert("connections".into(), n(&self.connections));
        m.insert("batches".into(), n(&self.batches));
        m.insert("batched_requests".into(), n(&self.batched_requests));
        m.insert(
            "mean_batch_size".into(),
            Json::Number(self.mean_batch_size()),
        );
        m.insert("queue_depth".into(), Json::Number(self.queue_depth.get()));
        m.insert(
            "model_generation".into(),
            Json::Number(self.model_generation.get()),
        );
        m.insert("model_swaps".into(), n(&self.model_swaps));
        m.insert("e2e".into(), hist_json(&self.e2e));
        m.insert("infer_batch".into(), hist_json(&self.infer_batch));
        m.insert(
            "shards".into(),
            Json::Array(self.shards.iter().map(ShardStats::to_json).collect()),
        );
        Json::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_snapshot_is_valid_json_with_all_fields() {
        let s = ServerStats::new(8, 16);
        s.requests.add(3);
        s.e2e.observe_ticks(42_000);
        let mut text = String::new();
        s.to_json().write_json(&mut text);
        let v = obs::json::parse(&text).expect("stats serialize to valid JSON");
        assert_eq!(v.get("input_dim").and_then(Json::as_f64), Some(8.0));
        assert_eq!(v.get("requests").and_then(Json::as_f64), Some(3.0));
        assert!(v.get("e2e").and_then(|e| e.get("count")).is_some());
    }

    #[test]
    fn stats_verb_and_metrics_exposition_read_the_same_atomics() {
        let s = ServerStats::new(4, 8);
        s.requests.add(7);
        s.queue_depth.set(3.0);
        s.e2e.observe_ticks(1_000_000); // 1ms
        let mut metrics = String::new();
        s.registry().render(&mut metrics);
        assert!(metrics.contains("schedinspector_serve_requests_total 7"));
        assert!(metrics.contains("schedinspector_serve_queue_depth 3"));
        assert!(metrics.contains("# TYPE schedinspector_serve_e2e_seconds histogram"));
        // The verb snapshot agrees, because it is the same storage.
        let json = s.to_json();
        assert_eq!(json.get("requests").and_then(Json::as_f64), Some(7.0));
        assert_eq!(json.get("queue_depth").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn latency_histogram_reexport_still_works() {
        let h = LatencyHistogram::new();
        h.record(42_000);
        assert_eq!(h.count(), 1);
        assert!(h.mean() > 0.0);
        assert!(h.quantile(0.99) >= 42_000 / 2);
    }
}
