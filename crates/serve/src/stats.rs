//! Always-on service counters and latency histograms.
//!
//! Every live request path touches only atomics here, so keeping the stats
//! hot costs a handful of relaxed `fetch_add`s per request — cheap enough
//! to never switch off. The `stats` protocol verb serializes a snapshot of
//! this state; `obs` telemetry (when enabled) additionally streams
//! per-batch events to a sidecar.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use obs::json::Json;

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per power-of-two
/// octave, bounding the relative quantile error at 12.5%.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Enough buckets for the full `u64` nanosecond range (index ≤ 495).
const BUCKETS: usize = 512;

/// A lock-free log-linear histogram of nanosecond latencies (HDR-style:
/// power-of-two octaves split into [`SUB`] linear sub-buckets). Recording
/// is one relaxed increment; quantiles are read from a snapshot sweep.
pub struct LatencyHistogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - u64::from(v.leading_zeros());
        let shift = msb - u64::from(SUB_BITS);
        let sub = (v >> shift) - SUB;
        ((shift + 1) * SUB + sub) as usize
    }
}

/// Largest value that lands in bucket `i` (the reported quantile bound).
/// Computed in `u128`: the top few of the 512 indices are unreachable from
/// any `u64` input and would overflow a `u64` shift.
fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        i
    } else {
        let shift = i / SUB - 1;
        let sub = i % SUB;
        let hi = u128::from(SUB + sub + 1) << shift;
        (hi - 1).min(u128::from(u64::MAX)) as u64
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one latency sample, in nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// The `q`-quantile in nanoseconds (upper bound of the bucket the
    /// quantile falls in; 0 when empty). `q` is clamped to `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Summary object for the `stats` verb: count, mean and key quantiles
    /// in microseconds.
    pub fn to_json(&self) -> Json {
        let us = |ns: u64| Json::Number(ns as f64 / 1_000.0);
        let mut m = BTreeMap::new();
        m.insert("count".into(), Json::Number(self.count() as f64));
        m.insert("mean_us".into(), Json::Number(self.mean_ns() / 1_000.0));
        m.insert("p50_us".into(), us(self.quantile_ns(0.50)));
        m.insert("p95_us".into(), us(self.quantile_ns(0.95)));
        m.insert("p99_us".into(), us(self.quantile_ns(0.99)));
        Json::Object(m)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("mean_ns", &self.mean_ns())
            .finish()
    }
}

/// Shared, always-on service metrics. One instance per server; every field
/// is updated with relaxed atomics on the request path and read by the
/// `stats` verb.
#[derive(Debug)]
pub struct ServerStats {
    /// Feature-vector length the loaded model expects (constant).
    pub input_dim: usize,
    /// Configured micro-batch cap (constant).
    pub max_batch: usize,
    /// Infer requests received (including ones later rejected).
    pub requests: AtomicU64,
    /// Decisions successfully returned.
    pub ok: AtomicU64,
    /// Requests rejected with `overloaded` backpressure.
    pub overloaded: AtomicU64,
    /// Requests that missed their deadline while queued.
    pub deadline_exceeded: AtomicU64,
    /// Lines that failed to parse or validate.
    pub malformed: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Inference batches executed.
    pub batches: AtomicU64,
    /// Requests served through batches (sum of batch sizes).
    pub batched_requests: AtomicU64,
    /// Current queued-request depth (gauge, updated by the engine).
    pub queue_depth: AtomicU64,
    /// End-to-end latency: enqueue → decision produced.
    pub e2e: LatencyHistogram,
    /// Inference-only latency of each executed batch.
    pub infer_batch: LatencyHistogram,
}

impl ServerStats {
    /// Fresh zeroed stats for a server with the given constants.
    pub fn new(input_dim: usize, max_batch: usize) -> Self {
        ServerStats {
            input_dim,
            max_batch,
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            e2e: LatencyHistogram::new(),
            infer_batch: LatencyHistogram::new(),
        }
    }

    /// Mean executed batch size (0 when no batch ran yet).
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.batches.load(Ordering::Relaxed);
        if batches == 0 {
            0.0
        } else {
            self.batched_requests.load(Ordering::Relaxed) as f64 / batches as f64
        }
    }

    /// Snapshot the whole stats block as the `stats` verb's payload.
    pub fn to_json(&self) -> Json {
        let n = |v: &AtomicU64| Json::Number(v.load(Ordering::Relaxed) as f64);
        let mut m = BTreeMap::new();
        m.insert("input_dim".into(), Json::Number(self.input_dim as f64));
        m.insert("max_batch".into(), Json::Number(self.max_batch as f64));
        m.insert("requests".into(), n(&self.requests));
        m.insert("ok".into(), n(&self.ok));
        m.insert("overloaded".into(), n(&self.overloaded));
        m.insert("deadline_exceeded".into(), n(&self.deadline_exceeded));
        m.insert("malformed".into(), n(&self.malformed));
        m.insert("connections".into(), n(&self.connections));
        m.insert("batches".into(), n(&self.batches));
        m.insert("batched_requests".into(), n(&self.batched_requests));
        m.insert(
            "mean_batch_size".into(),
            Json::Number(self.mean_batch_size()),
        );
        m.insert("queue_depth".into(), n(&self.queue_depth));
        m.insert("e2e".into(), self.e2e.to_json());
        m.insert("infer_batch".into(), self.infer_batch.to_json());
        Json::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        let mut v = 0u64;
        while v < 1 << 40 {
            let i = bucket_index(v);
            assert!(i >= last, "index regressed at {v}");
            assert!(i < BUCKETS);
            last = i;
            v = v * 2 + 1;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_upper_bounds_its_own_bucket() {
        // Indices past bucket_index(u64::MAX) can't be hit by any input.
        for i in 0..=bucket_index(u64::MAX) {
            let hi = bucket_upper(i);
            assert_eq!(bucket_index(hi), i, "upper({i}) = {hi}");
            if hi < u64::MAX {
                assert!(bucket_index(hi + 1) > i);
            }
        }
    }

    #[test]
    fn quantiles_bracket_known_distribution() {
        let h = LatencyHistogram::new();
        // 1..=1000 µs, uniform.
        for us in 1..=1000u64 {
            h.record(us * 1_000);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_ns(0.50) as f64 / 1_000.0;
        let p99 = h.quantile_ns(0.99) as f64 / 1_000.0;
        // Log-linear buckets are accurate to 12.5% on the upper bound.
        assert!((430.0..=580.0).contains(&p50), "p50 {p50}");
        assert!((930.0..=1150.0).contains(&p99), "p99 {p99}");
        assert!((h.mean_ns() / 1_000.0 - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn stats_snapshot_is_valid_json_with_all_fields() {
        let s = ServerStats::new(8, 16);
        s.requests.fetch_add(3, Ordering::Relaxed);
        s.e2e.record(42_000);
        let mut text = String::new();
        s.to_json().write_json(&mut text);
        let v = obs::json::parse(&text).expect("stats serialize to valid JSON");
        assert_eq!(v.get("input_dim").and_then(Json::as_f64), Some(8.0));
        assert_eq!(v.get("requests").and_then(Json::as_f64), Some(3.0));
        assert!(v.get("e2e").and_then(|e| e.get("count")).is_some());
    }
}
