//! The sharded micro-batching inference engine.
//!
//! Connection handlers submit feature vectors into one of N engine
//! *shards*, selected consistently by connection id ([`shard_for`]). Each
//! shard owns a bounded **lock-free MPSC ring** (a Vyukov-style sequenced
//! ring buffer; the same CAS publication idiom as the `obs::registry`
//! handle cache), its own inference thread with a reused
//! [`BatchForwardScratch`], and its own stats block — so shards share no
//! hot cache lines and scale with cores. A `Condvar` is used **only** for
//! sleep/wake parking of an idle shard thread; the request path itself
//! never takes a lock.
//!
//! Per-connection ordering: a connection maps to exactly one shard for its
//! whole lifetime, the ring is FIFO, and the shard thread is the only
//! consumer — so completions for any one connection are delivered in
//! submission order, exactly as in the single-queue engine.
//!
//! Exactness of the request ledger across shutdown: a producer *reserves*
//! a slot with `len.fetch_add(SeqCst)` **before** it checks the shutdown
//! flag, and the consumer exits only when `shutdown && len == 0` (both
//! SeqCst). In the SeqCst total order, a producer that saw `shutdown ==
//! false` has its reservation ordered before the consumer's final `len`
//! read, so the consumer drains that request; otherwise the producer rolls
//! the reservation back and the caller answers the client itself. No
//! accepted request can be lost, which is what keeps
//! `requests == ok + deadline_exceeded + overloaded + bad_dim +
//! draining_rejected` exact per shard and in the global sum.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use inspector::{Decision, SchedInspector};
use obs::trace::span_id;
use obs::{Clock, Recorder, SpanKind, SpanRecord, SpanStatus, Telemetry};
use store::SwapCell;
use tinynn::{BatchForwardScratch, Mlp, QuantScratch, QuantizedMlp};

use crate::stats::ServerStats;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum requests drained into one inference batch (per shard).
    pub max_batch: usize,
    /// Bounded queue capacity **per shard**; submissions beyond it are
    /// rejected with [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Number of engine shards (inference threads + rings). Connections
    /// are routed by [`shard_for`].
    pub shards: usize,
    /// Run the int8-quantized forward path ([`tinynn::QuantizedMlp`])
    /// instead of the bit-exact f32 fused path.
    pub quantized: bool,
    /// Generation tag of the initially loaded model. `0` for models that
    /// did not come from a store; [`BatchEngine::swap_model`] only accepts
    /// strictly newer generations.
    pub model_generation: u64,
    /// Flight recorder the shard loops write queue/batch/forward (and
    /// deadline-drop) spans into for traced requests. Disabled by default,
    /// in which case recording is a no-op and the hot path only pays one
    /// branch on the request's trace id.
    pub trace: Recorder,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 16,
            queue_capacity: 4096,
            shards: 1,
            quantized: false,
            model_generation: 0,
            trace: Recorder::disabled(),
        }
    }
}

/// Consistent connection→shard routing: a connection id maps to one shard
/// for its whole lifetime (pure function of the id), so per-connection
/// FIFO ordering is preserved no matter how many requests it pipelines.
#[inline]
pub fn shard_for(conn_id: u64, shards: usize) -> usize {
    (conn_id % shards.max(1) as u64) as usize
}

/// What the engine eventually reports back for one submitted request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Completion {
    /// The model ran; here is its verdict.
    Decision {
        /// The inspector's accept/reject verdict.
        decision: Decision,
        /// Generation of the model that actually ran this request's batch
        /// (the per-batch [`store::SwapCell`] pin), so replies and trace
        /// spans attribute decisions correctly across mid-traffic swaps.
        generation: u64,
    },
    /// The request expired in the queue before its forward pass.
    DeadlineExceeded,
}

/// Why a submission was refused outright (nothing will be sent back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The shard's queue is full; the client should back off for roughly
    /// `retry_after_ms` before retrying.
    Overloaded {
        /// Suggested client backoff, derived from the current backlog and
        /// observed batch service time.
        retry_after_ms: u64,
    },
    /// The engine is draining; no new work is accepted.
    ShuttingDown,
}

struct Pending {
    token: u64,
    features: Vec<f32>,
    /// Trace context (0 = untraced: no spans are recorded).
    trace: u64,
    /// Clock tick (ns) at submission, for e2e latency.
    enqueued_ns: u64,
    /// Clock tick (ns) after which the request is expired, if any.
    deadline_ns: Option<u64>,
    tx: Sender<(u64, Completion)>,
}

/// One slot of the sequenced ring. `seq` is the publication protocol:
/// producers claim a position with a CAS on `head`, write the value, then
/// store `seq = pos + 1` (Release) to publish; the consumer reads the
/// value once `seq == tail + 1` (Acquire) and re-arms the slot with
/// `seq = tail + capacity` for the next lap.
struct Slot {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<Pending>>,
}

/// Vyukov-style bounded ring used MPSC: many producers CAS `head`; the
/// shard thread is the single consumer advancing `tail`. Occupancy is
/// bounded *outside* the ring by the shard's `len` reservation counter
/// (which enforces `queue_capacity` exactly), so a producer that claimed a
/// position only ever waits for a concurrent pop to re-arm its slot —
/// never for queue space.
struct Ring {
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
    slots: Box<[Slot]>,
}

// SAFETY: `Pending` values are moved through the `UnsafeCell`s under the
// `seq` publication protocol — exactly one producer writes a claimed slot
// and exactly one consumer reads it after the Release/Acquire handshake.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            slots,
        }
    }

    /// Multi-producer push. Never fails: the caller's `len` reservation
    /// guarantees a slot is (or is about to be) free, so the only wait is
    /// a bounded spin for a concurrent pop's re-arm store.
    fn push(&self, value: Pending) {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave this producer exclusive
                        // ownership of the slot until the seq publication.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return;
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // The consumer claimed this slot's previous value but has
                // not re-armed it yet; reservation bounds say it will.
                std::hint::spin_loop();
                pos = self.head.load(Ordering::Relaxed);
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Single-consumer pop (only the shard thread calls this).
    fn pop(&self) -> Option<Pending> {
        let pos = self.tail.load(Ordering::Relaxed);
        let slot = &self.slots[pos & self.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == pos.wrapping_add(1) {
            self.tail.store(pos + 1, Ordering::Relaxed);
            // SAFETY: seq == pos + 1 means the producer's Release store
            // published this value; we are the only consumer.
            let value = unsafe { (*slot.value.get()).assume_init_read() };
            slot.seq
                .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
            Some(value)
        } else {
            None
        }
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        // Drop any values still published (e.g. after a panicked shard
        // thread); single-threaded here by &mut.
        while self.pop().is_some() {}
    }
}

/// Idle-parking backstop: even if a wakeup is missed, the shard thread
/// re-polls its ring at this period, bounding added latency.
const PARK_BACKSTOP: Duration = Duration::from_millis(5);

struct Shard {
    ring: Ring,
    /// Reserved-occupancy counter — the exact-capacity gate (see module
    /// docs for the SeqCst shutdown handshake).
    len: AtomicUsize,
    /// True while the shard thread is parked on `cv`.
    sleeping: AtomicBool,
    park: Mutex<()>,
    cv: Condvar,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            ring: Ring::new(capacity),
            len: AtomicUsize::new(0),
            sleeping: AtomicBool::new(false),
            park: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn wake(&self) {
        if self.sleeping.load(Ordering::SeqCst) {
            // Lock/unlock pairs the notify with the consumer's re-check
            // under the same mutex, closing the classic missed-wakeup race.
            drop(self.park.lock().unwrap());
            self.cv.notify_one();
        }
    }
}

/// The swappable inference payload: the f32 network plus, for quantized
/// configs, its int8 companion built **once** at publish time and shared
/// by every shard (forwards take `&self`; scratch stays per-shard).
struct ServeModel {
    mlp: Mlp,
    quantized: Option<QuantizedMlp>,
}

impl ServeModel {
    fn build(mlp: Mlp, quantize: bool) -> ServeModel {
        let quantized = quantize.then(|| QuantizedMlp::quantize(&mlp));
        ServeModel { mlp, quantized }
    }
}

struct Shared {
    shards: Vec<Shard>,
    shutdown: AtomicBool,
    cfg: EngineConfig,
    stats: Arc<ServerStats>,
    /// The live model, hot-swappable mid-traffic. Shard threads pin it
    /// for the duration of one forward pass (epoch-based reclamation —
    /// see [`store::SwapCell`]); a publish blocks only until in-flight
    /// batches finish, never dropping or misrouting a request.
    model: SwapCell<ServeModel>,
    input_dim: usize,
    /// Serializes writers: [`BatchEngine::swap_model`] may be called from
    /// the registry watcher and an admin path concurrently.
    swap_lock: Mutex<()>,
    /// Deadline time source. Production passes [`obs::SystemClock`];
    /// tests pass an [`obs::VirtualClock`] to drive requests through
    /// expiry — including during the shutdown drain — without sleeping.
    clock: Arc<dyn Clock>,
}

impl Shared {
    fn total_queued(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.len.load(Ordering::Relaxed))
            .sum()
    }
}

/// Handle to the sharded engine. Submissions may come from any thread; one
/// background thread per shard owns a model clone and runs the batches.
pub struct BatchEngine {
    shared: Arc<Shared>,
    input_dim: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl BatchEngine {
    /// Spawn one inference thread per shard around a loaded model (each
    /// shard clones the 938-parameter network; for `quantized` configs it
    /// also builds its own [`QuantizedMlp`]). Deadlines are interpreted as
    /// ticks of `clock` (production: [`obs::SystemClock`]).
    ///
    /// # Panics
    ///
    /// Panics if `stats` was built for a different shard count than
    /// `cfg.shards` — the per-shard stats blocks must line up.
    pub fn start(
        inspector: SchedInspector,
        cfg: EngineConfig,
        stats: Arc<ServerStats>,
        telemetry: Telemetry,
        clock: Arc<dyn Clock>,
    ) -> Arc<BatchEngine> {
        let shards = cfg.shards.max(1);
        assert_eq!(
            stats.shards.len(),
            shards,
            "ServerStats shard count must match EngineConfig.shards"
        );
        let input_dim = inspector.input_dim();
        let model = ServeModel::build(inspector.policy.mlp().clone(), cfg.quantized);
        stats.model_generation.set(cfg.model_generation as f64);
        let shared = Arc::new(Shared {
            shards: (0..shards)
                .map(|_| Shard::new(cfg.queue_capacity))
                .collect(),
            shutdown: AtomicBool::new(false),
            model: SwapCell::new(shards, cfg.model_generation, model),
            input_dim,
            swap_lock: Mutex::new(()),
            cfg,
            stats,
            clock,
        });
        let workers = (0..shards)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let telemetry = telemetry.clone();
                std::thread::Builder::new()
                    .name(format!("serve-engine-{i}"))
                    .spawn(move || shard_loop(i, shared, telemetry))
                    .expect("spawn inference thread")
            })
            .collect();
        Arc::new(BatchEngine {
            shared,
            input_dim,
            workers: Mutex::new(workers),
        })
    }

    /// Feature-vector length the loaded model expects.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of engine shards.
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Generation of the model currently serving decisions.
    pub fn model_generation(&self) -> u64 {
        self.shared.model.generation()
    }

    /// Hot-swap the serving model mid-traffic. Validates the network
    /// shape and that `generation` strictly advances, builds the int8
    /// companion when the engine runs quantized, publishes, and blocks
    /// until no in-flight batch can still see the old model. Requests are
    /// never dropped or misrouted across the swap — each batch runs
    /// entirely on one model; the ledger stays exact.
    pub fn swap_model(&self, generation: u64, model: Mlp) -> Result<(), String> {
        if model.input_dim() != self.input_dim {
            self.shared.stats.model_swap_errors.inc();
            return Err(format!(
                "model expects {} inputs, engine serves {}",
                model.input_dim(),
                self.input_dim
            ));
        }
        if model.output_dim() != 2 {
            self.shared.stats.model_swap_errors.inc();
            return Err(format!(
                "binary policy needs 2 logits, network has {}",
                model.output_dim()
            ));
        }
        let _writer = self.shared.swap_lock.lock().unwrap();
        let current = self.shared.model.generation();
        if generation <= current {
            self.shared.stats.model_swap_errors.inc();
            return Err(format!(
                "stale model generation {generation} (serving {current})"
            ));
        }
        let model = ServeModel::build(model, self.shared.cfg.quantized);
        self.shared.model.publish(generation, model);
        self.shared.stats.model_generation.set(generation as f64);
        self.shared.stats.model_swaps.inc();
        Ok(())
    }

    /// Enqueue one request from connection `conn` (routed via
    /// [`shard_for`]). `deadline_ns` is a tick of the engine's clock (see
    /// [`obs::clock::deadline_after_ms`]). A nonzero `trace` id makes the
    /// shard loop record queue/batch/forward spans for this request into
    /// the configured flight recorder. On success the engine will later
    /// send `(token, completion)` through `tx`; on failure nothing is sent
    /// and the caller must answer the client itself.
    pub fn submit(
        &self,
        conn: u64,
        token: u64,
        features: Vec<f32>,
        deadline_ns: Option<u64>,
        trace: u64,
        tx: Sender<(u64, Completion)>,
    ) -> Result<(), SubmitError> {
        let idx = shard_for(conn, self.shared.shards.len());
        let shard = &self.shared.shards[idx];
        // Reserve before the shutdown check — the SeqCst handshake that
        // makes the drain exact (module docs).
        let prev = shard.len.fetch_add(1, Ordering::SeqCst);
        if prev >= self.shared.cfg.queue_capacity {
            shard.len.fetch_sub(1, Ordering::SeqCst);
            self.shared.stats.shards[idx].overloaded.inc();
            return Err(SubmitError::Overloaded {
                retry_after_ms: self.retry_hint(prev),
            });
        }
        if self.shared.shutdown.load(Ordering::SeqCst) {
            shard.len.fetch_sub(1, Ordering::SeqCst);
            return Err(SubmitError::ShuttingDown);
        }
        shard.ring.push(Pending {
            token,
            features,
            trace,
            enqueued_ns: self.shared.clock.now_ns(),
            deadline_ns,
            tx,
        });
        let stats = &self.shared.stats;
        stats.shards[idx]
            .queue_depth
            .set(shard.len.load(Ordering::Relaxed) as f64);
        stats.queue_depth.set(self.shared.total_queued() as f64);
        shard.wake();
        Ok(())
    }

    /// Rough time to drain `backlog` requests at the observed batch
    /// service rate, floored at 1ms so clients always pause.
    fn retry_hint(&self, backlog: usize) -> u64 {
        let stats = &self.shared.stats;
        let mean_batch = stats.mean_batch_size().max(1.0);
        let batch_ns = stats.infer_batch.mean_ticks().max(1_000.0);
        let drain_ms = (backlog as f64 / mean_batch) * batch_ns / 1_000_000.0;
        (drain_ms.ceil() as u64).max(1)
    }

    /// Stop accepting work, finish everything queued on every shard, and
    /// join the inference threads. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shared.shards {
            let _guard = shard.park.lock().unwrap();
            shard.cv.notify_all();
        }
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for BatchEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for BatchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEngine")
            .field("input_dim", &self.input_dim)
            .field("cfg", &self.shared.cfg)
            .finish()
    }
}

/// Per-shard inference loop: drain ≤ `max_batch` requests, expire stale
/// ones, run one fused forward over the survivors, answer in submission
/// order, park when idle. The model is pinned from the shared
/// [`SwapCell`] for exactly one batch at a time, so a hot-swap lands
/// between batches and each batch runs entirely on one generation.
fn shard_loop(idx: usize, shared: Arc<Shared>, telemetry: Telemetry) {
    let shard = &shared.shards[idx];
    let sstats = &shared.stats.shards[idx];
    let input_dim = shared.input_dim;
    let recorder = &shared.cfg.trace;
    let mut qscratch = QuantScratch::default();
    let mut fwd = BatchForwardScratch::default();
    let mut batch: Vec<Pending> = Vec::with_capacity(shared.cfg.max_batch);
    let mut expired: Vec<bool> = Vec::with_capacity(shared.cfg.max_batch);
    // Shard-local batch sequence, namespaced by shard in the high bits so
    // batch ids are globally unique without any cross-shard coordination
    // (and never 0 — 0 means "not part of a batch" in span records).
    let mut batch_counter: u64 = 0;

    loop {
        batch.clear();
        while batch.len() < shared.cfg.max_batch {
            if let Some(p) = shard.ring.pop() {
                shard.len.fetch_sub(1, Ordering::SeqCst);
                batch.push(p);
            } else if batch.is_empty() && shard.len.load(Ordering::SeqCst) > 0 {
                // A producer reserved but has not finished its push yet.
                std::hint::spin_loop();
            } else {
                break;
            }
        }

        if batch.is_empty() {
            if shared.shutdown.load(Ordering::SeqCst) && shard.len.load(Ordering::SeqCst) == 0 {
                return;
            }
            // Park until a producer wakes us; the timeout is a liveness
            // backstop against any missed notify.
            shard.sleeping.store(true, Ordering::SeqCst);
            let guard = shard.park.lock().unwrap();
            if shard.len.load(Ordering::SeqCst) == 0 && !shared.shutdown.load(Ordering::SeqCst) {
                let _ = shard.cv.wait_timeout(guard, PARK_BACKSTOP).unwrap();
            }
            shard.sleeping.store(false, Ordering::SeqCst);
            continue;
        }

        // Pass 1: expire by deadline, pack the live rows contiguously.
        let started = Instant::now();
        let t_pack = shared.clock.now_ns();
        expired.clear();
        fwd.clear(input_dim);
        let mut traced = false;
        for p in &batch {
            let late = p.deadline_ns.is_some_and(|d| t_pack > d);
            expired.push(late);
            traced |= p.trace != 0;
            if !late {
                fwd.push_row(&p.features);
            }
        }
        let tracing = traced && recorder.is_enabled();
        batch_counter += 1;
        let batch_seq = (idx as u64) << 48 | batch_counter;

        // Pass 2: one fused forward over the whole micro-batch, on a
        // pinned snapshot of the live model. The pin is per-batch: a
        // concurrent publish waits (at most one batch) for this guard to
        // drop, then frees the old model — no locks on this path.
        let model = shared.model.pin(idx);
        let generation = model.generation();
        let t_forward = if tracing { shared.clock.now_ns() } else { 0 };
        let logits: &[f32] = if let Some(qmodel) = &model.quantized {
            qmodel.forward_batch(&mut fwd, &mut qscratch)
        } else {
            model.mlp.forward_batch(&mut fwd)
        };
        let t_done = if tracing { shared.clock.now_ns() } else { 0 };

        // Pass 3: answer in submission order (per-connection FIFO). Error
        // counters are bumped *before* the send so a client that observed
        // the completion also observes the counter; flight-recorder spans
        // are recorded before the send so the reply path can already see
        // the full shard-side chain.
        let mut served = 0usize;
        let stats = &shared.stats;
        for (p, late) in batch.drain(..).zip(expired.drain(..)) {
            if tracing && p.trace != 0 {
                record_shard_spans(
                    recorder, idx, &p, late, t_pack, t_forward, t_done, batch_seq, generation,
                );
            }
            if late {
                stats.deadline_exceeded.inc();
                sstats.deadline_exceeded.inc();
                let _ = p.tx.send((p.token, Completion::DeadlineExceeded));
                continue;
            }
            let decision = Decision::from_logits(logits[served * 2], logits[served * 2 + 1]);
            served += 1;
            let e2e_ticks = shared.clock.now_ns().saturating_sub(p.enqueued_ns);
            stats.e2e.observe_ticks_exemplar(e2e_ticks, p.trace);
            if telemetry.is_enabled() {
                telemetry.observe("serve.e2e_s", e2e_ticks as f64 / 1e9);
            }
            let _ = p.tx.send((
                p.token,
                Completion::Decision {
                    decision,
                    generation,
                },
            ));
        }
        let infer_elapsed = started.elapsed();
        let served = served as u64;
        stats.ok.add(served);
        stats.batches.inc();
        stats.batched_requests.add(served);
        stats
            .infer_batch
            .observe_ticks(infer_elapsed.as_nanos() as u64);
        sstats.ok.add(served);
        sstats.batches.inc();
        sstats.batched_requests.add(served);
        sstats.batch_size.observe_ticks(served);
        sstats
            .queue_depth
            .set(shard.len.load(Ordering::Relaxed) as f64);
        stats.queue_depth.set(shared.total_queued() as f64);
        if telemetry.is_enabled() {
            telemetry.count("serve.batches", 1);
            telemetry.count("serve.requests", served);
            telemetry.observe("serve.batch_infer_s", infer_elapsed.as_secs_f64());
            telemetry.gauge("serve.queue_depth", stats.queue_depth.get());
        }
    }
}

/// Record the shard-side spans for one traced request: always the queue
/// span (submission → batch formation); then either batch + forward spans
/// linked by `batch_seq`, or a terminal `dropped` span for a deadline
/// expiry. Span ids are pure functions of `(trace, kind)`, so the server's
/// request/write spans chain to these without any shared state.
#[allow(clippy::too_many_arguments)]
fn record_shard_spans(
    recorder: &Recorder,
    shard: usize,
    p: &Pending,
    late: bool,
    t_pack: u64,
    t_forward: u64,
    t_done: u64,
    batch_seq: u64,
    generation: u64,
) {
    let trace = p.trace;
    let span = |kind: SpanKind, parent: SpanKind, status, batch_seq, start_ns, end_ns| SpanRecord {
        trace_id: trace,
        span_id: span_id(trace, kind),
        parent_id: span_id(trace, parent),
        kind,
        status,
        shard: shard as u32,
        batch_seq,
        model_generation: generation,
        start_ns,
        end_ns,
    };
    recorder.record(
        shard,
        &span(
            SpanKind::Queue,
            SpanKind::Request,
            SpanStatus::Ok,
            0,
            p.enqueued_ns,
            t_pack,
        ),
    );
    if late {
        recorder.record(
            shard,
            &span(
                SpanKind::Dropped,
                SpanKind::Queue,
                SpanStatus::DeadlineExceeded,
                0,
                t_pack,
                t_pack,
            ),
        );
        return;
    }
    recorder.record(
        shard,
        &span(
            SpanKind::Batch,
            SpanKind::Queue,
            SpanStatus::Ok,
            batch_seq,
            t_pack,
            t_done,
        ),
    );
    recorder.record(
        shard,
        &span(
            SpanKind::Forward,
            SpanKind::Batch,
            SpanStatus::Ok,
            batch_seq,
            t_forward,
            t_done,
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlcore::PolicyScratch;
    use std::sync::mpsc;

    fn tiny_inspector_seeded(seed: u64) -> SchedInspector {
        use inspector::{FeatureBuilder, FeatureMode, Normalizer};
        use rlcore::BinaryPolicy;
        use simhpc::Metric;
        let fb = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Bsld,
            norm: Normalizer::new(64, 3600.0),
        };
        SchedInspector::new(BinaryPolicy::new(fb.dim(), seed), fb)
    }

    fn tiny_inspector() -> SchedInspector {
        tiny_inspector_seeded(7)
    }

    #[test]
    fn completions_arrive_in_submission_order() {
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 8));
        let engine = BatchEngine::start(
            inspector,
            EngineConfig {
                max_batch: 8,
                queue_capacity: 1024,
                ..EngineConfig::default()
            },
            Arc::clone(&stats),
            Telemetry::disabled(),
            obs::SystemClock::shared(),
        );
        let (tx, rx) = mpsc::channel();
        for token in 0..100u64 {
            let features = vec![(token % 7) as f32 / 7.0; dim];
            engine
                .submit(0, token, features, None, 0, tx.clone())
                .unwrap();
        }
        drop(tx);
        let tokens: Vec<u64> = rx.iter().map(|(t, _)| t).collect();
        assert_eq!(tokens, (0..100).collect::<Vec<_>>());
        // Join the engine before reading counters: it bumps them after
        // sending the completions.
        engine.shutdown();
        assert_eq!(stats.ok.get(), 100);
        assert!(stats.batches.get() >= 100 / 8);
    }

    #[test]
    fn engine_matches_direct_inspector_calls() {
        use rand::{RngExt, SeedableRng, StdRng};
        let inspector = tiny_inspector();
        let reference = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 16));
        let engine = BatchEngine::start(
            inspector,
            EngineConfig::default(),
            stats,
            Telemetry::disabled(),
            obs::SystemClock::shared(),
        );
        let mut rng = StdRng::seed_from_u64(11);
        let mut scratch = PolicyScratch::default();
        let (tx, rx) = mpsc::channel();
        for token in 0..50u64 {
            let features: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect();
            let expect = reference.decide(&features, &mut scratch);
            engine
                .submit(0, token, features, None, 0, tx.clone())
                .unwrap();
            match rx.recv().unwrap() {
                (t, Completion::Decision { decision: got, .. }) => {
                    assert_eq!(t, token);
                    assert_eq!(got.reject, expect.reject);
                    assert_eq!(got.p_reject, expect.p_reject);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        engine.shutdown();
    }

    #[test]
    fn sharded_engine_matches_direct_inspector_calls_bit_exactly() {
        // The fused batched forward must not change a single decision bit
        // relative to the scalar path, across every shard.
        use rand::{RngExt, SeedableRng, StdRng};
        let inspector = tiny_inspector();
        let reference = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::sharded(dim, 16, 4));
        let engine = BatchEngine::start(
            inspector,
            EngineConfig {
                shards: 4,
                ..EngineConfig::default()
            },
            Arc::clone(&stats),
            Telemetry::disabled(),
            obs::SystemClock::shared(),
        );
        let mut rng = StdRng::seed_from_u64(23);
        let mut scratch = PolicyScratch::default();
        for conn in 0..8u64 {
            let (tx, rx) = mpsc::channel();
            for token in 0..32u64 {
                let features: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect();
                let expect = reference.decide(&features, &mut scratch);
                engine
                    .submit(conn, token, features, None, 0, tx.clone())
                    .unwrap();
                match rx.recv().unwrap() {
                    (t, Completion::Decision { decision: got, .. }) => {
                        assert_eq!(t, token);
                        assert_eq!(got.reject, expect.reject);
                        assert_eq!(got.p_reject.to_bits(), expect.p_reject.to_bits());
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        engine.shutdown();
        // Work landed on every shard, and shard sums equal the global
        // ledger counters.
        for shard in &stats.shards {
            assert!(shard.ok.get() > 0, "every shard saw traffic");
        }
        let shard_ok: u64 = stats.shards.iter().map(|s| s.ok.get()).sum();
        assert_eq!(shard_ok, stats.ok.get());
        assert_eq!(stats.ok.get(), 8 * 32);
    }

    #[test]
    fn quantized_engine_decisions_track_f32_probabilities() {
        use rand::{RngExt, SeedableRng, StdRng};
        let inspector = tiny_inspector();
        let reference = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::sharded(dim, 16, 2));
        let engine = BatchEngine::start(
            inspector,
            EngineConfig {
                shards: 2,
                quantized: true,
                ..EngineConfig::default()
            },
            stats,
            Telemetry::disabled(),
            obs::SystemClock::shared(),
        );
        let mut rng = StdRng::seed_from_u64(5);
        let mut scratch = PolicyScratch::default();
        let (tx, rx) = mpsc::channel();
        for token in 0..64u64 {
            let features: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect();
            let expect = reference.decide(&features, &mut scratch);
            engine
                .submit(token, token, features, None, 0, tx.clone())
                .unwrap();
            match rx.recv().unwrap() {
                (_, Completion::Decision { decision: got, .. }) => {
                    // Int8 error budget: probabilities stay close; the
                    // binary decision may only flip near p == 0.5.
                    assert!(
                        (got.p_reject - expect.p_reject).abs() < 0.05,
                        "p_reject {} vs f32 {}",
                        got.p_reject,
                        expect.p_reject
                    );
                    if (expect.p_reject - 0.5).abs() > 0.05 {
                        assert_eq!(got.reject, expect.reject);
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        engine.shutdown();
    }

    #[test]
    fn hot_swap_serves_the_new_model_bit_exactly_and_validates_updates() {
        use rand::{RngExt, SeedableRng, StdRng};
        let old = tiny_inspector_seeded(7);
        let next = tiny_inspector_seeded(31);
        let reference = tiny_inspector_seeded(31);
        let dim = old.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 8));
        let engine = BatchEngine::start(
            old,
            EngineConfig::default(),
            Arc::clone(&stats),
            Telemetry::disabled(),
            obs::SystemClock::shared(),
        );
        assert_eq!(engine.model_generation(), 0);

        engine.swap_model(3, next.policy.mlp().clone()).unwrap();
        assert_eq!(engine.model_generation(), 3);
        assert_eq!(stats.model_generation.get(), 3.0);

        // Every post-swap decision matches the new model bit-for-bit.
        let mut rng = StdRng::seed_from_u64(99);
        let mut scratch = PolicyScratch::default();
        let (tx, rx) = mpsc::channel();
        for token in 0..40u64 {
            let features: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect();
            let expect = reference.decide(&features, &mut scratch);
            engine
                .submit(0, token, features, None, 0, tx.clone())
                .unwrap();
            match rx.recv().unwrap() {
                (t, Completion::Decision { decision: got, .. }) => {
                    assert_eq!(t, token);
                    assert_eq!(got.p_reject.to_bits(), expect.p_reject.to_bits());
                }
                other => panic!("unexpected {other:?}"),
            }
        }

        // Stale generation, wrong input dim, wrong logit head: all
        // rejected, serving untouched.
        let mut nrng = StdRng::seed_from_u64(1);
        assert!(engine.swap_model(3, next.policy.mlp().clone()).is_err());
        let wrong_in = Mlp::new(
            &[dim + 1, 4, 2],
            tinynn::Activation::Tanh,
            tinynn::Activation::Identity,
            &mut nrng,
        );
        assert!(engine.swap_model(4, wrong_in).is_err());
        let wrong_out = Mlp::new(
            &[dim, 4, 3],
            tinynn::Activation::Tanh,
            tinynn::Activation::Identity,
            &mut nrng,
        );
        assert!(engine.swap_model(4, wrong_out).is_err());
        assert_eq!(engine.model_generation(), 3);
        assert_eq!(stats.model_swaps.get(), 1);
        assert_eq!(stats.model_swap_errors.get(), 3);
        engine.shutdown();
    }

    #[test]
    fn mid_traffic_swaps_never_drop_requests() {
        // Hammer a sharded engine from the main thread while a swapper
        // thread publishes 50 generations: every accepted request must
        // complete exactly once and the ledger must balance — the same
        // invariant the chaos harness asserts end-to-end.
        let dim = tiny_inspector().input_dim();
        let stats = Arc::new(ServerStats::sharded(dim, 8, 2));
        let engine = BatchEngine::start(
            tiny_inspector_seeded(7),
            EngineConfig {
                shards: 2,
                queue_capacity: 4096,
                ..EngineConfig::default()
            },
            Arc::clone(&stats),
            Telemetry::disabled(),
            obs::SystemClock::shared(),
        );
        let swapper = {
            let engine = Arc::clone(&engine);
            let a = tiny_inspector_seeded(31).policy.mlp().clone();
            let b = tiny_inspector_seeded(47).policy.mlp().clone();
            std::thread::spawn(move || {
                for generation in 1..=50u64 {
                    let net = if generation % 2 == 0 { &a } else { &b };
                    engine.swap_model(generation, net.clone()).unwrap();
                    std::thread::yield_now();
                }
            })
        };
        let (tx, rx) = mpsc::channel();
        let mut submitted = 0u64;
        for token in 0..4000u64 {
            if engine
                .submit(token % 8, token, vec![0.25; dim], None, 0, tx.clone())
                .is_ok()
            {
                submitted += 1;
            }
        }
        swapper.join().unwrap();
        engine.shutdown();
        drop(tx);
        assert_eq!(rx.iter().count() as u64, submitted);
        assert_eq!(engine.model_generation(), 50);
        assert_eq!(stats.model_swaps.get(), 50);
        assert_eq!(
            stats.ok.get() + stats.deadline_exceeded.get(),
            submitted,
            "ledger balances across 50 mid-traffic swaps"
        );
    }

    #[test]
    fn full_queue_rejects_with_retry_hint() {
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 4));
        let engine = BatchEngine::start(
            inspector,
            EngineConfig {
                max_batch: 4,
                queue_capacity: 2,
                ..EngineConfig::default()
            },
            Arc::clone(&stats),
            Telemetry::disabled(),
            obs::SystemClock::shared(),
        );
        let (tx, rx) = mpsc::channel();
        // Saturate: keep submitting until Overloaded shows up. The engine
        // may drain between submissions, so allow a bounded number of
        // attempts before asserting.
        let mut overloaded = None;
        for token in 0..10_000u64 {
            match engine.submit(0, token, vec![0.0; dim], None, 0, tx.clone()) {
                Ok(()) => {}
                Err(e) => {
                    overloaded = Some(e);
                    break;
                }
            }
        }
        if let Some(SubmitError::Overloaded { retry_after_ms }) = overloaded {
            assert!(retry_after_ms >= 1);
            assert!(stats.shards[0].overloaded.get() >= 1);
        }
        drop(tx);
        let drained = rx.iter().count();
        assert!(drained > 0);
        engine.shutdown();
    }

    #[test]
    fn expired_deadline_yields_deadline_exceeded() {
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 4));
        // Virtual clock: start it past the deadline so expiry is certain,
        // with no sleeps and no reliance on wall-clock granularity.
        let (vc, clock) = obs::VirtualClock::shared();
        vc.advance_ns(10_000_000);
        let engine = BatchEngine::start(
            inspector,
            EngineConfig::default(),
            Arc::clone(&stats),
            Telemetry::disabled(),
            clock,
        );
        let (tx, rx) = mpsc::channel();
        engine.submit(0, 0, vec![0.0; dim], Some(1), 0, tx).unwrap();
        assert_eq!(rx.recv().unwrap(), (0, Completion::DeadlineExceeded));
        assert_eq!(stats.deadline_exceeded.get(), 1);
        engine.shutdown();
        assert_eq!(stats.shards[0].deadline_exceeded.get(), 1);
    }

    #[test]
    fn virtual_clock_drives_deadlines_deterministically() {
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 4));
        let (vc, clock) = obs::VirtualClock::shared();
        let engine = BatchEngine::start(
            inspector,
            EngineConfig::default(),
            Arc::clone(&stats),
            Telemetry::disabled(),
            clock,
        );
        let (tx, rx) = mpsc::channel();
        // Deadline at tick 5ms; clock still at 0 → must succeed.
        engine
            .submit(0, 0, vec![0.2; dim], Some(5_000_000), 0, tx.clone())
            .unwrap();
        assert!(matches!(
            rx.recv().unwrap(),
            (0, Completion::Decision { decision: _, .. })
        ));
        // Advance past the deadline before submitting → must expire.
        vc.advance_ns(6_000_000);
        engine
            .submit(0, 1, vec![0.2; dim], Some(5_000_000), 0, tx)
            .unwrap();
        assert_eq!(rx.recv().unwrap(), (1, Completion::DeadlineExceeded));
        assert_eq!(stats.deadline_exceeded.get(), 1);
        assert_eq!(stats.ok.get(), 1);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drain_still_honours_expired_deadlines() {
        // The drain path must expire requests by the injected clock too:
        // queue work with deadlines, advance time past them, then shut
        // down. Everything queued must complete as DeadlineExceeded, and
        // the request ledger must balance.
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 4));
        let (vc, clock) = obs::VirtualClock::shared();
        // Park the engine thread on a first request so the rest stay
        // queued until shutdown's drain.
        let engine = BatchEngine::start(
            inspector,
            EngineConfig {
                max_batch: 1,
                queue_capacity: 64,
                ..EngineConfig::default()
            },
            Arc::clone(&stats),
            Telemetry::disabled(),
            clock,
        );
        let (tx, rx) = mpsc::channel();
        for token in 0..8u64 {
            engine
                .submit(0, token, vec![0.1; dim], Some(1_000_000), 0, tx.clone())
                .unwrap();
        }
        vc.advance_ns(2_000_000); // all deadlines are now in the past
        engine.shutdown();
        drop(tx);
        let completions: Vec<(u64, Completion)> = rx.iter().collect();
        assert_eq!(completions.len(), 8, "drain must answer everything");
        // At least the tail of the queue expired (the engine may have
        // raced the first few through before the clock advanced).
        assert!(completions
            .iter()
            .any(|(_, c)| *c == Completion::DeadlineExceeded));
        assert_eq!(
            stats.ok.get() + stats.deadline_exceeded.get(),
            8,
            "ledger balances after drain"
        );
    }

    #[test]
    fn shutdown_drains_queued_work_then_rejects() {
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 16));
        let engine = BatchEngine::start(
            inspector,
            EngineConfig::default(),
            Arc::clone(&stats),
            Telemetry::disabled(),
            obs::SystemClock::shared(),
        );
        let (tx, rx) = mpsc::channel();
        for token in 0..32u64 {
            engine
                .submit(0, token, vec![0.5; dim], None, 0, tx.clone())
                .unwrap();
        }
        engine.shutdown();
        assert_eq!(
            engine.submit(0, 99, vec![0.5; dim], None, 0, tx.clone()),
            Err(SubmitError::ShuttingDown)
        );
        drop(tx);
        let completions = rx.iter().count();
        assert_eq!(completions, 32, "shutdown must drain queued requests");
    }

    #[test]
    fn multi_shard_drain_answers_every_connection() {
        // Queue work across all shards, then shut down: every request
        // gets exactly one completion and the per-shard ledgers sum to
        // the global one.
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::sharded(dim, 8, 4));
        let engine = BatchEngine::start(
            inspector,
            EngineConfig {
                max_batch: 8,
                queue_capacity: 256,
                shards: 4,
                ..EngineConfig::default()
            },
            Arc::clone(&stats),
            Telemetry::disabled(),
            obs::SystemClock::shared(),
        );
        let (tx, rx) = mpsc::channel();
        let mut submitted = 0u64;
        for conn in 0..16u64 {
            for token in 0..25u64 {
                if engine
                    .submit(
                        conn,
                        conn * 100 + token,
                        vec![0.3; dim],
                        None,
                        0,
                        tx.clone(),
                    )
                    .is_ok()
                {
                    submitted += 1;
                }
            }
        }
        engine.shutdown();
        drop(tx);
        let completions = rx.iter().count() as u64;
        assert_eq!(completions, submitted, "one completion per submission");
        let shard_ok: u64 = stats.shards.iter().map(|s| s.ok.get()).sum();
        let shard_dl: u64 = stats.shards.iter().map(|s| s.deadline_exceeded.get()).sum();
        assert_eq!(shard_ok, stats.ok.get());
        assert_eq!(shard_dl, stats.deadline_exceeded.get());
        assert_eq!(shard_ok + shard_dl, submitted);
    }

    #[test]
    fn shard_routing_is_consistent_and_total() {
        for shards in 1..=8usize {
            for conn in 0..1000u64 {
                let s = shard_for(conn, shards);
                assert!(s < shards);
                // Pure function: same connection, same shard, every time.
                assert_eq!(s, shard_for(conn, shards));
            }
        }
        // Degenerate shard count still routes.
        assert_eq!(shard_for(42, 0), 0);
    }
}
