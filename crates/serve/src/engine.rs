//! The micro-batching inference engine.
//!
//! Connection handlers submit feature vectors into a bounded queue; a
//! single inference thread drains up to `max_batch` of them per tick and
//! runs the forward passes back to back through one reused
//! [`PolicyScratch`], so the queue amortizes synchronization (one lock
//! round per batch instead of per request) while keeping the math
//! allocation-free. Because the engine thread is the only consumer,
//! completions for any one connection are delivered in submission order.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use inspector::{Decision, SchedInspector};
use obs::{Clock, Telemetry};
use rlcore::PolicyScratch;

use crate::stats::ServerStats;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum requests drained into one inference batch.
    pub max_batch: usize,
    /// Bounded queue capacity; submissions beyond it are rejected with
    /// [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 16,
            queue_capacity: 4096,
        }
    }
}

/// What the engine eventually reports back for one submitted request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Completion {
    /// The model ran; here is its verdict.
    Decision(Decision),
    /// The request expired in the queue before its forward pass.
    DeadlineExceeded,
}

/// Why a submission was refused outright (nothing will be sent back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full; the client should back off for roughly
    /// `retry_after_ms` before retrying.
    Overloaded {
        /// Suggested client backoff, derived from the current backlog and
        /// observed batch service time.
        retry_after_ms: u64,
    },
    /// The engine is draining; no new work is accepted.
    ShuttingDown,
}

struct Pending {
    token: u64,
    features: Vec<f32>,
    /// Clock tick (ns) at submission, for e2e latency.
    enqueued_ns: u64,
    /// Clock tick (ns) after which the request is expired, if any.
    deadline_ns: Option<u64>,
    tx: Sender<(u64, Completion)>,
}

struct State {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    cfg: EngineConfig,
    stats: Arc<ServerStats>,
    /// Deadline time source. Production passes [`obs::SystemClock`];
    /// tests pass an [`obs::VirtualClock`] to drive requests through
    /// expiry — including during the shutdown drain — without sleeping.
    clock: Arc<dyn Clock>,
}

/// Cloneable handle to the engine. Submissions may come from any thread;
/// one background thread owns the model and runs the batches.
pub struct BatchEngine {
    shared: Arc<Shared>,
    input_dim: usize,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl BatchEngine {
    /// Spawn the inference thread around a loaded model. Deadlines are
    /// interpreted as ticks of `clock` (production: [`obs::SystemClock`]).
    pub fn start(
        inspector: SchedInspector,
        cfg: EngineConfig,
        stats: Arc<ServerStats>,
        telemetry: Telemetry,
        clock: Arc<dyn Clock>,
    ) -> Arc<BatchEngine> {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cfg.queue_capacity),
                shutdown: false,
            }),
            cv: Condvar::new(),
            cfg,
            stats,
            clock,
        });
        let input_dim = inspector.input_dim();
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-engine".into())
                .spawn(move || engine_loop(inspector, shared, telemetry))
                .expect("spawn inference thread")
        };
        Arc::new(BatchEngine {
            shared,
            input_dim,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// Feature-vector length the loaded model expects.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Enqueue one request. `deadline_ns` is a tick of the engine's clock
    /// (see [`obs::clock::deadline_after_ms`]). On success the engine will
    /// later send `(token, completion)` through `tx`; on failure nothing
    /// is sent and the caller must answer the client itself.
    pub fn submit(
        &self,
        token: u64,
        features: Vec<f32>,
        deadline_ns: Option<u64>,
        tx: Sender<(u64, Completion)>,
    ) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().unwrap();
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.cfg.queue_capacity {
            return Err(SubmitError::Overloaded {
                retry_after_ms: self.retry_hint(state.queue.len()),
            });
        }
        state.queue.push_back(Pending {
            token,
            features,
            enqueued_ns: self.shared.clock.now_ns(),
            deadline_ns,
            tx,
        });
        self.shared.stats.queue_depth.set(state.queue.len() as f64);
        drop(state);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Rough time to drain `backlog` requests at the observed batch
    /// service rate, floored at 1ms so clients always pause.
    fn retry_hint(&self, backlog: usize) -> u64 {
        let stats = &self.shared.stats;
        let mean_batch = stats.mean_batch_size().max(1.0);
        let batch_ns = stats.infer_batch.mean_ticks().max(1_000.0);
        let drain_ms = (backlog as f64 / mean_batch) * batch_ns / 1_000_000.0;
        (drain_ms.ceil() as u64).max(1)
    }

    /// Stop accepting work, finish everything queued, and join the
    /// inference thread. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
        }
        self.shared.cv.notify_all();
        let handle = self.worker.lock().unwrap().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for BatchEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for BatchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEngine")
            .field("input_dim", &self.input_dim)
            .field("cfg", &self.shared.cfg)
            .finish()
    }
}

fn engine_loop(inspector: SchedInspector, shared: Arc<Shared>, telemetry: Telemetry) {
    let mut scratch = PolicyScratch::default();
    let mut batch: Vec<Pending> = Vec::with_capacity(shared.cfg.max_batch);
    loop {
        {
            let mut state = shared.state.lock().unwrap();
            while state.queue.is_empty() && !state.shutdown {
                state = shared.cv.wait(state).unwrap();
            }
            if state.queue.is_empty() && state.shutdown {
                return;
            }
            let take = state.queue.len().min(shared.cfg.max_batch);
            batch.extend(state.queue.drain(..take));
            shared.stats.queue_depth.set(state.queue.len() as f64);
        }

        let started = Instant::now();
        let mut served = 0u64;
        for p in batch.drain(..) {
            if p.deadline_ns.is_some_and(|d| shared.clock.now_ns() > d) {
                shared.stats.deadline_exceeded.inc();
                let _ = p.tx.send((p.token, Completion::DeadlineExceeded));
                continue;
            }
            let decision = inspector.decide(&p.features, &mut scratch);
            served += 1;
            shared
                .stats
                .e2e
                .observe_ticks(shared.clock.now_ns().saturating_sub(p.enqueued_ns));
            let _ = p.tx.send((p.token, Completion::Decision(decision)));
        }
        let infer_elapsed = started.elapsed();
        shared.stats.ok.add(served);
        shared.stats.batches.inc();
        shared.stats.batched_requests.add(served);
        shared
            .stats
            .infer_batch
            .observe_ticks(infer_elapsed.as_nanos() as u64);
        if telemetry.is_enabled() {
            telemetry.count("serve.batches", 1);
            telemetry.count("serve.requests", served);
            telemetry.observe("serve.batch_infer_s", infer_elapsed.as_secs_f64());
            telemetry.gauge("serve.queue_depth", shared.stats.queue_depth.get());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn tiny_inspector() -> SchedInspector {
        use inspector::{FeatureBuilder, FeatureMode, Normalizer};
        use rlcore::BinaryPolicy;
        use simhpc::Metric;
        let fb = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Bsld,
            norm: Normalizer::new(64, 3600.0),
        };
        SchedInspector::new(BinaryPolicy::new(fb.dim(), 7), fb)
    }

    #[test]
    fn completions_arrive_in_submission_order() {
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 8));
        let engine = BatchEngine::start(
            inspector,
            EngineConfig {
                max_batch: 8,
                queue_capacity: 1024,
            },
            Arc::clone(&stats),
            Telemetry::disabled(),
            obs::SystemClock::shared(),
        );
        let (tx, rx) = mpsc::channel();
        for token in 0..100u64 {
            let features = vec![(token % 7) as f32 / 7.0; dim];
            engine.submit(token, features, None, tx.clone()).unwrap();
        }
        drop(tx);
        let tokens: Vec<u64> = rx.iter().map(|(t, _)| t).collect();
        assert_eq!(tokens, (0..100).collect::<Vec<_>>());
        // Join the engine before reading counters: it bumps them after
        // sending the completions.
        engine.shutdown();
        assert_eq!(stats.ok.get(), 100);
        assert!(stats.batches.get() >= 100 / 8);
    }

    #[test]
    fn engine_matches_direct_inspector_calls() {
        use rand::{RngExt, SeedableRng, StdRng};
        let inspector = tiny_inspector();
        let reference = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 16));
        let engine = BatchEngine::start(
            inspector,
            EngineConfig::default(),
            stats,
            Telemetry::disabled(),
            obs::SystemClock::shared(),
        );
        let mut rng = StdRng::seed_from_u64(11);
        let mut scratch = PolicyScratch::default();
        let (tx, rx) = mpsc::channel();
        for token in 0..50u64 {
            let features: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect();
            let expect = reference.decide(&features, &mut scratch);
            engine.submit(token, features, None, tx.clone()).unwrap();
            match rx.recv().unwrap() {
                (t, Completion::Decision(got)) => {
                    assert_eq!(t, token);
                    assert_eq!(got.reject, expect.reject);
                    assert_eq!(got.p_reject, expect.p_reject);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        engine.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_retry_hint() {
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 4));
        let engine = BatchEngine::start(
            inspector,
            EngineConfig {
                max_batch: 4,
                queue_capacity: 2,
            },
            stats,
            Telemetry::disabled(),
            obs::SystemClock::shared(),
        );
        let (tx, rx) = mpsc::channel();
        // Saturate: keep submitting until Overloaded shows up. The engine
        // may drain between submissions, so allow a bounded number of
        // attempts before asserting.
        let mut overloaded = None;
        for token in 0..10_000u64 {
            match engine.submit(token, vec![0.0; dim], None, tx.clone()) {
                Ok(()) => {}
                Err(e) => {
                    overloaded = Some(e);
                    break;
                }
            }
        }
        if let Some(SubmitError::Overloaded { retry_after_ms }) = overloaded {
            assert!(retry_after_ms >= 1);
        }
        drop(tx);
        let drained = rx.iter().count();
        assert!(drained > 0);
        engine.shutdown();
    }

    #[test]
    fn expired_deadline_yields_deadline_exceeded() {
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 4));
        // Virtual clock: start it past the deadline so expiry is certain,
        // with no sleeps and no reliance on wall-clock granularity.
        let (vc, clock) = obs::VirtualClock::shared();
        vc.advance_ns(10_000_000);
        let engine = BatchEngine::start(
            inspector,
            EngineConfig::default(),
            Arc::clone(&stats),
            Telemetry::disabled(),
            clock,
        );
        let (tx, rx) = mpsc::channel();
        engine.submit(0, vec![0.0; dim], Some(1), tx).unwrap();
        assert_eq!(rx.recv().unwrap(), (0, Completion::DeadlineExceeded));
        assert_eq!(stats.deadline_exceeded.get(), 1);
        engine.shutdown();
    }

    #[test]
    fn virtual_clock_drives_deadlines_deterministically() {
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 4));
        let (vc, clock) = obs::VirtualClock::shared();
        let engine = BatchEngine::start(
            inspector,
            EngineConfig::default(),
            Arc::clone(&stats),
            Telemetry::disabled(),
            clock,
        );
        let (tx, rx) = mpsc::channel();
        // Deadline at tick 5ms; clock still at 0 → must succeed.
        engine
            .submit(0, vec![0.2; dim], Some(5_000_000), tx.clone())
            .unwrap();
        assert!(matches!(rx.recv().unwrap(), (0, Completion::Decision(_))));
        // Advance past the deadline before submitting → must expire.
        vc.advance_ns(6_000_000);
        engine
            .submit(1, vec![0.2; dim], Some(5_000_000), tx)
            .unwrap();
        assert_eq!(rx.recv().unwrap(), (1, Completion::DeadlineExceeded));
        assert_eq!(stats.deadline_exceeded.get(), 1);
        assert_eq!(stats.ok.get(), 1);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drain_still_honours_expired_deadlines() {
        // The drain path must expire requests by the injected clock too:
        // queue work with deadlines, advance time past them, then shut
        // down. Everything queued must complete as DeadlineExceeded, and
        // the request ledger must balance.
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 4));
        let (vc, clock) = obs::VirtualClock::shared();
        // Park the engine thread on a first request so the rest stay
        // queued until shutdown's drain.
        let engine = BatchEngine::start(
            inspector,
            EngineConfig {
                max_batch: 1,
                queue_capacity: 64,
            },
            Arc::clone(&stats),
            Telemetry::disabled(),
            clock,
        );
        let (tx, rx) = mpsc::channel();
        for token in 0..8u64 {
            engine
                .submit(token, vec![0.1; dim], Some(1_000_000), tx.clone())
                .unwrap();
        }
        vc.advance_ns(2_000_000); // all deadlines are now in the past
        engine.shutdown();
        drop(tx);
        let completions: Vec<(u64, Completion)> = rx.iter().collect();
        assert_eq!(completions.len(), 8, "drain must answer everything");
        // At least the tail of the queue expired (the engine may have
        // raced the first few through before the clock advanced).
        assert!(completions
            .iter()
            .any(|(_, c)| *c == Completion::DeadlineExceeded));
        assert_eq!(
            stats.ok.get() + stats.deadline_exceeded.get(),
            8,
            "ledger balances after drain"
        );
    }

    #[test]
    fn shutdown_drains_queued_work_then_rejects() {
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let stats = Arc::new(ServerStats::new(dim, 16));
        let engine = BatchEngine::start(
            inspector,
            EngineConfig::default(),
            Arc::clone(&stats),
            Telemetry::disabled(),
            obs::SystemClock::shared(),
        );
        let (tx, rx) = mpsc::channel();
        for token in 0..32u64 {
            engine
                .submit(token, vec![0.5; dim], None, tx.clone())
                .unwrap();
        }
        engine.shutdown();
        assert_eq!(
            engine.submit(99, vec![0.5; dim], None, tx.clone()),
            Err(SubmitError::ShuttingDown)
        );
        drop(tx);
        let completions = rx.iter().count();
        assert_eq!(completions, 32, "shutdown must drain queued requests");
    }
}
