//! `loadgen` — drive a decision server and report throughput/latency.
//!
//! Two modes:
//!
//! * `loadgen --addr HOST:PORT` — open-loop load against an already
//!   running server (e.g. `schedinspector serve`); used by the CI smoke
//!   job. Exits nonzero if no decision came back.
//! * `loadgen --model FILE` — self-contained benchmark: starts in-process
//!   servers (micro-batched at 1/2/4 engine shards, batch-size-1, and
//!   optionally int8-quantized), measures saturation capacity on each plus
//!   open-loop latency on the batched one, and writes the combined
//!   `BENCH_serve.json` report with per-shard batch-size distributions.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::exit;

use obs::json::Json;
use scenario::LoadProfile;
use serve::loadgen::{self, LoadConfig};
use serve::{serve, ServeConfig};

struct Args {
    map: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Args {
        let mut map = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it.next().cloned().unwrap_or_default();
                map.push((key.to_string(), value));
            }
        }
        Args { map }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.map
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen (--addr HOST:PORT | --model FILE) [options]\n\
         \n\
         --addr HOST:PORT   open-loop load against a running server\n\
         --model FILE       in-process benchmark; writes BENCH_serve.json\n\
         \n\
         options:\n\
           --profile FILE     typed load profile (TOML); flags below\n\
                              override its fields     (--addr mode)\n\
           --shards N         server shard count, for connection\n\
                              balancing                (default 1)\n\
           --fairness-out F   write the per-tenant fairness JSON\n\
           --qps N            target arrival rate      (default 50000)\n\
           --secs N           sending duration         (default 5)\n\
           --conns N          parallel connections     (default 4)\n\
           --window N         closed-loop pipelining   (default 64)\n\
           --batch N          server micro-batch cap   (default 16)\n\
           --quantized 1      add an int8 capacity case (--model mode)\n\
           --trace-sample N   trace every Nth request and verify the\n\
                              decision echoes the id   (default 0 = off)\n\
           --seed N           RNG seed                 (default 0)\n\
           --label S          report label             (--addr mode)\n\
           --out FILE         report path (default BENCH_serve.json)\n\
           --shutdown-after 1 send the shutdown verb when done"
    );
    exit(2)
}

fn load_config(args: &Args) -> LoadConfig {
    LoadConfig {
        qps: args.num("qps", 50_000.0f64),
        secs: args.num("secs", 5.0f64),
        conns: args.num("conns", 4usize),
        seed: args.num("seed", 0u64),
        trace_sample: args.num("trace-sample", 0u64),
    }
}

fn write_report(path: &str, report: &Json) {
    let mut text = String::new();
    report.write_json(&mut text);
    text.push('\n');
    std::fs::write(path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        exit(2)
    });
    println!("report -> {path}");
}

/// Resolve the effective load profile for `--addr` mode: start from
/// `--profile FILE` when given (else a steady profile), then let any
/// explicit CLI flags override the corresponding fields.
fn resolve_profile(args: &Args) -> LoadProfile {
    let mut profile = match args.get("profile") {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                exit(2)
            });
            LoadProfile::parse(&text).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                exit(2)
            })
        }
        None => LoadProfile::steady("open_loop", 50_000.0, 5.0, 4, 0),
    };
    if let Some(v) = args.get("qps") {
        profile.qps = v.parse().unwrap_or(profile.qps);
    }
    if let Some(v) = args.get("secs") {
        profile.secs = v.parse().unwrap_or(profile.secs);
    }
    if let Some(v) = args.get("conns") {
        profile.conns = v.parse().unwrap_or(profile.conns);
    }
    if let Some(v) = args.get("seed") {
        profile.seed = v.parse().unwrap_or(profile.seed);
    }
    profile
}

fn run_external(args: &Args, addr: &str) {
    let profile = resolve_profile(args);
    let shards = args.num("shards", 1usize);
    let trace_sample = args.num("trace-sample", 0u64);
    println!(
        "open loop [{}]: {} conns, {:.0} qps target, {:.1}s",
        profile.name,
        profile.balanced_conns(shards),
        profile.qps,
        profile.secs
    );
    let (mut report, fairness) = loadgen::replay_profile(addr, &profile, shards, trace_sample)
        .unwrap_or_else(|e| {
            eprintln!("loadgen failed: {e}");
            exit(1)
        });
    if let Some(label) = args.get("label") {
        report.label = label.to_string();
    }
    println!(
        "  sent {} ok {} overloaded {} errors {}",
        report.sent, report.ok, report.overloaded, report.errors
    );
    if trace_sample > 0 {
        println!(
            "  traced {} round-tripped, {} mismatched",
            report.traced, report.trace_mismatch
        );
    }
    println!(
        "  achieved {:.0}/s, p50 {:.1}us p95 {:.1}us p99 {:.1}us",
        report.achieved_qps, report.p50_us, report.p95_us, report.p99_us
    );
    if !fairness.tenants.is_empty() {
        print!("{}", fairness.render());
    }
    if args.num("shutdown-after", 0u8) != 0 {
        loadgen::send_shutdown(addr).unwrap_or_else(|e| eprintln!("shutdown: {e}"));
        println!("sent shutdown");
    }
    if let Some(out) = args.get("out") {
        write_report(out, &report.to_json());
    }
    if let Some(out) = args.get("fairness-out") {
        write_report(out, &fairness.to_json());
    }
    if report.ok == 0 {
        eprintln!("no successful decisions — failing");
        exit(1);
    }
    if trace_sample > 0 && (report.trace_mismatch > 0 || report.traced == 0) {
        eprintln!("trace round-trip failed — failing");
        exit(1);
    }
}

/// One capacity-sweep entry: a server configuration to saturate.
struct CaseSpec {
    key: String,
    max_batch: usize,
    shards: usize,
    quantized: bool,
    /// Enable the flight recorder and stamp a trace id on every request
    /// (with promotion disabled) — the recorder-overhead case.
    traced: bool,
}

/// One capacity case: start an in-process server with the given
/// batch/shard/quantized settings, saturate it closed-loop, and return the
/// achieved QPS plus the case's JSON report (including the per-shard
/// batch-size distribution pulled from the live stats block).
fn capacity_case(
    inspector: &inspector::SchedInspector,
    spec: &CaseSpec,
    window: usize,
    conns: usize,
    secs: f64,
    seed: u64,
) -> (f64, Json) {
    let (key, shards) = (spec.key.as_str(), spec.shards);
    // Connections pin to engine shards by `conn_id % shards`, so an
    // arbitrary `--conns` leaves some shards with an extra closed loop and
    // skews the per-shard batch-size stats. Round the connection count up
    // to a shard multiple so every shard sees the same offered load.
    let conns =
        LoadProfile::steady(key, 1.0, 1.0, conns as u32, seed).balanced_conns(shards) as usize;
    // The traced case measures raw flight-recorder cost: every request
    // carries a trace id, but the slow threshold is unreachable so no
    // trace is ever promoted (the acceptance bar is on recording alone).
    let trace = spec.traced.then(|| serve::TraceConfig {
        slow_us: u64::MAX,
        store_dir: None,
        dump_path: None,
        ..serve::TraceConfig::default()
    });
    let handle = serve(
        inspector.clone(),
        ServeConfig {
            max_batch: spec.max_batch,
            shards,
            quantized: spec.quantized,
            workers: conns.max(2),
            trace,
            ..ServeConfig::default()
        },
        obs::Telemetry::disabled(),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        exit(1)
    });
    let addr = handle.addr().to_string();
    let trace_sample = if spec.traced { 1 } else { 0 };
    let mut report = loadgen::closed_loop(&addr, window, conns, secs, seed, trace_sample)
        .unwrap_or_else(|e| {
            eprintln!("closed loop failed: {e}");
            exit(1)
        });
    report.label = key.to_string();
    let stats = handle.stats();
    println!(
        "  {key}: {:.0} decisions/s (mean batch {:.1}, p99 {:.1}us, {} shard{})",
        report.achieved_qps,
        stats.mean_batch_size(),
        report.p99_us,
        shards,
        if shards == 1 { "" } else { "s" }
    );
    let mut j = report.to_json();
    if let Json::Object(m) = &mut j {
        m.insert("shards".into(), Json::Number(shards as f64));
        m.insert("quantized".into(), Json::Bool(spec.quantized));
        m.insert(
            "mean_batch_size".into(),
            Json::Number(stats.mean_batch_size()),
        );
        // Per-shard batch-size distribution: how evenly routing spread the
        // load and how well each shard's micro-batching amortized.
        let per_shard = stats
            .shards
            .iter()
            .map(|s| {
                let mut sm = BTreeMap::new();
                sm.insert("ok".into(), Json::Number(s.ok.get() as f64));
                sm.insert("batches".into(), Json::Number(s.batches.get() as f64));
                sm.insert("mean_batch_size".into(), Json::Number(s.mean_batch_size()));
                sm.insert(
                    "batch_size_p50".into(),
                    Json::Number(s.batch_size.quantile_ticks(0.50) as f64),
                );
                sm.insert(
                    "batch_size_p95".into(),
                    Json::Number(s.batch_size.quantile_ticks(0.95) as f64),
                );
                Json::Object(sm)
            })
            .collect();
        m.insert("per_shard".into(), Json::Array(per_shard));
    }
    handle.shutdown();
    (report.achieved_qps, j)
}

fn run_compare(args: &Args, model: &str) {
    let inspector = inspector::model_io::load(Path::new(model)).unwrap_or_else(|e| {
        eprintln!("cannot load {model}: {e}");
        exit(2)
    });
    let cfg = load_config(args);
    let window = args.num("window", 64usize);
    let max_batch = args.num("batch", 16usize);
    let quantized = args.num("quantized", 0u8) != 0;
    let cap_secs = (cfg.secs / 2.0).max(1.0);

    // The batch1/microbatch pair isolates the micro-batching win; the
    // shards sweep isolates the sharding win on top of it.
    let case = |key: &str, max_batch: usize, shards: usize, quantized: bool| CaseSpec {
        key: key.to_string(),
        max_batch,
        shards,
        quantized,
        traced: false,
    };
    let mut cases = vec![
        case("microbatch", max_batch, 1, false),
        case("batch1", 1, 1, false),
        case("microbatch_shards2", max_batch, 2, false),
        case("microbatch_shards4", max_batch, 4, false),
        // Same as `microbatch` but with the flight recorder on and every
        // request traced; `trace_overhead` below compares the two.
        CaseSpec {
            traced: true,
            ..case("microbatch_traced", max_batch, 1, false)
        },
    ];
    if quantized {
        cases.push(case("microbatch_quantized", max_batch, 1, true));
    }

    let mut capacity = BTreeMap::new();
    let mut qps_by_key: BTreeMap<String, f64> = BTreeMap::new();
    for spec in &cases {
        let (qps, j) = capacity_case(&inspector, spec, window, cfg.conns, cap_secs, cfg.seed);
        qps_by_key.insert(spec.key.clone(), qps);
        capacity.insert(spec.key.clone(), j);
    }
    let batched_qps = qps_by_key.get("microbatch").copied().unwrap_or(0.0);
    let batch1_qps = qps_by_key.get("batch1").copied().unwrap_or(0.0);
    let ratio = |num: &str| {
        let n = qps_by_key.get(num).copied().unwrap_or(0.0);
        if batched_qps > 0.0 {
            n / batched_qps
        } else {
            0.0
        }
    };
    capacity.insert(
        "speedup".into(),
        Json::Number(if batch1_qps > 0.0 {
            batched_qps / batch1_qps
        } else {
            0.0
        }),
    );
    capacity.insert(
        "shard_scaling_2x".into(),
        Json::Number(ratio("microbatch_shards2")),
    );
    capacity.insert(
        "shard_scaling_4x".into(),
        Json::Number(ratio("microbatch_shards4")),
    );
    // Fractional capacity lost to the flight recorder with promotion
    // disabled (acceptance bar: <= 0.01).
    capacity.insert(
        "trace_overhead".into(),
        Json::Number((1.0 - ratio("microbatch_traced")).max(0.0)),
    );

    // Open-loop latency on a fresh micro-batched server.
    let handle = serve(
        inspector,
        ServeConfig {
            max_batch,
            workers: cfg.conns.max(2),
            ..ServeConfig::default()
        },
        obs::Telemetry::disabled(),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        exit(1)
    });
    let addr = handle.addr().to_string();
    println!(
        "open loop: {} conns, {:.0} qps target, {:.1}s",
        cfg.conns, cfg.qps, cfg.secs
    );
    let open = loadgen::open_loop(&addr, &cfg).unwrap_or_else(|e| {
        eprintln!("open loop failed: {e}");
        exit(1)
    });
    println!(
        "  achieved {:.0}/s, p50 {:.1}us p95 {:.1}us p99 {:.1}us",
        open.achieved_qps, open.p50_us, open.p95_us, open.p99_us
    );
    handle.shutdown();

    let sustained = open.achieved_qps >= 50_000.0 || batched_qps >= 50_000.0;
    let mut root = BTreeMap::new();
    root.insert("bench".into(), Json::String("serve".into()));
    let mut config = BTreeMap::new();
    config.insert("qps".into(), Json::Number(cfg.qps));
    config.insert("secs".into(), Json::Number(cfg.secs));
    config.insert("conns".into(), Json::Number(cfg.conns as f64));
    config.insert("window".into(), Json::Number(window as f64));
    config.insert("max_batch".into(), Json::Number(max_batch as f64));
    config.insert("quantized".into(), Json::Bool(quantized));
    config.insert("seed".into(), Json::Number(cfg.seed as f64));
    root.insert("config".into(), Json::Object(config));
    root.insert("capacity".into(), Json::Object(capacity));
    root.insert("open_loop".into(), open.to_json());
    root.insert("sustained_ge_50k".into(), Json::Bool(sustained));
    let report = Json::Object(root);
    write_report(args.get("out").unwrap_or("BENCH_serve.json"), &report);
    if open.ok == 0 {
        eprintln!("no successful decisions — failing");
        exit(1);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&argv);
    match (args.get("addr"), args.get("model")) {
        (Some(addr), None) => run_external(&args, addr),
        (None, Some(model)) => run_compare(&args, model),
        _ => usage(),
    }
}
