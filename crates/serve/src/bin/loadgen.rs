//! `loadgen` — drive a decision server and report throughput/latency.
//!
//! Two modes:
//!
//! * `loadgen --addr HOST:PORT` — open-loop load against an already
//!   running server (e.g. `schedinspector serve`); used by the CI smoke
//!   job. Exits nonzero if no decision came back.
//! * `loadgen --model FILE` — self-contained benchmark: starts in-process
//!   servers (micro-batched, then batch-size-1), measures saturation
//!   capacity on both plus open-loop latency on the batched one, and
//!   writes the combined `BENCH_serve.json` report.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::exit;

use obs::json::Json;
use serve::loadgen::{self, LoadConfig};
use serve::{serve, ServeConfig};

struct Args {
    map: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Args {
        let mut map = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it.next().cloned().unwrap_or_default();
                map.push((key.to_string(), value));
            }
        }
        Args { map }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.map
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen (--addr HOST:PORT | --model FILE) [options]\n\
         \n\
         --addr HOST:PORT   open-loop load against a running server\n\
         --model FILE       in-process benchmark; writes BENCH_serve.json\n\
         \n\
         options:\n\
           --qps N            target arrival rate      (default 50000)\n\
           --secs N           sending duration         (default 5)\n\
           --conns N          parallel connections     (default 4)\n\
           --window N         closed-loop pipelining   (default 64)\n\
           --batch N          server micro-batch cap   (default 16)\n\
           --seed N           RNG seed                 (default 0)\n\
           --label S          report label             (--addr mode)\n\
           --out FILE         report path (default BENCH_serve.json)\n\
           --shutdown-after 1 send the shutdown verb when done"
    );
    exit(2)
}

fn load_config(args: &Args) -> LoadConfig {
    LoadConfig {
        qps: args.num("qps", 50_000.0f64),
        secs: args.num("secs", 5.0f64),
        conns: args.num("conns", 4usize),
        seed: args.num("seed", 0u64),
    }
}

fn write_report(path: &str, report: &Json) {
    let mut text = String::new();
    report.write_json(&mut text);
    text.push('\n');
    std::fs::write(path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        exit(2)
    });
    println!("report -> {path}");
}

fn run_external(args: &Args, addr: &str) {
    let cfg = load_config(args);
    println!(
        "open loop: {} conns, {:.0} qps target, {:.1}s",
        cfg.conns, cfg.qps, cfg.secs
    );
    let mut report = loadgen::open_loop(addr, &cfg).unwrap_or_else(|e| {
        eprintln!("loadgen failed: {e}");
        exit(1)
    });
    if let Some(label) = args.get("label") {
        report.label = label.to_string();
    }
    println!(
        "  sent {} ok {} overloaded {} errors {}",
        report.sent, report.ok, report.overloaded, report.errors
    );
    println!(
        "  achieved {:.0}/s, p50 {:.1}us p95 {:.1}us p99 {:.1}us",
        report.achieved_qps, report.p50_us, report.p95_us, report.p99_us
    );
    if args.num("shutdown-after", 0u8) != 0 {
        loadgen::send_shutdown(addr).unwrap_or_else(|e| eprintln!("shutdown: {e}"));
        println!("sent shutdown");
    }
    if let Some(out) = args.get("out") {
        write_report(out, &report.to_json());
    }
    if report.ok == 0 {
        eprintln!("no successful decisions — failing");
        exit(1);
    }
}

fn run_compare(args: &Args, model: &str) {
    let inspector = inspector::model_io::load(Path::new(model)).unwrap_or_else(|e| {
        eprintln!("cannot load {model}: {e}");
        exit(2)
    });
    let cfg = load_config(args);
    let window = args.num("window", 64usize);
    let max_batch = args.num("batch", 16usize);
    let cap_secs = (cfg.secs / 2.0).max(1.0);

    let mut capacity = BTreeMap::new();
    let mut batched_qps = 0.0f64;
    let mut batch1_qps = 0.0f64;
    for (key, batch) in [("microbatch", max_batch), ("batch1", 1usize)] {
        let handle = serve(
            inspector.clone(),
            ServeConfig {
                max_batch: batch,
                workers: cfg.conns.max(2),
                ..ServeConfig::default()
            },
            obs::Telemetry::disabled(),
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot start server: {e}");
            exit(1)
        });
        let addr = handle.addr().to_string();
        let mut report = loadgen::closed_loop(&addr, window, cfg.conns, cap_secs, cfg.seed)
            .unwrap_or_else(|e| {
                eprintln!("closed loop failed: {e}");
                exit(1)
            });
        report.label = key.to_string();
        let stats = handle.stats();
        println!(
            "  {key}: {:.0} decisions/s (mean batch {:.1})",
            report.achieved_qps,
            stats.mean_batch_size()
        );
        if key == "microbatch" {
            batched_qps = report.achieved_qps;
        } else {
            batch1_qps = report.achieved_qps;
        }
        let mut j = report.to_json();
        if let Json::Object(m) = &mut j {
            m.insert(
                "mean_batch_size".into(),
                Json::Number(stats.mean_batch_size()),
            );
        }
        capacity.insert(key.to_string(), j);
        handle.shutdown();
    }
    capacity.insert(
        "speedup".into(),
        Json::Number(if batch1_qps > 0.0 {
            batched_qps / batch1_qps
        } else {
            0.0
        }),
    );

    // Open-loop latency on a fresh micro-batched server.
    let handle = serve(
        inspector,
        ServeConfig {
            max_batch,
            workers: cfg.conns.max(2),
            ..ServeConfig::default()
        },
        obs::Telemetry::disabled(),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        exit(1)
    });
    let addr = handle.addr().to_string();
    println!(
        "open loop: {} conns, {:.0} qps target, {:.1}s",
        cfg.conns, cfg.qps, cfg.secs
    );
    let open = loadgen::open_loop(&addr, &cfg).unwrap_or_else(|e| {
        eprintln!("open loop failed: {e}");
        exit(1)
    });
    println!(
        "  achieved {:.0}/s, p50 {:.1}us p95 {:.1}us p99 {:.1}us",
        open.achieved_qps, open.p50_us, open.p95_us, open.p99_us
    );
    handle.shutdown();

    let sustained = open.achieved_qps >= 50_000.0 || batched_qps >= 50_000.0;
    let mut root = BTreeMap::new();
    root.insert("bench".into(), Json::String("serve".into()));
    let mut config = BTreeMap::new();
    config.insert("qps".into(), Json::Number(cfg.qps));
    config.insert("secs".into(), Json::Number(cfg.secs));
    config.insert("conns".into(), Json::Number(cfg.conns as f64));
    config.insert("window".into(), Json::Number(window as f64));
    config.insert("max_batch".into(), Json::Number(max_batch as f64));
    config.insert("seed".into(), Json::Number(cfg.seed as f64));
    root.insert("config".into(), Json::Object(config));
    root.insert("capacity".into(), Json::Object(capacity));
    root.insert("open_loop".into(), open.to_json());
    root.insert("sustained_ge_50k".into(), Json::Bool(sustained));
    let report = Json::Object(root);
    write_report(args.get("out").unwrap_or("BENCH_serve.json"), &report);
    if open.ok == 0 {
        eprintln!("no successful decisions — failing");
        exit(1);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&argv);
    match (args.get("addr"), args.get("model")) {
        (Some(addr), None) => run_external(&args, addr),
        (None, Some(model)) => run_compare(&args, model),
        _ => usage(),
    }
}
