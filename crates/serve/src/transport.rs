//! Byte-stream and accept-time abstractions for the TCP front end.
//!
//! The server's connection handlers are generic over [`Transport`] — the
//! minimal read/write surface they actually use — with [`TcpStream`] as
//! the production implementation (every call forwards directly; the
//! abstraction is monomorphized away). A fault-injection harness wraps the
//! same `TcpStream` in a deterministic failure shim and hands it back
//! through an [`AcceptPolicy`], exercising torn reads, torn writes, stalls
//! and resets against the *real* server code, not a mock of it.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// The byte-stream operations a connection handler performs. Implementors
/// must be `Send` (connections cross the acceptor→worker channel).
pub trait Transport: Send + 'static {
    /// Read up to `buf.len()` bytes. Returning `Ok(0)` means the peer
    /// closed; `WouldBlock`/`TimedOut` mean the configured read timeout
    /// elapsed and the caller should poll its shutdown flag and retry.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Write the whole buffer or fail.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// One-time connection setup: disable Nagle and install the read
    /// timeout that doubles as the shutdown-flag polling period.
    fn configure(&mut self, read_timeout: Option<Duration>) -> io::Result<()>;
}

impl Transport for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        Read::read(self, buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        Write::write_all(self, buf)
    }

    fn configure(&mut self, read_timeout: Option<Duration>) -> io::Result<()> {
        self.set_nodelay(true)?;
        self.set_read_timeout(read_timeout)
    }
}

/// Decides what happens to each accepted connection before it reaches the
/// worker pool: pass it through (production), wrap it in a fault shim
/// (chaos tests), or drop it on the floor (accept-time faults).
pub trait AcceptPolicy: Send + 'static {
    /// The connection type workers receive.
    type Conn: Transport;

    /// Admit (possibly wrapping) or drop (`None`) a freshly accepted
    /// connection. Called on the acceptor thread, once per connection, in
    /// accept order — a deterministic place to key per-connection fault
    /// schedules.
    fn admit(&mut self, stream: TcpStream) -> Option<Self::Conn>;
}

/// The production policy: every connection is admitted unchanged.
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectAccept;

impl AcceptPolicy for DirectAccept {
    type Conn = TcpStream;

    fn admit(&mut self, stream: TcpStream) -> Option<TcpStream> {
        Some(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    #[test]
    fn tcp_stream_transport_round_trips_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut stream = stream;
            Write::write_all(&mut stream, line.as_bytes()).unwrap();
        });
        let mut conn: TcpStream = TcpStream::connect(addr).unwrap();
        Transport::configure(&mut conn, Some(Duration::from_millis(500))).unwrap();
        Transport::write_all(&mut conn, b"hello transport\n").unwrap();
        let mut buf = [0u8; 64];
        let mut got = Vec::new();
        while !got.ends_with(b"\n") {
            match Transport::read(&mut conn, &mut buf) {
                Ok(0) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    continue
                }
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(got, b"hello transport\n");
        echo.join().unwrap();
    }

    #[test]
    fn direct_accept_admits_everything() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let _ = TcpStream::connect(addr).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        assert!(DirectAccept.admit(stream).is_some());
        client.join().unwrap();
    }
}
