//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line. Requests are parsed with
//! the hand-rolled `obs::json` codec; responses are emitted with the same
//! codec (structured payloads) or direct formatting (the infer hot path,
//! mirroring `obs::Event::write_json`).
//!
//! # Grammar
//!
//! ```text
//! request  = infer | stats | ping | shutdown
//! infer    = {"verb":"infer","id":N,"features":[x, ...][,"deadline_ms":N][,"trace":HEX16]}
//! stats    = {"verb":"stats"}
//! ping     = {"verb":"ping"}
//! shutdown = {"verb":"shutdown"}
//!
//! response = decision | error | pong | stats-reply | draining
//! decision = {"id":N,"ok":true,"decision":"accept"|"reject","p_reject":x[,"trace":HEX16]}
//! error    = {"id":N|null,"ok":false,"error":CODE,"detail":S[,"retry_after_ms":N]}
//! pong     = {"ok":true,"pong":true}
//! stats-reply = {"ok":true,"stats":{...}}
//! draining = {"ok":true,"draining":true}
//! ```
//!
//! Responses to one connection are written in the order its requests were
//! received. Clients should nevertheless correlate by `id`: ids are chosen
//! by the client and echoed verbatim.
//!
//! `trace` is an optional 64-bit trace context, encoded as a 16-hex-digit
//! string (JSON numbers go through f64 and would lose precision). Absent
//! means untraced — internally represented as trace id 0, which is
//! reserved and rejected if sent explicitly. A server echoes the id on the
//! decision so clients can correlate flight-recorder dumps with replies;
//! lines without the field are byte-identical to the pre-trace protocol.

use obs::json::{escape_into, parse, Json};
use obs::trace::{hex16, parse_hex16};

use inspector::Decision;

/// Error code: the request line was not valid protocol JSON.
pub const ERR_MALFORMED: &str = "malformed";
/// Error code: the request parsed but is semantically invalid (wrong
/// feature dimension, unknown verb, bad field type).
pub const ERR_BAD_REQUEST: &str = "bad_request";
/// Error code: the request queue is full; retry after `retry_after_ms`.
pub const ERR_OVERLOADED: &str = "overloaded";
/// Error code: the request sat in the queue past its deadline.
pub const ERR_DEADLINE: &str = "deadline_exceeded";
/// Error code: the server is draining and takes no new work.
pub const ERR_SHUTTING_DOWN: &str = "shutting_down";
/// Error code: the inference engine died (should never happen).
pub const ERR_INTERNAL: &str = "internal";

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Decide accept/reject for one feature vector.
    Infer {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// The feature vector (must match the model's input dimension).
        features: Vec<f32>,
        /// Optional per-request deadline, milliseconds from receipt.
        deadline_ms: Option<u64>,
        /// Trace context (0 = untraced; the field is omitted on the wire).
        trace: u64,
    },
    /// Snapshot the server's counters and latency histograms.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to drain and exit (if enabled in its config).
    Shutdown,
}

/// Parse one request line. The error string is safe to echo back in an
/// [`ERR_MALFORMED`]/[`ERR_BAD_REQUEST`] response's `detail`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse(line)?;
    let verb = v
        .get("verb")
        .and_then(Json::as_str)
        .ok_or("missing string field \"verb\"")?;
    match verb {
        "infer" => {
            let id = v
                .get("id")
                .and_then(Json::as_f64)
                .ok_or("infer requires a numeric \"id\"")? as u64;
            let raw = v
                .get("features")
                .and_then(Json::as_array)
                .ok_or("infer requires an array \"features\"")?;
            let mut features = Vec::with_capacity(raw.len());
            for x in raw {
                features.push(x.as_f64().ok_or("\"features\" must contain only numbers")? as f32);
            }
            let deadline_ms = match v.get("deadline_ms") {
                None => None,
                Some(d) => Some(d.as_f64().ok_or("\"deadline_ms\" must be a number")? as u64),
            };
            let trace = parse_trace_field(&v)?;
            Ok(Request::Infer {
                id,
                features,
                deadline_ms,
                trace,
            })
        }
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown verb {other:?}")),
    }
}

/// Parse the optional `trace` field shared by requests and decisions:
/// absent → 0 (untraced); present → a nonzero 16-hex-digit string.
fn parse_trace_field(v: &Json) -> Result<u64, String> {
    match v.get("trace") {
        None => Ok(0),
        Some(t) => {
            let s = t
                .as_str()
                .ok_or("\"trace\" must be a hex string, not a number")?;
            match parse_hex16(s) {
                Some(0) => Err("trace id 0 is reserved (means untraced; omit the field)".into()),
                Some(id) => Ok(id),
                None => Err(format!("\"trace\" is not a 64-bit hex id: {s:?}")),
            }
        }
    }
}

/// Append a decision response line (with trailing newline). A nonzero
/// `trace` echoes the request's trace context; 0 keeps the legacy line
/// byte-identical.
pub fn write_decision(out: &mut String, id: u64, d: Decision, trace: u64) {
    use std::fmt::Write as _;
    let decision = if d.reject { "reject" } else { "accept" };
    let _ = write!(
        out,
        "{{\"id\":{id},\"ok\":true,\"decision\":\"{decision}\",\"p_reject\":{}",
        d.p_reject
    );
    if trace != 0 {
        let _ = write!(out, ",\"trace\":\"{}\"", hex16(trace));
    }
    out.push_str("}\n");
}

/// Append an error response line (with trailing newline). `detail` is
/// escaped; `id` of `None` encodes as `null` (line-level failures where no
/// id could be recovered).
pub fn write_error(
    out: &mut String,
    id: Option<u64>,
    code: &str,
    detail: &str,
    retry_after_ms: Option<u64>,
) {
    use std::fmt::Write as _;
    match id {
        Some(id) => {
            let _ = write!(out, "{{\"id\":{id},\"ok\":false,\"error\":\"{code}\"");
        }
        None => {
            let _ = write!(out, "{{\"id\":null,\"ok\":false,\"error\":\"{code}\"");
        }
    }
    out.push_str(",\"detail\":");
    escape_into(detail, out);
    if let Some(ms) = retry_after_ms {
        let _ = write!(out, ",\"retry_after_ms\":{ms}");
    }
    out.push_str("}\n");
}

/// Append a pong response line.
pub fn write_pong(out: &mut String) {
    out.push_str("{\"ok\":true,\"pong\":true}\n");
}

/// Append a draining acknowledgement line.
pub fn write_draining(out: &mut String) {
    out.push_str("{\"ok\":true,\"draining\":true}\n");
}

/// Append a stats response line wrapping the given snapshot.
pub fn write_stats(out: &mut String, stats: &Json) {
    out.push_str("{\"ok\":true,\"stats\":");
    stats.write_json(out);
    out.push_str("}\n");
}

/// A parsed server response (client side: loadgen, tests, tooling).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A served decision.
    Decision {
        /// Echoed request id.
        id: u64,
        /// `true` when the inspector rejected the scheduling decision.
        reject: bool,
        /// The policy's reject probability.
        p_reject: f32,
        /// Echoed trace context (0 = untraced).
        trace: u64,
    },
    /// A request- or line-level error.
    Error {
        /// Echoed request id (absent for unparseable lines).
        id: Option<u64>,
        /// One of the `ERR_*` codes.
        code: String,
        /// Backpressure hint, present with [`ERR_OVERLOADED`].
        retry_after_ms: Option<u64>,
    },
    /// Reply to `ping`.
    Pong,
    /// Reply to `stats`: the snapshot object.
    Stats(Json),
    /// Reply to `shutdown`: the server is draining.
    Draining,
}

/// Parse one response line.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = parse(line)?;
    let ok = v
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or("missing bool field \"ok\"")?;
    if !ok {
        let id = v.get("id").and_then(Json::as_f64).map(|x| x as u64);
        let code = v
            .get("error")
            .and_then(Json::as_str)
            .ok_or("error response missing \"error\"")?
            .to_string();
        let retry_after_ms = v
            .get("retry_after_ms")
            .and_then(Json::as_f64)
            .map(|x| x as u64);
        return Ok(Response::Error {
            id,
            code,
            retry_after_ms,
        });
    }
    if v.get("pong").is_some() {
        return Ok(Response::Pong);
    }
    if v.get("draining").is_some() {
        return Ok(Response::Draining);
    }
    if let Some(stats) = v.get("stats") {
        return Ok(Response::Stats(stats.clone()));
    }
    let id = v
        .get("id")
        .and_then(Json::as_f64)
        .ok_or("decision response missing \"id\"")? as u64;
    let reject = match v.get("decision").and_then(Json::as_str) {
        Some("reject") => true,
        Some("accept") => false,
        _ => return Err("decision response missing \"decision\"".into()),
    };
    let p_reject = v
        .get("p_reject")
        .and_then(Json::as_f64)
        .ok_or("decision response missing \"p_reject\"")? as f32;
    let trace = parse_trace_field(&v)?;
    Ok(Response::Decision {
        id,
        reject,
        p_reject,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse_request(r#"{"verb":"infer","id":7,"features":[0.5,1]}"#).unwrap(),
            Request::Infer {
                id: 7,
                features: vec![0.5, 1.0],
                deadline_ms: None,
                trace: 0
            }
        );
        assert_eq!(
            parse_request(r#"{"verb":"infer","id":1,"features":[],"deadline_ms":250}"#).unwrap(),
            Request::Infer {
                id: 1,
                features: vec![],
                deadline_ms: Some(250),
                trace: 0
            }
        );
        assert_eq!(
            parse_request(r#"{"verb":"infer","id":1,"features":[1],"trace":"00ff0000000000ab"}"#)
                .unwrap(),
            Request::Infer {
                id: 1,
                features: vec![1.0],
                deadline_ms: None,
                trace: 0x00ff_0000_0000_00ab
            }
        );
        assert_eq!(
            parse_request(r#"{"verb":"stats"}"#).unwrap(),
            Request::Stats
        );
        assert_eq!(parse_request(r#"{"verb":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(r#"{"verb":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("").is_err());
        assert!(parse_request("{").is_err());
        assert!(parse_request(r#"{"verb":"nope"}"#).is_err());
        assert!(parse_request(r#"{"verb":"infer","features":[1]}"#).is_err());
        assert!(parse_request(r#"{"verb":"infer","id":1,"features":[true]}"#).is_err());
        assert!(parse_request(r#"{"verb":"infer","id":1}"#).is_err());
        // Trace ids must be nonzero hex strings.
        assert!(
            parse_request(r#"{"verb":"infer","id":1,"features":[1],"trace":7}"#).is_err(),
            "numeric trace must be rejected"
        );
        assert!(parse_request(r#"{"verb":"infer","id":1,"features":[1],"trace":"xyz"}"#).is_err());
        assert!(
            parse_request(r#"{"verb":"infer","id":1,"features":[1],"trace":"0000000000000000"}"#)
                .is_err(),
            "trace id 0 is reserved"
        );
    }

    #[test]
    fn decision_roundtrip() {
        let mut out = String::new();
        write_decision(
            &mut out,
            42,
            Decision {
                reject: true,
                p_reject: 0.8125,
            },
            0,
        );
        assert!(out.ends_with('\n'));
        assert!(
            !out.contains("trace"),
            "untraced decision must keep the legacy wire shape: {out}"
        );
        match parse_response(out.trim()).unwrap() {
            Response::Decision {
                id,
                reject,
                p_reject,
                trace,
            } => {
                assert_eq!(id, 42);
                assert!(reject);
                assert_eq!(p_reject, 0.8125);
                assert_eq!(trace, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn traced_decision_echoes_full_width_trace_id() {
        let mut out = String::new();
        write_decision(
            &mut out,
            9,
            Decision {
                reject: false,
                p_reject: 0.25,
            },
            0xdead_beef_0000_0001,
        );
        assert!(out.contains("\"trace\":\"deadbeef00000001\""), "{out}");
        match parse_response(out.trim()).unwrap() {
            Response::Decision { trace, .. } => assert_eq!(trace, 0xdead_beef_0000_0001),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn float_payloads_survive_the_wire_bit_exactly() {
        // `{}` prints the shortest representation that re-parses to the
        // same f32 — including through an f64 intermediate.
        for p in [0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 0.999_999_94] {
            let mut out = String::new();
            write_decision(
                &mut out,
                1,
                Decision {
                    reject: false,
                    p_reject: p,
                },
                0,
            );
            match parse_response(out.trim()).unwrap() {
                Response::Decision { p_reject, .. } => assert_eq!(p_reject, p),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn error_roundtrip_with_retry_hint() {
        let mut out = String::new();
        write_error(
            &mut out,
            Some(3),
            ERR_OVERLOADED,
            "queue full \"now\"",
            Some(12),
        );
        match parse_response(out.trim()).unwrap() {
            Response::Error {
                id,
                code,
                retry_after_ms,
            } => {
                assert_eq!(id, Some(3));
                assert_eq!(code, ERR_OVERLOADED);
                assert_eq!(retry_after_ms, Some(12));
            }
            other => panic!("unexpected {other:?}"),
        }
        let mut out = String::new();
        write_error(&mut out, None, ERR_MALFORMED, "bad line", None);
        match parse_response(out.trim()).unwrap() {
            Response::Error { id, code, .. } => {
                assert_eq!(id, None);
                assert_eq!(code, ERR_MALFORMED);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn control_responses_roundtrip() {
        let mut out = String::new();
        write_pong(&mut out);
        assert_eq!(parse_response(out.trim()).unwrap(), Response::Pong);
        out.clear();
        write_draining(&mut out);
        assert_eq!(parse_response(out.trim()).unwrap(), Response::Draining);
        out.clear();
        let snapshot = crate::stats::ServerStats::new(8, 16).to_json();
        write_stats(&mut out, &snapshot);
        match parse_response(out.trim()).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.get("input_dim").and_then(Json::as_f64), Some(8.0))
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
