//! The TCP front end: acceptor, fixed worker pool, connection handler.
//!
//! ```text
//! acceptor thread ──sync_channel(max_pending_conns)──▶ worker pool (N threads)
//!                                                        │  parse lines
//!                                                        ▼
//!                                           BatchEngine (1 inference thread)
//! ```
//!
//! Backpressure is explicit at both layers: the acceptor's bounded
//! connection channel answers `overloaded` and closes when the pool is
//! saturated, and the engine's bounded request queue answers `overloaded`
//! with a `retry_after_ms` hint. Graceful shutdown sets a flag and pokes
//! the listener with a loopback connection so the blocking `accept` wakes;
//! workers notice the flag within one read-timeout tick, and the engine
//! drains everything already queued before its thread exits.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use inspector::SchedInspector;
use obs::clock::deadline_after_ms;
use obs::trace::{hex16, span_id};
use obs::{Clock, Recorder, SpanKind, SpanRecord, SpanStatus, SystemClock, Telemetry};

use crate::engine::{shard_for, BatchEngine, Completion, EngineConfig, SubmitError};
use crate::protocol::{self, Request};
use crate::stats::ServerStats;
use crate::transport::{AcceptPolicy, DirectAccept, Transport};

/// Server configuration. The defaults suit tests and local benchmarking;
/// production deployments mainly tune `workers`, `max_batch` and
/// `queue_capacity`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Connection-handler threads.
    pub workers: usize,
    /// Accepted-but-unclaimed connection backlog; beyond it new
    /// connections get an `overloaded` line and are closed.
    pub max_pending_conns: usize,
    /// Micro-batch cap for the inference engine.
    pub max_batch: usize,
    /// Bounded inference queue depth (per engine shard).
    pub queue_capacity: usize,
    /// Engine shards (per-core inference threads); connections are routed
    /// to shards consistently by connection id.
    pub shards: usize,
    /// Serve decisions through the int8-quantized forward path.
    pub quantized: bool,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Socket read timeout; also the shutdown-flag polling period.
    pub read_timeout_ms: u64,
    /// Whether the `shutdown` protocol verb is honoured.
    pub allow_shutdown_verb: bool,
    /// Longest protocol line accepted (bytes, newline excluded). A client
    /// streaming junk without a newline is answered with a typed
    /// `malformed` error and disconnected once it exceeds this, instead of
    /// growing the accumulation buffer without bound.
    pub max_line_bytes: usize,
    /// Time source for request deadlines. Production keeps the default
    /// [`SystemClock`]; tests inject an [`obs::VirtualClock`] to drive
    /// deadline and drain behavior without wall-clock sleeps.
    pub clock: Arc<dyn Clock>,
    /// Run-store directory to watch for new model generations
    /// (`schedinspector train --store DIR` publishes there). When set, a
    /// watcher thread polls the store's manifest and hot-swaps each new
    /// checkpoint into the engine mid-traffic — zero dropped requests.
    pub model_dir: Option<String>,
    /// Registry poll period for `model_dir`, in milliseconds.
    pub model_poll_ms: u64,
    /// Generation of the model the server starts with (`0` unless the
    /// initial model was loaded from the run store). The watcher only
    /// reports generations strictly newer than this.
    pub initial_model_generation: u64,
    /// End-to-end request tracing. `None` (the default) disables the
    /// flight recorder entirely: traced requests still echo their id on
    /// the wire, but no spans are recorded and the hot path pays only a
    /// branch on the trace id.
    pub trace: Option<TraceConfig>,
}

/// Flight-recorder and tail-sampling settings (see [`obs::Recorder`]).
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Per-shard flight-recorder ring capacity, in span records. Every
    /// traced request's spans land here; the ring overwrites its oldest
    /// records when full (counted as `obs.trace.ring_overwrites`).
    pub ring_capacity: usize,
    /// Tail-sampling threshold: traces whose end-to-end latency exceeds
    /// this many microseconds are promoted to the telemetry sink (and the
    /// journal, when configured).
    pub slow_us: u64,
    /// Journal promoted traces into this run-store directory under
    /// `trace/<16-hex trace id>` keys; `schedinspector trace DIR`
    /// reconstructs them.
    pub store_dir: Option<String>,
    /// On shutdown, dump the whole flight-recorder ring (every shard) to
    /// this file as `flight_record` JSONL — the post-mortem escape hatch
    /// for traces that were never promoted.
    pub dump_path: Option<String>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 4096,
            slow_us: 50_000,
            store_dir: None,
            dump_path: None,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_pending_conns: 64,
            max_batch: 16,
            queue_capacity: 4096,
            shards: 1,
            quantized: false,
            default_deadline_ms: None,
            read_timeout_ms: 25,
            allow_shutdown_verb: true,
            max_line_bytes: 1 << 20,
            clock: SystemClock::shared(),
            model_dir: None,
            model_poll_ms: 50,
            initial_model_generation: 0,
            trace: None,
        }
    }
}

/// Shared server-side tracing state: the flight recorder the engine also
/// writes into, the tail-sampling threshold, and the promotion sinks.
struct Tracing {
    recorder: Recorder,
    slow_ns: u64,
    telemetry: Telemetry,
    /// Journal for promoted traces (`trace/<16hex>` keys).
    store: Option<Mutex<store::RunStore>>,
    dump_path: Option<String>,
    finalized: AtomicBool,
}

impl Tracing {
    fn new(cfg: &ServeConfig, telemetry: Telemetry) -> Arc<Tracing> {
        let (recorder, slow_ns, store, dump_path) = match &cfg.trace {
            Some(tc) => (
                Recorder::new(cfg.shards.max(1), tc.ring_capacity),
                tc.slow_us.saturating_mul(1_000),
                tc.store_dir
                    .as_ref()
                    .and_then(|dir| store::RunStore::open(dir).ok().map(Mutex::new)),
                tc.dump_path.clone(),
            ),
            None => (Recorder::disabled(), u64::MAX, None, None),
        };
        Arc::new(Tracing {
            recorder,
            slow_ns,
            telemetry,
            store,
            dump_path,
            finalized: AtomicBool::new(false),
        })
    }

    /// Server-side completion of one traced request: records the root
    /// request span (and, when the engine never saw the request, its
    /// terminal `dropped` span; for decisions, the reply `write` span),
    /// then applies the tail-sampling rules. No-op for untraced requests
    /// or when tracing is disabled.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        trace: u64,
        shard: usize,
        status: SpanStatus,
        generation: u64,
        accept_ns: u64,
        write_start_ns: u64,
        now_ns: u64,
        accept_gen: u64,
        engine_saw_it: bool,
    ) {
        if trace == 0 || !self.recorder.is_enabled() {
            return;
        }
        let span = |kind, parent_id, status, start_ns, end_ns| SpanRecord {
            trace_id: trace,
            span_id: span_id(trace, kind),
            parent_id,
            kind,
            status,
            shard: shard as u32,
            batch_seq: 0,
            model_generation: generation,
            start_ns,
            end_ns,
        };
        if status == SpanStatus::Ok {
            // The write span covers reply assembly; the socket write
            // itself is shared across pipelined replies and not
            // attributable to one request.
            self.recorder.record(
                shard,
                &span(
                    SpanKind::Write,
                    span_id(trace, SpanKind::Forward),
                    SpanStatus::Ok,
                    write_start_ns,
                    now_ns,
                ),
            );
        } else if !engine_saw_it {
            // Refused before the engine (overloaded / draining / bad
            // dimension): the terminal span hangs off the request root.
            self.recorder.record(
                shard,
                &span(
                    SpanKind::Dropped,
                    span_id(trace, SpanKind::Request),
                    status,
                    now_ns,
                    now_ns,
                ),
            );
        }
        self.recorder.record(
            shard,
            &span(SpanKind::Request, 0, status, accept_ns, now_ns),
        );

        // Tail-based sampling: everything above recorded into the ring;
        // only error / swap-coincident / slow traces get promoted out.
        let reason = if status != SpanStatus::Ok {
            Some("error")
        } else if generation != accept_gen {
            Some("swap")
        } else if now_ns.saturating_sub(accept_ns) > self.slow_ns {
            Some("slow")
        } else {
            None
        };
        let Some(reason) = reason else { return };
        let spans = self.recorder.collect(trace);
        self.recorder.note_promoted();
        self.telemetry
            .trace_promoted("serve.trace", trace, reason, spans.len() as u64);
        for s in &spans {
            self.telemetry.flight_record(s);
        }
        if let Some(store) = &self.store {
            let mut value = String::new();
            for s in &spans {
                s.write_flight_record_json(0.0, &mut value);
            }
            let mut store = store.lock().unwrap();
            store.put(format!("trace/{}", hex16(trace)), value.into_bytes());
            let _ = store.commit();
        }
    }

    /// Emit the trace/sink counters once as telemetry `count` events (so
    /// `schedinspector report` can surface them from the sidecar) and dump
    /// the ring if configured. Idempotent.
    fn finalize(&self, registry: &obs::Registry) {
        if self.finalized.swap(true, Ordering::SeqCst) || !self.recorder.is_enabled() {
            return;
        }
        let ts = self.recorder.stats();
        self.telemetry.count("obs.trace.recorded", ts.recorded);
        self.telemetry.count("obs.trace.promoted", ts.promoted);
        self.telemetry
            .count("obs.trace.ring_overwrites", ts.ring_overwrites);
        // Sidecar write failures never reach the sidecar themselves; the
        // registry counter is the only record, so surface its final value
        // as one delta event. (The registry copy double-counts from the
        // echo, but the process is shutting down.)
        let dropped = registry
            .counter(
                "obs.sink.dropped_events",
                "telemetry events dropped by sidecar write failures",
            )
            .get();
        if dropped > 0 {
            self.telemetry.count("obs.sink.dropped_events", dropped);
        }
        if let Some(path) = &self.dump_path {
            let mut out = String::new();
            for s in self.recorder.dump() {
                s.write_flight_record_json(0.0, &mut out);
            }
            let _ = std::fs::write(path, out);
        }
        if let Some(store) = &self.store {
            let _ = store.lock().unwrap().flush();
        }
    }
}

/// Flag + wake-pipe pair that unblocks the acceptor. Cloneable via `Arc`;
/// safe to trigger from any thread (including a connection handler serving
/// the `shutdown` verb).
#[derive(Debug)]
pub struct ShutdownSignal {
    flag: AtomicBool,
    addr: SocketAddr,
}

impl ShutdownSignal {
    fn new(addr: SocketAddr) -> Self {
        ShutdownSignal {
            flag: AtomicBool::new(false),
            addr,
        }
    }

    /// Begin draining: no new connections, no new requests. Idempotent.
    pub fn trigger(&self) {
        if !self.flag.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept() with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Whether draining has begun.
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A running server. Dropping the handle shuts the server down; call
/// [`ServerHandle::wait`] to instead block until something else (the
/// `shutdown` verb, [`ShutdownSignal::trigger`]) stops it.
pub struct ServerHandle {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    signal: Arc<ShutdownSignal>,
    engine: Arc<BatchEngine>,
    tracing: Arc<Tracing>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    model_watcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server counters (shared with the running threads).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// The metrics registry backing [`ServerHandle::stats`]; share it with
    /// an [`obs::MetricsExporter`] to expose the live counters on
    /// `/metrics`.
    pub fn registry(&self) -> Arc<obs::Registry> {
        Arc::clone(self.stats.registry())
    }

    /// A signal that shuts this server down; hand it to e.g. a Ctrl-C
    /// handler.
    pub fn shutdown_signal(&self) -> Arc<ShutdownSignal> {
        Arc::clone(&self.signal)
    }

    /// Generation of the model currently serving decisions.
    pub fn model_generation(&self) -> u64 {
        self.engine.model_generation()
    }

    /// The flight recorder behind this server (a disabled handle when
    /// [`ServeConfig::trace`] is `None`). Tests and the chaos harness use
    /// it to collect span chains without going through promotion.
    pub fn recorder(&self) -> Recorder {
        self.tracing.recorder.clone()
    }

    /// Hot-swap the serving model mid-traffic (same contract as
    /// [`BatchEngine::swap_model`]): validates the network shape and that
    /// `generation` strictly advances, then publishes with zero dropped
    /// or misrouted requests. This is the admin-path twin of the
    /// `model_dir` registry watcher; the chaos harness drives it to
    /// assert the swap invariant deterministically.
    pub fn swap_model(&self, generation: u64, model: tinynn::Mlp) -> Result<(), String> {
        self.engine.swap_model(generation, model)
    }

    /// Drain and stop: close the listener, finish queued inference, join
    /// every thread.
    pub fn shutdown(mut self) {
        self.signal.trigger();
        self.join_threads();
    }

    /// Block until the server stops on its own (e.g. via the `shutdown`
    /// verb), then join every thread.
    pub fn wait(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            if acceptor.join().is_err() {
                self.stats.thread_panics.inc();
            }
        }
        for worker in self.workers.drain(..) {
            if worker.join().is_err() {
                self.stats.thread_panics.inc();
            }
        }
        if let Some(watcher) = self.model_watcher.take() {
            if watcher.join().is_err() {
                self.stats.thread_panics.inc();
            }
        }
        self.engine.shutdown();
        self.tracing.finalize(self.stats.registry());
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.signal.trigger();
        self.join_threads();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("draining", &self.signal.is_triggered())
            .finish()
    }
}

/// Bind, spawn the engine + acceptor + worker pool, and return
/// immediately. Production entry point: plain TCP connections, no fault
/// layer ([`DirectAccept`]).
pub fn serve(
    inspector: SchedInspector,
    cfg: ServeConfig,
    telemetry: Telemetry,
) -> io::Result<ServerHandle> {
    serve_with(inspector, cfg, telemetry, DirectAccept)
}

/// [`serve`] with an explicit [`AcceptPolicy`], the seam a fault-injection
/// harness uses to wrap every connection in a deterministic failure shim.
/// The server code under test is byte-for-byte the production path —
/// `serve` is this function monomorphized over [`DirectAccept`].
pub fn serve_with<A: AcceptPolicy>(
    inspector: SchedInspector,
    cfg: ServeConfig,
    telemetry: Telemetry,
    mut accept: A,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let stats = Arc::new(ServerStats::sharded(
        inspector.input_dim(),
        cfg.max_batch,
        cfg.shards.max(1),
    ));
    let tracing = Tracing::new(&cfg, telemetry.clone());
    let engine = BatchEngine::start(
        inspector,
        EngineConfig {
            max_batch: cfg.max_batch,
            queue_capacity: cfg.queue_capacity,
            shards: cfg.shards.max(1),
            quantized: cfg.quantized,
            model_generation: cfg.initial_model_generation,
            trace: tracing.recorder.clone(),
        },
        Arc::clone(&stats),
        telemetry,
        Arc::clone(&cfg.clock),
    );
    let signal = Arc::new(ShutdownSignal::new(addr));
    // Connection ids: assigned once at accept, the routing key that pins a
    // connection to one engine shard for its whole lifetime.
    let next_conn_id = Arc::new(std::sync::atomic::AtomicU64::new(0));

    let (conn_tx, conn_rx) = mpsc::sync_channel::<A::Conn>(cfg.max_pending_conns.max(1));
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for i in 0..cfg.workers.max(1) {
        let conn_rx = Arc::clone(&conn_rx);
        let engine = Arc::clone(&engine);
        let stats = Arc::clone(&stats);
        let signal = Arc::clone(&signal);
        let next_conn_id = Arc::clone(&next_conn_id);
        let tracing = Arc::clone(&tracing);
        let cfg = cfg.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || {
                    worker_loop(
                        &conn_rx,
                        &engine,
                        &stats,
                        &signal,
                        &cfg,
                        &next_conn_id,
                        &tracing,
                    )
                })
                .expect("spawn connection worker"),
        );
    }

    let acceptor = {
        let signal = Arc::clone(&signal);
        let stats = Arc::clone(&stats);
        std::thread::Builder::new()
            .name("serve-acceptor".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if signal.is_triggered() {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // The policy may drop the connection outright
                    // (accept-time fault) before it counts for anything.
                    let Some(conn) = accept.admit(stream) else {
                        continue;
                    };
                    match conn_tx.try_send(conn) {
                        Ok(()) => {}
                        Err(TrySendError::Full(mut conn)) => {
                            stats.accept_overloaded.inc();
                            let mut line = String::new();
                            protocol::write_error(
                                &mut line,
                                None,
                                protocol::ERR_OVERLOADED,
                                "connection backlog full",
                                Some(50),
                            );
                            let _ = conn.write_all(line.as_bytes());
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                // conn_tx drops here; workers drain the backlog then exit.
            })
            .expect("spawn acceptor")
    };

    let model_watcher = cfg.model_dir.as_ref().map(|dir| {
        let dir = std::path::PathBuf::from(dir);
        let engine = Arc::clone(&engine);
        let stats = Arc::clone(&stats);
        let signal = Arc::clone(&signal);
        let poll = Duration::from_millis(cfg.model_poll_ms.max(1));
        std::thread::Builder::new()
            .name("serve-model-watcher".into())
            .spawn(move || model_watcher_loop(&dir, &engine, &stats, &signal, poll))
            .expect("spawn model watcher")
    });

    Ok(ServerHandle {
        addr,
        stats,
        signal,
        engine,
        tracing,
        acceptor: Some(acceptor),
        workers,
        model_watcher,
    })
}

/// Registry-watcher thread: poll the run store's manifest and hot-swap
/// each new model generation into the engine. A bad checkpoint (corrupt
/// text, wrong dimensions) or a transient store error is counted and
/// skipped — serving continues on the previous generation.
fn model_watcher_loop(
    dir: &std::path::Path,
    engine: &BatchEngine,
    stats: &ServerStats,
    signal: &ShutdownSignal,
    poll: Duration,
) {
    let mut watcher = store::ModelWatcher::starting_after(dir, engine.model_generation());
    while !signal.is_triggered() {
        match watcher.poll() {
            Ok(Some((generation, text))) => match inspector::model_io::from_text(&text) {
                // A rejected swap (shape/generation) is already counted
                // by swap_model itself.
                Ok(insp) => {
                    let _ = engine.swap_model(generation, insp.policy.mlp().clone());
                }
                Err(_) => stats.model_swap_errors.inc(),
            },
            Ok(None) => {}
            Err(_) => stats.model_swap_errors.inc(),
        }
        std::thread::sleep(poll);
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<T: Transport>(
    conn_rx: &Mutex<Receiver<T>>,
    engine: &BatchEngine,
    stats: &ServerStats,
    signal: &ShutdownSignal,
    cfg: &ServeConfig,
    next_conn_id: &std::sync::atomic::AtomicU64,
    tracing: &Arc<Tracing>,
) {
    loop {
        let conn = { conn_rx.lock().unwrap().recv() };
        match conn {
            Ok(stream) => {
                stats.connections.inc();
                let conn_id = next_conn_id.fetch_add(1, Ordering::Relaxed);
                let _ = handle_connection(stream, conn_id, engine, stats, signal, cfg, tracing);
            }
            Err(_) => break, // acceptor gone and backlog drained
        }
    }
}

/// One in-order response slot for a processed request line.
enum Part {
    /// Response text already decided (errors, pong, stats, draining).
    Ready(String),
    /// Waiting on the engine.
    Pending {
        /// Engine completion token.
        token: u64,
        /// Client-chosen request id, echoed in the reply.
        id: u64,
        /// Trace context (0 = untraced).
        trace: u64,
        /// Clock tick at accept, the traced request's root span start.
        accept_ns: u64,
        /// Model generation at accept; a differing generation on the
        /// completion means the request straddled a hot swap.
        accept_gen: u64,
    },
}

#[allow(clippy::too_many_arguments)]
fn handle_connection<T: Transport>(
    mut stream: T,
    conn_id: u64,
    engine: &BatchEngine,
    stats: &ServerStats,
    signal: &ShutdownSignal,
    cfg: &ServeConfig,
    tracing: &Arc<Tracing>,
) -> io::Result<()> {
    stream.configure(Some(Duration::from_millis(cfg.read_timeout_ms.max(1))))?;

    let (done_tx, done_rx) = mpsc::channel::<(u64, Completion)>();
    let mut next_token = 0u64;
    let mut acc: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 8192];
    let mut parts: Vec<Part> = Vec::new();
    let mut stash: BTreeMap<u64, Completion> = BTreeMap::new();
    let mut out = String::new();
    let mut close_after_flush = false;

    loop {
        if signal.is_triggered() {
            return Ok(());
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        acc.extend_from_slice(&chunk[..n]);

        // Split off every complete line and process it.
        let mut start = 0usize;
        while let Some(nl) = acc[start..].iter().position(|&b| b == b'\n') {
            let line = String::from_utf8_lossy(&acc[start..start + nl]);
            process_line(
                line.trim(),
                conn_id,
                engine,
                stats,
                signal,
                cfg,
                tracing,
                &done_tx,
                &mut next_token,
                &mut parts,
                &mut close_after_flush,
            );
            start += nl + 1;
        }
        acc.drain(..start);

        // An unterminated line beyond the cap will never become valid;
        // answer with a typed error and hang up instead of buffering an
        // unbounded amount of junk.
        if acc.len() > cfg.max_line_bytes {
            stats.malformed.inc();
            let mut line = String::new();
            protocol::write_error(
                &mut line,
                None,
                protocol::ERR_MALFORMED,
                &format!("line exceeds {} bytes", cfg.max_line_bytes),
                None,
            );
            parts.push(Part::Ready(line));
            close_after_flush = true;
        }

        // Assemble responses in request order; engine completions for this
        // connection arrive FIFO, so this never blocks longer than the
        // engine takes to reach our newest submission.
        out.clear();
        for part in parts.drain(..) {
            match part {
                Part::Ready(text) => out.push_str(&text),
                Part::Pending {
                    token,
                    id,
                    trace,
                    accept_ns,
                    accept_gen,
                } => {
                    let completion = loop {
                        if let Some(c) = stash.remove(&token) {
                            break c;
                        }
                        match done_rx.recv() {
                            Ok((t, c)) if t == token => break c,
                            Ok((t, c)) => {
                                stash.insert(t, c);
                            }
                            Err(_) => break Completion::DeadlineExceeded,
                        }
                    };
                    let write_start_ns = if trace != 0 { cfg.clock.now_ns() } else { 0 };
                    match completion {
                        Completion::Decision {
                            decision,
                            generation,
                        } => {
                            protocol::write_decision(&mut out, id, decision, trace);
                            if trace != 0 {
                                tracing.finish(
                                    trace,
                                    shard_for(conn_id, engine.shards()),
                                    SpanStatus::Ok,
                                    generation,
                                    accept_ns,
                                    write_start_ns,
                                    cfg.clock.now_ns(),
                                    accept_gen,
                                    true,
                                );
                            }
                        }
                        Completion::DeadlineExceeded => {
                            protocol::write_error(
                                &mut out,
                                Some(id),
                                protocol::ERR_DEADLINE,
                                "request expired in queue",
                                None,
                            );
                            if trace != 0 {
                                tracing.finish(
                                    trace,
                                    shard_for(conn_id, engine.shards()),
                                    SpanStatus::DeadlineExceeded,
                                    engine.model_generation(),
                                    accept_ns,
                                    write_start_ns,
                                    cfg.clock.now_ns(),
                                    accept_gen,
                                    true,
                                );
                            }
                        }
                    }
                }
            }
        }
        if !out.is_empty() {
            stream.write_all(out.as_bytes())?;
        }
        if close_after_flush {
            return Ok(());
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn process_line(
    line: &str,
    conn_id: u64,
    engine: &BatchEngine,
    stats: &ServerStats,
    signal: &ShutdownSignal,
    cfg: &ServeConfig,
    tracing: &Tracing,
    done_tx: &mpsc::Sender<(u64, Completion)>,
    next_token: &mut u64,
    parts: &mut Vec<Part>,
    close_after_flush: &mut bool,
) {
    if line.is_empty() {
        return;
    }
    let mut ready = String::new();
    match protocol::parse_request(line) {
        Err(msg) => {
            stats.malformed.inc();
            protocol::write_error(&mut ready, None, protocol::ERR_MALFORMED, &msg, None);
        }
        Ok(Request::Ping) => protocol::write_pong(&mut ready),
        Ok(Request::Stats) => protocol::write_stats(&mut ready, &stats.to_json()),
        Ok(Request::Shutdown) => {
            if cfg.allow_shutdown_verb {
                protocol::write_draining(&mut ready);
                signal.trigger();
                *close_after_flush = true;
            } else {
                protocol::write_error(
                    &mut ready,
                    None,
                    protocol::ERR_BAD_REQUEST,
                    "shutdown verb disabled",
                    None,
                );
            }
        }
        Ok(Request::Infer {
            id,
            features,
            deadline_ms,
            trace,
        }) => {
            stats.requests.inc();
            // Traced requests stamp their root span's start here and note
            // the serving generation, so a completion served by a newer
            // generation is recognisably swap-coincident.
            let accept_ns = if trace != 0 { cfg.clock.now_ns() } else { 0 };
            let accept_gen = if trace != 0 {
                engine.model_generation()
            } else {
                0
            };
            let shard = shard_for(conn_id, engine.shards());
            if features.len() != engine.input_dim() {
                stats.malformed.inc();
                stats.bad_dim.inc();
                let msg = format!(
                    "expected {} features, got {}",
                    engine.input_dim(),
                    features.len()
                );
                protocol::write_error(&mut ready, Some(id), protocol::ERR_BAD_REQUEST, &msg, None);
                if trace != 0 {
                    let now = cfg.clock.now_ns();
                    tracing.finish(
                        trace,
                        shard,
                        SpanStatus::BadDim,
                        accept_gen,
                        accept_ns,
                        now,
                        now,
                        accept_gen,
                        false,
                    );
                }
            } else {
                let deadline_ns = deadline_ms
                    .or(cfg.default_deadline_ms)
                    .map(|ms| deadline_after_ms(cfg.clock.now_ns(), ms));
                let token = *next_token;
                *next_token += 1;
                match engine.submit(
                    conn_id,
                    token,
                    features,
                    deadline_ns,
                    trace,
                    done_tx.clone(),
                ) {
                    Ok(()) => {
                        parts.push(Part::Pending {
                            token,
                            id,
                            trace,
                            accept_ns,
                            accept_gen,
                        });
                        return;
                    }
                    Err(SubmitError::Overloaded { retry_after_ms }) => {
                        stats.overloaded.inc();
                        protocol::write_error(
                            &mut ready,
                            Some(id),
                            protocol::ERR_OVERLOADED,
                            "inference queue full",
                            Some(retry_after_ms),
                        );
                        if trace != 0 {
                            let now = cfg.clock.now_ns();
                            tracing.finish(
                                trace,
                                shard,
                                SpanStatus::Overloaded,
                                accept_gen,
                                accept_ns,
                                now,
                                now,
                                accept_gen,
                                false,
                            );
                        }
                    }
                    Err(SubmitError::ShuttingDown) => {
                        stats.draining_rejected.inc();
                        protocol::write_error(
                            &mut ready,
                            Some(id),
                            protocol::ERR_SHUTTING_DOWN,
                            "server is draining",
                            None,
                        );
                        if trace != 0 {
                            let now = cfg.clock.now_ns();
                            tracing.finish(
                                trace,
                                shard,
                                SpanStatus::Draining,
                                accept_gen,
                                accept_ns,
                                now,
                                now,
                                accept_gen,
                                false,
                            );
                        }
                    }
                }
            }
        }
    }
    parts.push(Part::Ready(ready));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_response, Response};
    use inspector::{FeatureBuilder, FeatureMode, Normalizer};
    use rlcore::{BinaryPolicy, PolicyScratch};
    use simhpc::Metric;
    use std::io::{BufRead, BufReader, Write};

    fn tiny_inspector() -> SchedInspector {
        let fb = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Bsld,
            norm: Normalizer::new(64, 3600.0),
        };
        SchedInspector::new(BinaryPolicy::new(fb.dim(), 13), fb)
    }

    fn start() -> (ServerHandle, SchedInspector) {
        let inspector = tiny_inspector();
        let handle = serve(
            inspector.clone(),
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            Telemetry::disabled(),
        )
        .expect("bind ephemeral port");
        (handle, inspector)
    }

    fn connect(handle: &ServerHandle) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    fn roundtrip(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        line: &str,
    ) -> Response {
        Write::write_all(stream, line.as_bytes()).unwrap();
        Write::write_all(stream, b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        parse_response(reply.trim()).expect("server replies with valid protocol JSON")
    }

    #[test]
    fn ping_stats_and_infer_roundtrip() {
        let (handle, inspector) = start();
        let (mut stream, mut reader) = connect(&handle);

        assert_eq!(
            roundtrip(&mut stream, &mut reader, r#"{"verb":"ping"}"#),
            Response::Pong
        );

        let dim = inspector.input_dim();
        let features: Vec<f32> = (0..dim).map(|i| i as f32 / dim as f32).collect();
        let mut scratch = PolicyScratch::default();
        let expect = inspector.decide(&features, &mut scratch);
        let payload = features
            .iter()
            .map(|x| format!("{x}"))
            .collect::<Vec<_>>()
            .join(",");
        let reply = roundtrip(
            &mut stream,
            &mut reader,
            &format!(r#"{{"verb":"infer","id":5,"features":[{payload}]}}"#),
        );
        match reply {
            Response::Decision {
                id,
                reject,
                p_reject,
                trace,
            } => {
                assert_eq!(id, 5);
                assert_eq!(reject, expect.reject);
                assert_eq!(p_reject, expect.p_reject);
                assert_eq!(trace, 0, "untraced request must stay untraced");
            }
            other => panic!("unexpected {other:?}"),
        }

        match roundtrip(&mut stream, &mut reader, r#"{"verb":"stats"}"#) {
            Response::Stats(s) => {
                use obs::json::Json;
                assert_eq!(s.get("requests").and_then(Json::as_f64), Some(1.0));
                assert_eq!(s.get("ok").and_then(Json::as_f64), Some(1.0));
                assert_eq!(s.get("input_dim").and_then(Json::as_f64), Some(dim as f64));
            }
            other => panic!("unexpected {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn malformed_and_bad_dim_lines_keep_the_connection_alive() {
        let (handle, inspector) = start();
        let (mut stream, mut reader) = connect(&handle);

        match roundtrip(&mut stream, &mut reader, "this is not json") {
            Response::Error { id, code, .. } => {
                assert_eq!(id, None);
                assert_eq!(code, protocol::ERR_MALFORMED);
            }
            other => panic!("unexpected {other:?}"),
        }
        match roundtrip(
            &mut stream,
            &mut reader,
            r#"{"verb":"infer","id":9,"features":[1,2]}"#,
        ) {
            Response::Error { id, code, .. } => {
                assert_eq!(id, Some(9));
                assert_eq!(code, protocol::ERR_BAD_REQUEST);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Still serving after both errors.
        assert_eq!(
            roundtrip(&mut stream, &mut reader, r#"{"verb":"ping"}"#),
            Response::Pong
        );
        let _ = inspector;
        handle.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let (handle, inspector) = start();
        let (mut stream, mut reader) = connect(&handle);
        let dim = inspector.input_dim();
        let mut batch = String::new();
        for id in 0..64 {
            let payload = vec![format!("{}", id as f32 / 64.0); dim].join(",");
            batch.push_str(&format!(
                "{{\"verb\":\"infer\",\"id\":{id},\"features\":[{payload}]}}\n"
            ));
        }
        Write::write_all(&mut stream, batch.as_bytes()).unwrap();
        for id in 0..64 {
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            match parse_response(reply.trim()).unwrap() {
                Response::Decision { id: got, .. } => assert_eq!(got, id),
                other => panic!("unexpected {other:?}"),
            }
        }
        handle.shutdown();
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let (handle, inspector) = start();
        let (mut stream, mut reader) = connect(&handle);
        let dim = inspector.input_dim();
        let payload = vec!["0.5"; dim].join(",");
        match roundtrip(
            &mut stream,
            &mut reader,
            &format!(r#"{{"verb":"infer","id":1,"features":[{payload}],"deadline_ms":0}}"#),
        ) {
            Response::Error { id, code, .. } => {
                assert_eq!(id, Some(1));
                assert_eq!(code, protocol::ERR_DEADLINE);
            }
            // A fast enough engine may still beat a 0ms deadline's clock
            // granularity; either outcome is protocol-correct.
            Response::Decision { id, .. } => assert_eq!(id, 1),
            other => panic!("unexpected {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn shutdown_verb_drains_and_stops_the_server() {
        let (handle, _inspector) = start();
        let addr = handle.addr();
        let (mut stream, mut reader) = connect(&handle);
        assert_eq!(
            roundtrip(&mut stream, &mut reader, r#"{"verb":"shutdown"}"#),
            Response::Draining
        );
        handle.wait(); // returns only because the verb triggered the signal
        assert!(
            TcpStream::connect(addr).is_err()
                || TcpStream::connect(addr)
                    .and_then(|mut s| {
                        Write::write_all(&mut s, b"{\"verb\":\"ping\"}\n")?;
                        let mut buf = String::new();
                        BufReader::new(s).read_line(&mut buf)
                    })
                    .map(|n| n == 0)
                    .unwrap_or(true),
            "server must stop accepting after shutdown"
        );
    }

    #[test]
    fn oversized_unterminated_line_gets_typed_error_and_close() {
        let inspector = tiny_inspector();
        let handle = serve(
            inspector,
            ServeConfig {
                workers: 1,
                max_line_bytes: 4096,
                ..ServeConfig::default()
            },
            Telemetry::disabled(),
        )
        .unwrap();
        let (mut stream, mut reader) = connect(&handle);
        // Stream 64 KiB of junk with no newline.
        let junk = vec![b'x'; 64 * 1024];
        // The server may hang up mid-write; that's the point.
        let _ = Write::write_all(&mut stream, &junk);
        let mut reply = String::new();
        let n = reader.read_line(&mut reply).unwrap_or(0);
        if n > 0 {
            match parse_response(reply.trim()).unwrap() {
                Response::Error { code, .. } => assert_eq!(code, protocol::ERR_MALFORMED),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Connection is closed afterwards.
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap_or(0), 0);
        assert!(handle.stats().malformed.get() >= 1);
        handle.shutdown();
    }

    #[test]
    fn request_ledger_balances_after_drain() {
        let (handle, inspector) = start();
        let (mut stream, mut reader) = connect(&handle);
        let dim = inspector.input_dim();
        let good = vec!["0.5"; dim].join(",");
        // 1 ok + 1 bad_dim; malformed junk is not an infer request.
        roundtrip(
            &mut stream,
            &mut reader,
            &format!(r#"{{"verb":"infer","id":1,"features":[{good}]}}"#),
        );
        roundtrip(
            &mut stream,
            &mut reader,
            r#"{"verb":"infer","id":2,"features":[1,2]}"#,
        );
        roundtrip(&mut stream, &mut reader, "junk line");
        drop(stream);
        drop(reader);
        let stats = handle.stats();
        handle.shutdown();
        assert_eq!(stats.requests.get(), 2);
        assert_eq!(stats.bad_dim.get(), 1);
        assert_eq!(stats.thread_panics.get(), 0);
        assert_eq!(
            stats.accounted_requests(),
            stats.requests.get(),
            "every request accounted exactly once after drain"
        );
    }

    #[test]
    fn virtual_clock_expires_server_deadlines_without_sleeping() {
        // Thread a VirtualClock through ServeConfig, advance it past the
        // default deadline before submitting, and observe a deterministic
        // deadline_exceeded — no wall-clock dependence at all.
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let (vc, clock) = obs::VirtualClock::shared();
        let handle = serve(
            inspector,
            ServeConfig {
                workers: 1,
                default_deadline_ms: Some(10),
                clock,
                ..ServeConfig::default()
            },
            Telemetry::disabled(),
        )
        .unwrap();
        let (mut stream, mut reader) = connect(&handle);
        let payload = vec!["0.5"; dim].join(",");
        // Clock at 0: the deadline (10ms from "now") cannot expire no
        // matter how slow the wall-clock machine is.
        match roundtrip(
            &mut stream,
            &mut reader,
            &format!(r#"{{"verb":"infer","id":1,"features":[{payload}]}}"#),
        ) {
            Response::Decision { id, .. } => assert_eq!(id, 1),
            other => panic!("unexpected {other:?}"),
        }
        // Now pin the clock far ahead: the *next* request's deadline is
        // computed at now_ns, so expire it by advancing between submit
        // and the engine pass is racy — instead give it an explicit
        // deadline already in the past relative to a further advance.
        vc.advance_ns(1_000_000_000);
        match roundtrip(
            &mut stream,
            &mut reader,
            &format!(r#"{{"verb":"infer","id":2,"features":[{payload}],"deadline_ms":0}}"#),
        ) {
            // deadline = now; engine sees now > deadline only if the
            // engine reads a later tick — with a static virtual clock the
            // decision wins. Either is protocol-correct; assert the reply
            // arrived and the ledger balances below.
            Response::Decision { id, .. } => assert_eq!(id, 2),
            Response::Error { id, code, .. } => {
                assert_eq!(id, Some(2));
                assert_eq!(code, protocol::ERR_DEADLINE);
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = handle.stats();
        handle.shutdown();
        assert_eq!(stats.accounted_requests(), stats.requests.get());
    }

    #[test]
    fn model_dir_watcher_hot_swaps_new_generations() {
        let dir = std::env::temp_dir().join(format!("serve-model-watch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut registry = store::RunStore::open(&dir).unwrap();
        let handle = serve(
            tiny_inspector(),
            ServeConfig {
                workers: 1,
                model_dir: Some(dir.display().to_string()),
                model_poll_ms: 2,
                ..ServeConfig::default()
            },
            Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(handle.model_generation(), 0);

        // Publish a retrained model (same shape, different weights): the
        // watcher must hot-swap it in while the server keeps answering.
        let fb = FeatureBuilder {
            mode: FeatureMode::Manual,
            metric: Metric::Bsld,
            norm: Normalizer::new(64, 3600.0),
        };
        let retrained = SchedInspector::new(BinaryPolicy::new(fb.dim(), 91), fb);
        let generation = registry
            .publish_model(&inspector::model_io::to_text(&retrained))
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.model_generation() < generation && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(handle.model_generation(), generation);
        assert_eq!(handle.stats().model_swaps.get(), 1);
        assert_eq!(
            handle.stats().model_generation.get(),
            generation as f64,
            "serve.model.generation gauge advanced with the swap"
        );

        // Decisions now come from the retrained network, bit-exactly.
        let (mut stream, mut reader) = connect(&handle);
        let dim = retrained.input_dim();
        let features: Vec<f32> = (0..dim).map(|i| i as f32 / dim as f32).collect();
        let mut scratch = PolicyScratch::default();
        let expect = retrained.decide(&features, &mut scratch);
        let payload = features
            .iter()
            .map(|x| format!("{x}"))
            .collect::<Vec<_>>()
            .join(",");
        match roundtrip(
            &mut stream,
            &mut reader,
            &format!(r#"{{"verb":"infer","id":1,"features":[{payload}]}}"#),
        ) {
            Response::Decision { id, p_reject, .. } => {
                assert_eq!(id, 1);
                assert_eq!(p_reject.to_bits(), expect.p_reject.to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_request_echoes_id_promotes_and_journals_a_complete_chain() {
        use obs::trace::{hex16, summarize};
        let dir = std::env::temp_dir().join(format!("serve-trace-store-{}", std::process::id()));
        let dump =
            std::env::temp_dir().join(format!("serve-trace-dump-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&dump);
        let inspector = tiny_inspector();
        let dim = inspector.input_dim();
        let (telemetry, sink) = Telemetry::in_memory();
        let handle = serve(
            inspector,
            ServeConfig {
                workers: 1,
                trace: Some(TraceConfig {
                    ring_capacity: 256,
                    slow_us: 0, // promote everything: every trace is "slow"
                    store_dir: Some(dir.display().to_string()),
                    dump_path: Some(dump.display().to_string()),
                }),
                ..ServeConfig::default()
            },
            telemetry,
        )
        .unwrap();
        let recorder = handle.recorder();
        assert!(recorder.is_enabled());

        let trace_id = 0xabcd_0000_0000_1234u64;
        let (mut stream, mut reader) = connect(&handle);
        let payload = vec!["0.5"; dim].join(",");
        match roundtrip(
            &mut stream,
            &mut reader,
            &format!(
                r#"{{"verb":"infer","id":7,"features":[{payload}],"trace":"{trace_id:016x}"}}"#
            ),
        ) {
            Response::Decision { id, trace, .. } => {
                assert_eq!(id, 7);
                assert_eq!(trace, trace_id, "decision must echo the trace context");
            }
            other => panic!("unexpected {other:?}"),
        }
        // An untraced request on the same connection stays untraced.
        match roundtrip(
            &mut stream,
            &mut reader,
            &format!(r#"{{"verb":"infer","id":8,"features":[{payload}]}}"#),
        ) {
            Response::Decision { id, trace, .. } => {
                assert_eq!(id, 8);
                assert_eq!(trace, 0);
            }
            other => panic!("unexpected {other:?}"),
        }

        // The flight recorder holds the full chain and it reconstructs.
        let spans = recorder.collect(trace_id);
        let summary = summarize(&spans).expect("complete request/queue/batch/forward/write chain");
        assert_eq!(summary.trace_id, trace_id);
        assert_eq!(summary.status, obs::SpanStatus::Ok);
        assert_eq!(summary.model_generation, 0);
        assert!(summary.batch_seq != 0);

        drop(stream);
        drop(reader);
        handle.shutdown();

        // Tail sampling promoted it (slow_us = 0): telemetry carries the
        // promotion and its spans, and shutdown emitted the counters.
        let events = sink.events();
        assert!(
            events.iter().any(
                |e| matches!(e, obs::Event::TracePromoted { trace, reason, .. }
                    if *trace == trace_id && *reason == "slow")
            ),
            "promotion event missing"
        );
        assert!(
            events
                .iter()
                .filter(
                    |e| matches!(e, obs::Event::FlightRecord { trace, .. } if *trace == trace_id)
                )
                .count()
                >= 5,
            "promoted trace must ship its span chain"
        );
        assert!(sink.counter_total("obs.trace.recorded") >= 5);
        assert!(sink.counter_total("obs.trace.promoted") >= 1);

        // The journal holds the same chain under trace/<16hex>.
        let store = store::RunStore::open(&dir).unwrap();
        let value = store
            .get(&format!("trace/{}", hex16(trace_id)))
            .unwrap()
            .expect("promoted trace journaled");
        let mut journaled = Vec::new();
        for line in String::from_utf8(value).unwrap().lines() {
            let v = obs::json::parse(line).unwrap();
            journaled.push(obs::SpanRecord::from_flight_record_json(&v).unwrap());
        }
        let journal_summary = summarize(&journaled).expect("journaled chain reconstructs");
        assert_eq!(journal_summary.trace_id, trace_id);

        // The shutdown dump is parseable flight_record JSONL too.
        let dumped = std::fs::read_to_string(&dump).unwrap();
        assert!(
            dumped
                .lines()
                .map(
                    |l| obs::SpanRecord::from_flight_record_json(&obs::json::parse(l).unwrap())
                        .unwrap()
                )
                .any(|s| s.trace_id == trace_id),
            "ring dump contains the traced request"
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&dump).ok();
    }

    #[test]
    fn shutdown_verb_can_be_disabled() {
        let inspector = tiny_inspector();
        let handle = serve(
            inspector,
            ServeConfig {
                allow_shutdown_verb: false,
                workers: 1,
                ..ServeConfig::default()
            },
            Telemetry::disabled(),
        )
        .unwrap();
        let (mut stream, mut reader) = connect(&handle);
        match roundtrip(&mut stream, &mut reader, r#"{"verb":"shutdown"}"#) {
            Response::Error { code, .. } => assert_eq!(code, protocol::ERR_BAD_REQUEST),
            other => panic!("unexpected {other:?}"),
        }
        // Still alive.
        assert_eq!(
            roundtrip(&mut stream, &mut reader, r#"{"verb":"ping"}"#),
            Response::Pong
        );
        handle.shutdown();
    }
}
