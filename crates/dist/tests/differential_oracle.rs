//! The local-vs-distributed differential oracle: a distributed run must
//! be indistinguishable — byte-for-byte in the serialized checkpoint,
//! float-for-float in the training curve — from the in-process `Trainer`
//! it decomposes. One worker is the ISSUE's hard requirement; sync-merge
//! multi-shard runs must *also* match exactly, because a synchronous
//! merge is definitionally the same central update over the same batch.
//! Self-determinism at 2/4 workers is property-tested over random seeds.

mod common;

use common::{make_trainer, run_dist, EPOCHS};
use dist::{FrameKind, MergeMode};
use proptest::prelude::*;
use workload::{profiles, synthetic};

/// The four calibrated workload profiles from the paper's evaluation.
const PROFILES: [(&str, &workload::TraceProfile); 4] = [
    ("SDSC-SP2", &profiles::SDSC_SP2),
    ("CTC-SP2", &profiles::CTC_SP2),
    ("HPC2N", &profiles::HPC2N),
    ("Lublin-256", &profiles::LUBLIN_256),
];

/// Run the existing in-process trainer and serialize its final state.
fn run_local(trace: &workload::JobTrace, seed: u64) -> (String, Vec<(f64, f64)>) {
    let mut trainer = make_trainer(trace.clone(), seed);
    let history = trainer.train();
    let curve = history
        .records
        .iter()
        .map(|r| (r.base_metric, r.improvement_pct))
        .collect();
    (trainer.checkpoint_text(EPOCHS), curve)
}

#[test]
fn one_worker_distributed_equals_in_process_trainer_on_all_calibrated_traces() {
    for (name, profile) in PROFILES {
        let trace = synthetic::generate(profile, 72, 7);
        let (local_ckpt, local_curve) = run_local(&trace, 42);
        let (dist_ckpt, dist_curve, report) =
            run_dist(&trace, 42, 1, 1, MergeMode::Sync, FrameKind::Json);
        assert_eq!(
            dist_ckpt, local_ckpt,
            "{name}: 1-worker distributed checkpoint diverged from in-process trainer"
        );
        assert_eq!(dist_curve, local_curve, "{name}: training curves diverged");
        assert_eq!(
            report.episodes,
            (EPOCHS * common::BATCH) as u64,
            "{name}: episode ledger must account every planned episode exactly once"
        );
    }
}

#[test]
fn sync_merge_is_shard_count_invariant_and_equals_local() {
    // Synchronous merge reassembles the full batch before one central
    // update, so the shard count must be unobservable in the weights.
    let trace = synthetic::generate(&profiles::SDSC_SP2, 72, 11);
    let (local_ckpt, local_curve) = run_local(&trace, 17);
    for shards in [2usize, 4] {
        let (dist_ckpt, dist_curve, _) =
            run_dist(&trace, 17, shards, shards, MergeMode::Sync, FrameKind::Json);
        assert_eq!(
            dist_ckpt, local_ckpt,
            "{shards}-shard sync run diverged from in-process trainer"
        );
        assert_eq!(dist_curve, local_curve);
    }
}

#[test]
fn binary_frames_change_the_wire_not_the_bytes() {
    let trace = synthetic::generate(&profiles::HPC2N, 72, 13);
    let (json_ckpt, _, _) = run_dist(&trace, 23, 2, 2, MergeMode::Sync, FrameKind::Json);
    let (bin_ckpt, _, _) = run_dist(&trace, 23, 2, 2, MergeMode::Sync, FrameKind::Binary);
    assert_eq!(
        json_ckpt, bin_ckpt,
        "frame encoding is a transport choice; it must not leak into training"
    );
}

#[test]
fn decentralized_single_shard_equals_sync() {
    // With one shard the decentralized average has one term, so DD-PPO
    // mode must collapse to the synchronous (and hence local) result.
    let trace = synthetic::generate(&profiles::CTC_SP2, 72, 5);
    let (local_ckpt, _) = run_local(&trace, 31);
    let (dd_ckpt, _, _) = run_dist(&trace, 31, 1, 1, MergeMode::Decentralized, FrameKind::Json);
    assert_eq!(dd_ckpt, local_ckpt);
}

proptest! {
    // Each case is four full training runs; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Self-determinism: for a fixed `(seed, shard count)` a distributed
    /// run — sync or decentralized, 2 or 4 workers — reproduces its own
    /// final checkpoint byte-for-byte.
    #[test]
    fn multi_worker_runs_are_self_deterministic(
        seed in 0u64..1 << 48,
        workers in 2usize..=4,
        decentralized in any::<bool>(),
    ) {
        let shards = if workers > common::BATCH { common::BATCH } else { workers };
        let merge = if decentralized {
            MergeMode::Decentralized
        } else {
            MergeMode::Sync
        };
        let trace = synthetic::generate(&profiles::SDSC_SP2, 72, 3);
        let (a, curve_a, _) = run_dist(&trace, seed, workers, shards, merge, FrameKind::Json);
        let (b, curve_b, _) = run_dist(&trace, seed, workers, shards, merge, FrameKind::Json);
        prop_assert_eq!(a, b, "same (seed, shards) must reproduce identical bytes");
        prop_assert_eq!(curve_a, curve_b);
    }
}
