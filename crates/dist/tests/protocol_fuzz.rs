//! Trajectory wire-format fuzzing, mirroring `serve/tests/protocol_fuzz.rs`:
//! arbitrary byte junk, truncated frames, single-byte mutations, and
//! corrupted binary payloads through the pure codec — plus a live
//! coordinator fed pipelined junk connections, which must shed them as
//! typed connection deaths while a real worker trains to completion.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use common::{make_trainer, EPOCHS};
use dist::protocol::{
    decode_batch, decode_trajectory, encode_trajectory, parse_message, write_message, Message,
};
use dist::{spawn_local_workers, Coordinator, DistConfig, FrameKind, MergeMode, ProtoError};
use obs::Telemetry;
use proptest::prelude::*;
use rlcore::{Step, Trajectory};
use workload::{profiles, synthetic};

/// A syntactically valid shard frame with a non-trivial payload.
fn valid_shard_line() -> String {
    let mut out = String::new();
    write_message(
        &Message::Shard {
            epoch: 3,
            shard: 1,
            seed_base: 0xDEAD_BEEF_CAFE_F00D,
            merge: MergeMode::Decentralized,
            frame: FrameKind::Binary,
            assignments: vec![(0, 7), (1, 0), (2, 31)],
            checkpoint: "schedinspector-checkpoint v1\nline two \"quoted\"\n".into(),
        },
        &mut out,
    );
    out.truncate(out.len() - 1); // strip the trailing newline for slicing
    out
}

fn tiny_trajectory(steps: usize, dim: usize) -> Trajectory {
    Trajectory {
        steps: (0..steps)
            .map(|i| Step {
                state: (0..dim)
                    .map(|j| (i * dim + j) as f32 * 0.25 - 1.0)
                    .collect(),
                action: (i % 2) as u8,
                logp: -0.5 - i as f32,
            })
            .collect(),
        reward: -2.25,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte junk through the line parser: `Ok` or a typed
    /// `ProtoError`, never a panic.
    #[test]
    fn parse_message_never_panics_on_junk(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse_message(&line);
    }

    /// Every strict prefix of a valid frame is a clean `Malformed` error:
    /// truncated JSON is rejected, not misread as a shorter frame.
    #[test]
    fn truncated_frames_error_cleanly(cut in any::<u64>()) {
        let line = valid_shard_line();
        prop_assert!(parse_message(&line).is_ok());
        let at = (cut as usize) % line.len();
        // The frame is pure ASCII, so every byte index is a char boundary.
        prop_assert!(parse_message(&line[..at]).is_err());
    }

    /// Single-byte mutations (insert, delete, flip) never panic the
    /// parser; whatever still parses is a well-typed message.
    #[test]
    fn mutated_frames_never_panic(
        pos in any::<u64>(),
        byte in any::<u8>(),
        kind in 0u8..3,
    ) {
        let line = valid_shard_line();
        let mut bytes = line.into_bytes();
        let at = (pos as usize) % bytes.len();
        match kind {
            0 => bytes.insert(at, byte),
            1 => {
                bytes.remove(at);
            }
            _ => bytes[at] ^= byte | 1,
        }
        let mutated = String::from_utf8_lossy(&bytes);
        if let Ok(msg) = parse_message(&mutated) {
            // A surviving mutation must still round-trip exactly.
            let mut out = String::new();
            write_message(&msg, &mut out);
            prop_assert!(parse_message(out.trim_end()).is_ok());
        }
    }

    /// Binary trajectory payloads survive every truncation and byte flip
    /// as typed errors — the decoder is length-exact and never panics.
    #[test]
    fn corrupted_binary_payloads_error_cleanly(
        steps in 0usize..6,
        dim in 1usize..8,
        cut in any::<u64>(),
        flip_at in any::<u64>(),
        flip_bits in 1u8..=255,
    ) {
        let payload = encode_trajectory(&tiny_trajectory(steps, dim));
        prop_assert!(decode_trajectory(&payload).is_ok());

        let at = (cut as usize) % payload.len();
        prop_assert!(
            decode_trajectory(&payload[..at]).is_err(),
            "truncation to {at} of {} accepted", payload.len()
        );

        let mut longer = payload.clone();
        longer.push(0);
        prop_assert!(decode_trajectory(&longer).is_err(), "trailing junk accepted");

        // A bit flip may land in float payload bytes (decodes to different
        // floats — still structurally valid); it must never panic, and a
        // flip in the header/action region is rejected.
        let mut flipped = payload.clone();
        let fat = (flip_at as usize) % flipped.len();
        flipped[fat] ^= flip_bits;
        let _ = decode_trajectory(&flipped);
    }

    /// Same resilience for the journaled batch blob.
    #[test]
    fn corrupted_batch_blobs_never_panic(junk in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode_batch(&junk);
    }
}

/// A live coordinator fed pipelined junk on extra connections: every junk
/// connection dies a typed death, the real worker keeps training, and the
/// run completes with the same bytes as an unmolested run.
#[test]
fn live_coordinator_sheds_junk_connections_and_still_trains() {
    let trace = synthetic::generate(&profiles::SDSC_SP2, 72, 7);
    let seed = 42;
    let (clean_ckpt, _, _) = common::run_dist(&trace, seed, 1, 1, MergeMode::Sync, FrameKind::Json);

    let mut coordinator_trainer = make_trainer(trace.clone(), seed);
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let addr = coordinator.addr();

    // Junk clients race the real worker: raw garbage, a valid-verb frame
    // before hello, a truncated hello, and an abrupt disconnect.
    let junker = std::thread::spawn(move || {
        let payloads: [&[u8]; 4] = [
            b"!!!! not json at all\n\x00\xff\xfe garbage\n",
            b"{\"verb\":\"episode\",\"epoch\":0}\n",
            b"{\"verb\":\"hello\",\"proto\":1,\"input_dim\"",
            b"",
        ];
        for p in payloads {
            if let Ok(mut s) = TcpStream::connect(addr) {
                let _ = s.write_all(p);
                // Linger briefly so the coordinator reads the junk rather
                // than seeing an instant EOF.
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    });

    let workers = spawn_local_workers(addr, vec![make_trainer(trace, seed)]);
    let cfg = DistConfig {
        shards: 1,
        ..DistConfig::default()
    };
    let report = coordinator
        .run(&mut coordinator_trainer, &cfg, None, &Telemetry::disabled())
        .expect("junk connections must not sink the run");
    junker.join().unwrap();
    let _ = workers.join();

    assert_eq!(
        coordinator_trainer.checkpoint_text(EPOCHS),
        clean_ckpt,
        "junk traffic must not perturb training"
    );
    assert_eq!(report.episodes, (EPOCHS * common::BATCH) as u64);
}

/// An oversized line is rejected as `TooLong` — bounded memory, no hang.
#[test]
fn oversized_lines_are_too_long_not_oom() {
    use dist::protocol::{FrameReader, MAX_FRAME_BYTES};
    use serve::Transport;

    struct Endless;
    impl Transport for Endless {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            buf.fill(b'x'); // newline-free forever
            Ok(buf.len())
        }
        fn write_all(&mut self, _buf: &[u8]) -> std::io::Result<()> {
            Ok(())
        }
        fn configure(&mut self, _t: Option<Duration>) -> std::io::Result<()> {
            Ok(())
        }
    }

    let mut reader = FrameReader::new(1 << 16);
    let mut t = Endless;
    let err = loop {
        match reader.poll_line(&mut t) {
            Ok(None) => continue,
            Ok(Some(line)) => panic!("fabricated a line from newline-free input: {line:?}"),
            Err(e) => break e,
        }
    };
    match err {
        ProtoError::TooLong { limit } => assert_eq!(limit, 1 << 16),
        other => panic!("expected TooLong, got {other}"),
    }
    const {
        assert!(
            MAX_FRAME_BYTES >= 1 << 20,
            "production limit fits real frames"
        );
    }
}
