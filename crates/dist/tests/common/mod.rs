//! Shared harness for the distributed-training integration suites: build
//! identically-configured trainers, run a coordinator with in-process
//! workers, and hand back the final checkpoint bytes plus the run report.

use dist::{spawn_local_workers, Coordinator, DistConfig, DistReport, FrameKind, MergeMode};
use inspector::{InspectorConfig, Trainer};
use obs::Telemetry;
use policies::PolicyKind;
use workload::JobTrace;

/// Small-but-real training shape: enough epochs for optimizer state to
/// matter, an odd batch so shard splits are uneven.
pub const EPOCHS: usize = 3;
pub const BATCH: usize = 5;

pub fn config(seed: u64) -> InspectorConfig {
    InspectorConfig {
        batch_size: BATCH,
        seq_len: 16,
        epochs: EPOCHS,
        seed,
        workers: 1,
        ..Default::default()
    }
}

pub fn make_trainer(trace: JobTrace, seed: u64) -> Trainer {
    Trainer::builder(trace)
        .policy(PolicyKind::Sjf)
        .config(config(seed))
        .build()
        .expect("valid trainer config")
}

/// One full distributed run: a coordinator plus `workers` in-process
/// worker threads, all built from the same `(trace, seed)` world.
/// Returns the final checkpoint text, the training curve, and the report.
pub fn run_dist(
    trace: &JobTrace,
    seed: u64,
    workers: usize,
    shards: usize,
    merge: MergeMode,
    frame: FrameKind,
) -> (String, Vec<(f64, f64)>, DistReport) {
    let mut coordinator_trainer = make_trainer(trace.clone(), seed);
    let worker_trainers: Vec<Trainer> = (0..workers)
        .map(|_| make_trainer(trace.clone(), seed))
        .collect();
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind ephemeral");
    let handle = spawn_local_workers(coordinator.addr(), worker_trainers);
    let cfg = DistConfig {
        shards,
        merge,
        frame,
        ..DistConfig::default()
    };
    let report = coordinator
        .run(&mut coordinator_trainer, &cfg, None, &Telemetry::disabled())
        .expect("distributed run completes");
    // Workers that raced the final shutdown may report Disconnected;
    // the determinism assertions live in the checkpoint bytes, not here.
    let _ = handle.join();
    let curve = curve_of(&report);
    (coordinator_trainer.checkpoint_text(EPOCHS), curve, report)
}

/// The float-exact training curve of a report, for epoch-by-epoch
/// comparison against the in-process trainer.
pub fn curve_of(report: &DistReport) -> Vec<(f64, f64)> {
    report
        .history
        .records
        .iter()
        .map(|r| (r.base_metric, r.improvement_pct))
        .collect()
}
