//! Crash-safe distributed training: every epoch journals its trajectory
//! segment and checkpoint through the run store, and a coordinator killed
//! between epochs resumes from the journal to a byte-identical final
//! checkpoint — the distributed closure of the store's durable-training
//! contract.

mod common;

use common::{make_trainer, run_dist, BATCH, EPOCHS};
use dist::{
    protocol::decode_batch, spawn_local_workers, Coordinator, DistConfig, FrameKind, MergeMode,
    CHECKPOINT_KEY,
};
use inspector::{InspectorConfig, Trainer};
use obs::Telemetry;
use policies::PolicyKind;
use store::{trajectory, RunStore};
use workload::{profiles, synthetic, JobTrace};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dist-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A distributed run against a store, training epochs `[start, epochs)`.
fn run_journaled(
    trace: &JobTrace,
    trainer: &mut Trainer,
    store: &mut RunStore,
    start_epoch: usize,
) -> dist::DistReport {
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let handle = spawn_local_workers(
        coordinator.addr(),
        vec![make_trainer(trace.clone(), trainer.config().seed)],
    );
    let cfg = DistConfig {
        shards: 1,
        start_epoch,
        ..DistConfig::default()
    };
    let report = coordinator
        .run(trainer, &cfg, Some(store), &Telemetry::disabled())
        .expect("journaled run completes");
    let _ = handle.join();
    report
}

#[test]
fn every_epoch_journals_a_decodable_trajectory_segment_and_checkpoint() {
    let trace = synthetic::generate(&profiles::SDSC_SP2, 72, 7);
    let dir = temp_dir("journal");
    let mut store = RunStore::open(&dir).expect("open store");
    let mut trainer = make_trainer(trace.clone(), 42);
    run_journaled(&trace, &mut trainer, &mut store, 0);

    for epoch in 0..EPOCHS {
        let seg = store
            .get(&trajectory::epoch_key(epoch))
            .expect("store read")
            .unwrap_or_else(|| panic!("epoch {epoch} segment missing"));
        let (got_epoch, payload) = trajectory::decode_segment(&seg)
            .unwrap_or_else(|e| panic!("epoch {epoch} segment corrupt: {e}"));
        assert_eq!(got_epoch, epoch as u64);
        let summaries = decode_batch(&payload).expect("journaled batch decodes");
        assert_eq!(summaries.len(), BATCH, "epoch {epoch} journaled short");
        let mut indices: Vec<usize> = summaries.iter().map(|s| s.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..BATCH).collect::<Vec<_>>());
    }
    let latest = store
        .get(CHECKPOINT_KEY)
        .expect("store read")
        .expect("latest checkpoint journaled");
    assert_eq!(
        String::from_utf8(latest).expect("checkpoint is text"),
        trainer.checkpoint_text(EPOCHS),
        "journaled checkpoint must equal the trainer's final state"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn coordinator_crash_between_epochs_resumes_byte_identically() {
    let trace = synthetic::generate(&profiles::CTC_SP2, 72, 9);
    let seed = 17;

    // The oracle: one uninterrupted distributed run.
    let (full_ckpt, _, _) = run_dist(&trace, seed, 1, 1, MergeMode::Sync, FrameKind::Json);

    // The victim: a coordinator that "crashes" after epoch 0 — modeled by
    // a config whose horizon is one epoch, so the process exits exactly
    // where a SIGKILL between commits would leave the journal.
    let dir = temp_dir("crash");
    {
        let mut store = RunStore::open(&dir).expect("open store");
        let mut crashed = Trainer::builder(trace.clone())
            .policy(PolicyKind::Sjf)
            .config(InspectorConfig {
                epochs: 1,
                ..common::config(seed)
            })
            .build()
            .expect("valid trainer");
        run_journaled(&trace, &mut crashed, &mut store, 0);
    } // store dropped: nothing in memory survives, like the dead process

    // Recovery: a fresh process re-opens the journal, restores the
    // checkpoint (replaying the trainer RNG to the crash point), and
    // continues from the journaled epoch count.
    let mut store = RunStore::open(&dir).expect("re-open store after crash");
    let latest = store
        .get(CHECKPOINT_KEY)
        .expect("store read")
        .expect("checkpoint survived the crash");
    let mut resumed = make_trainer(trace.clone(), seed);
    let epochs_done = resumed
        .restore(&String::from_utf8(latest).expect("text"))
        .expect("journaled checkpoint restores");
    assert_eq!(epochs_done, 1, "exactly one epoch was durable");
    run_journaled(&trace, &mut resumed, &mut store, epochs_done);

    assert_eq!(
        resumed.checkpoint_text(EPOCHS),
        full_ckpt,
        "crash + resume must reproduce the uninterrupted run byte-for-byte"
    );
    // The journal is complete after recovery: all epochs present.
    for epoch in 0..EPOCHS {
        assert!(
            store
                .get(&trajectory::epoch_key(epoch))
                .expect("store read")
                .is_some(),
            "epoch {epoch} missing from recovered journal"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
