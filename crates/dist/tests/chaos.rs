//! Worker-failure chaos against the real coordinator: a targeted kill or
//! freeze of a worker connection mid-epoch must cost availability of that
//! worker only — the shard is reassigned, the ledger accounts exactly the
//! planned episode count, the final checkpoint matches a clean run
//! byte-for-byte, and a coordinator with no workers at all fails fast
//! with a typed stall instead of hanging.

mod common;

use std::time::{Duration, Instant};

use common::{make_trainer, run_dist, BATCH, EPOCHS};
use dist::{spawn_local_workers, Coordinator, DistConfig, DistError, FrameKind, MergeMode};
use inspector::Trainer;
use obs::Telemetry;
use testkit::{FaultConfig, FaultPlan, TargetKind, TargetedFault};
use workload::{profiles, synthetic};

/// Run a 2-worker sync training with the given targeted faults armed on
/// the coordinator's accept path.
fn run_with_faults(
    trace: &workload::JobTrace,
    seed: u64,
    targets: Vec<TargetedFault>,
    cfg: DistConfig,
) -> (String, dist::DistReport) {
    let mut coordinator_trainer = make_trainer(trace.clone(), seed);
    let workers: Vec<Trainer> = (0..2).map(|_| make_trainer(trace.clone(), seed)).collect();
    let plan = FaultPlan::with_targets(FaultConfig::none(seed), targets);
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let handle = spawn_local_workers(coordinator.addr(), workers);
    let report = coordinator
        .run_with(
            &mut coordinator_trainer,
            &cfg,
            None,
            &Telemetry::disabled(),
            plan,
        )
        .expect("chaos run must still complete");
    let _ = handle.join(); // the attacked worker exits with an error; fine
    (coordinator_trainer.checkpoint_text(EPOCHS), report)
}

fn chaos_cfg() -> DistConfig {
    DistConfig {
        shards: 2,
        merge: MergeMode::Sync,
        frame: FrameKind::Json,
        // Tight watchdog so a frozen worker is reassigned quickly.
        shard_timeout: Duration::from_millis(150),
        tick: Duration::from_millis(5),
        ..DistConfig::default()
    }
}

#[test]
fn killed_worker_mid_epoch_reassigns_its_shard_and_preserves_bytes() {
    let trace = synthetic::generate(&profiles::SDSC_SP2, 72, 7);
    let seed = 42;
    let (clean_ckpt, _, _) = run_dist(&trace, seed, 2, 2, MergeMode::Sync, FrameKind::Json);

    // Kill the first-accepted worker connection a few transport ops in —
    // mid-episode-stream of its first shard, from the coordinator's view
    // exactly what `kill -9` on the worker process looks like.
    let (chaos_ckpt, report) = run_with_faults(
        &trace,
        seed,
        vec![TargetedFault {
            conn: 0,
            op: 3,
            kind: TargetKind::Kill,
        }],
        chaos_cfg(),
    );

    assert_eq!(
        chaos_ckpt, clean_ckpt,
        "a worker kill must not change the trained bytes"
    );
    assert_eq!(
        report.episodes,
        (EPOCHS * BATCH) as u64,
        "ledger must account exactly the planned episodes despite the kill"
    );
    assert_eq!(
        report.worker_deaths, 1,
        "the kill must be observed as a death"
    );
    assert!(
        report.reassignments >= 1,
        "the dead worker's shard must be reassigned, got {report:?}"
    );
}

#[test]
fn frozen_worker_is_routed_around_by_the_watchdog() {
    let trace = synthetic::generate(&profiles::CTC_SP2, 72, 9);
    let seed = 17;
    let (clean_ckpt, _, _) = run_dist(&trace, seed, 2, 2, MergeMode::Sync, FrameKind::Json);

    // Freeze the first-accepted connection for ~4x the shard watchdog:
    // the coordinator must reassign rather than wait out the stall.
    let start = Instant::now();
    let (chaos_ckpt, report) = run_with_faults(
        &trace,
        seed,
        vec![TargetedFault {
            conn: 0,
            op: 3,
            kind: TargetKind::Freeze { millis: 600 },
        }],
        chaos_cfg(),
    );

    assert_eq!(
        chaos_ckpt, clean_ckpt,
        "a stalled worker must not change the trained bytes"
    );
    assert_eq!(report.episodes, (EPOCHS * BATCH) as u64);
    assert!(
        report.reassignments >= 1,
        "watchdog must reassign the stalled shard, got {report:?}"
    );
    // Bounded impact: one 600ms freeze must not serialize the whole run
    // behind it epoch after epoch.
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "stall impact unbounded: {:?}",
        start.elapsed()
    );
}

#[test]
fn duplicate_episodes_from_speculation_are_deduped_not_double_counted() {
    // Freeze *delays* conn 0's episode stream rather than killing it, so
    // after reassignment both workers eventually deliver the same shard —
    // the ledger must keep one copy per episode index.
    let trace = synthetic::generate(&profiles::HPC2N, 72, 3);
    let (_, report) = run_with_faults(
        &trace,
        23,
        vec![TargetedFault {
            conn: 0,
            op: 4,
            kind: TargetKind::Freeze { millis: 400 },
        }],
        chaos_cfg(),
    );
    assert_eq!(
        report.episodes,
        (EPOCHS * BATCH) as u64,
        "accounted episodes must be exactly the plan — duplicates are \
         dropped, never double-counted: {report:?}"
    );
}

#[test]
fn coordinator_with_no_workers_stalls_out_with_a_typed_error() {
    let trace = synthetic::generate(&profiles::SDSC_SP2, 72, 7);
    let mut trainer = make_trainer(trace, 42);
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let cfg = DistConfig {
        shards: 2,
        epoch_timeout: Duration::from_millis(200),
        tick: Duration::from_millis(5),
        ..DistConfig::default()
    };
    let err = coordinator
        .run(&mut trainer, &cfg, None, &Telemetry::disabled())
        .expect_err("no workers can make no progress");
    match err {
        DistError::Stalled {
            epoch,
            collected,
            expected,
        } => {
            assert_eq!(epoch, 0);
            assert_eq!(collected, 0);
            assert_eq!(expected, BATCH);
        }
        other => panic!("expected Stalled, got {other}"),
    }
}

#[test]
fn decentralized_merge_survives_a_worker_kill_too() {
    let trace = synthetic::generate(&profiles::LUBLIN_256, 72, 5);
    let seed = 29;
    let (clean_ckpt, _, _) = run_dist(
        &trace,
        seed,
        2,
        2,
        MergeMode::Decentralized,
        FrameKind::Json,
    );
    let cfg = DistConfig {
        merge: MergeMode::Decentralized,
        ..chaos_cfg()
    };
    let (chaos_ckpt, report) = run_with_faults(
        &trace,
        seed,
        vec![TargetedFault {
            conn: 1,
            op: 3,
            kind: TargetKind::Kill,
        }],
        cfg,
    );
    assert_eq!(
        chaos_ckpt, clean_ckpt,
        "DD-PPO merge must be reassignment-invariant: replicas are pure \
         functions of (checkpoint, shard plan)"
    );
    assert_eq!(report.episodes, (EPOCHS * BATCH) as u64);
    assert_eq!(report.worker_deaths, 1);
}
