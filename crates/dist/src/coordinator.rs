//! The training coordinator: shards each epoch's plan across connected
//! rollout workers, reconciles results through an episode ledger, and
//! folds the batch back into the model — synchronously (one central PPO
//! update) or decentralized (DD-PPO parameter averaging).
//!
//! # Determinism contract
//!
//! For a fixed `(seed, shard count)` the final checkpoint is
//! byte-identical across runs, worker schedules, worker deaths, and
//! restarts — because:
//!
//! 1. the epoch plan is drawn by the coordinator's trainer RNG exactly as
//!    the in-process path draws it;
//! 2. every episode is a pure function of `(start, episode seed, policy)`
//!    — re-executing it anywhere yields the same bytes, so the ledger
//!    keeps whichever copy lands first and drops duplicates;
//! 3. the merge folds results in **logical shard order** (sync: episode
//!    index order into one central update; decentralized: shard-ordered
//!    `f64` parameter averaging), never in arrival order.
//!
//! Physical workers are interchangeable executors of logical shards: the
//! shard count is the determinism key, the connection count is not.
//!
//! # Failure semantics
//!
//! A worker that dies (connection reset, process SIGKILL) or stalls past
//! the shard watchdog has its shard reassigned to an idle worker;
//! late-arriving duplicates are dropped by the ledger, so the accounted
//! episode total is exact. An epoch with no progress for
//! [`DistConfig::epoch_timeout`] aborts with [`DistError::Stalled`] —
//! the coordinator never hangs.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use inspector::{Checkpoint, EpisodeSummary, RolloutReport, Trainer, TrainingHistory};
use obs::Telemetry;
use rlcore::{average_ppo, average_stats, MergeShard, PpoConfig, PpoTrainer, UpdateStats};
use serve::{AcceptPolicy, DirectAccept, Transport};
use store::RunStore;

use crate::protocol::{
    self, FrameKind, FrameReader, MergeMode, Message, Replica, MAX_FRAME_BYTES, PROTO_VERSION,
};
use crate::DistError;

/// Store key the coordinator (and the CLI's local path) writes the latest
/// checkpoint under after every epoch.
pub const CHECKPOINT_KEY: &str = "checkpoint/latest";

/// Coordinator-side knobs.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Logical shard count — the determinism key (CLI `--dist N`). Any
    /// number of physical workers ≥ 1 can serve these shards.
    pub shards: usize,
    /// Merge discipline.
    pub merge: MergeMode,
    /// Episode frame encoding workers reply with.
    pub frame: FrameKind,
    /// Watchdog: a shard assigned longer than this is speculatively
    /// reassigned to an idle worker, bounding the impact of a stall.
    pub shard_timeout: Duration,
    /// Hard bound: an epoch making no progress for this long aborts with
    /// [`DistError::Stalled`] instead of hanging.
    pub epoch_timeout: Duration,
    /// Scheduler poll tick.
    pub tick: Duration,
    /// First epoch to run (nonzero after a `--resume`).
    pub start_epoch: usize,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            shards: 1,
            merge: MergeMode::Sync,
            frame: FrameKind::Json,
            shard_timeout: Duration::from_secs(30),
            epoch_timeout: Duration::from_secs(600),
            tick: Duration::from_millis(20),
            start_epoch: 0,
        }
    }
}

/// What a coordinator run did, beyond the training curve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistReport {
    /// The training curve (identical to in-process training in sync mode).
    pub history: TrainingHistory,
    /// Episodes accounted by the ledger — exactly `batch_size` per epoch.
    pub episodes: u64,
    /// Duplicate episode results dropped by the ledger (speculative
    /// re-executions that both completed).
    pub duplicates: u64,
    /// Frames ignored because they referenced an already-finished epoch.
    pub stale: u64,
    /// Shard reassignments (worker death or watchdog).
    pub reassignments: u64,
    /// Workers that died after joining.
    pub worker_deaths: u64,
    /// Distinct workers that ever joined.
    pub workers_joined: u64,
}

enum Event {
    Joined {
        conn: u64,
        input_dim: usize,
        seed: u64,
        tx: Sender<OutMsg>,
    },
    Episode {
        epoch: usize,
        summary: EpisodeSummary,
    },
    ShardDone {
        conn: u64,
        epoch: usize,
        shard: usize,
        replica: Option<Replica>,
    },
    Dead {
        conn: u64,
    },
}

enum OutMsg {
    Frame(String),
    Close,
}

/// A bound, not-yet-running coordinator. Binding is split from running so
/// callers can learn the address (`addr`) before starting workers.
pub struct Coordinator {
    listener: TcpListener,
    addr: SocketAddr,
}

impl Coordinator {
    /// Bind the coordinator listener (e.g. `"127.0.0.1:0"` for an
    /// ephemeral port).
    pub fn bind(addr: &str) -> Result<Coordinator, DistError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| DistError::Io(format!("bind {addr}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| DistError::Io(e.to_string()))?;
        Ok(Coordinator { listener, addr })
    }

    /// The bound address workers should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Run distributed training with the production accept path.
    pub fn run(
        self,
        trainer: &mut Trainer,
        cfg: &DistConfig,
        store: Option<&mut RunStore>,
        telemetry: &Telemetry,
    ) -> Result<DistReport, DistError> {
        self.run_with(trainer, cfg, store, telemetry, DirectAccept)
    }

    /// Run distributed training, admitting worker connections through
    /// `accept` — the chaos seam: a fault-injecting policy (e.g.
    /// `testkit::FaultPlan`) exercises worker kills and stalls against
    /// the real coordinator.
    pub fn run_with<A: AcceptPolicy>(
        self,
        trainer: &mut Trainer,
        cfg: &DistConfig,
        mut store: Option<&mut RunStore>,
        telemetry: &Telemetry,
        accept: A,
    ) -> Result<DistReport, DistError> {
        if cfg.shards == 0 {
            return Err(DistError::Config("shard count must be at least 1".into()));
        }
        if cfg.shards > trainer.config().batch_size {
            // An empty shard would hand a worker a zero-episode batch,
            // which the decentralized local update cannot train on.
            return Err(DistError::Config(format!(
                "shard count {} exceeds batch size {}",
                cfg.shards,
                trainer.config().batch_size
            )));
        }
        let (events_tx, events) = mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = spawn_acceptor(self.listener, accept, stop.clone(), events_tx, cfg.tick);

        let mut sched = Scheduler {
            cfg,
            events,
            workers: HashMap::new(),
            report: DistReport::default(),
            input_dim: trainer.features().dim(),
            seed: trainer.config().seed,
        };
        let epochs = trainer.config().epochs;
        let result = (|| {
            for epoch in cfg.start_epoch..epochs {
                sched.run_epoch(trainer, epoch, telemetry, &mut store)?;
            }
            Ok(())
        })();

        // Orderly shutdown regardless of outcome: tell workers to exit,
        // release their conn threads, and unblock + join the acceptor.
        let mut line = String::new();
        protocol::write_message(&Message::Shutdown, &mut line);
        for w in sched.workers.values() {
            let _ = w.tx.send(OutMsg::Frame(line.clone()));
            let _ = w.tx.send(OutMsg::Close);
        }
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // wake the blocking accept
        let _ = acceptor.join();

        result.map(|()| sched.report)
    }
}

struct WorkerState {
    tx: Sender<OutMsg>,
    busy: Option<usize>,
}

struct ShardState {
    /// Episode indices `lo..hi` of the plan this shard covers.
    range: std::ops::Range<usize>,
    /// Connections currently executing this shard (speculation allowed).
    owners: Vec<u64>,
    /// How many times this shard has been handed out this epoch; any
    /// assignment after the first is a reassignment (worker death or
    /// watchdog expiry).
    assigned: u32,
    /// Watchdog deadline of the most recent assignment.
    deadline: Option<Instant>,
    /// Set once the shard's results are fully accounted.
    done: bool,
}

struct Scheduler<'a> {
    cfg: &'a DistConfig,
    events: Receiver<Event>,
    workers: HashMap<u64, WorkerState>,
    report: DistReport,
    input_dim: usize,
    seed: u64,
}

impl Scheduler<'_> {
    fn run_epoch(
        &mut self,
        trainer: &mut Trainer,
        epoch: usize,
        telemetry: &Telemetry,
        store: &mut Option<&mut RunStore>,
    ) -> Result<(), DistError> {
        let epoch_span = obs::span!(telemetry, "epoch");
        let plan = trainer.epoch_plan(epoch);
        let n = plan.starts.len();
        let k = self.cfg.shards;
        let checkpoint = trainer.checkpoint_text(epoch);
        let mut shards: Vec<ShardState> = split_ranges(n, k)
            .into_iter()
            .map(|range| ShardState {
                range,
                owners: Vec::new(),
                assigned: 0,
                deadline: None,
                done: false,
            })
            .collect();
        let mut ledger: Vec<Option<EpisodeSummary>> = (0..n).map(|_| None).collect();
        let mut filled = 0usize;
        let mut replicas: Vec<Option<(PpoTrainer, UpdateStats)>> = (0..k).map(|_| None).collect();

        // Workers carried over from the previous epoch are idle now.
        for w in self.workers.values_mut() {
            w.busy = None;
        }

        let cache_before = (
            trainer.baseline_cache().hits(),
            trainer.baseline_cache().base_runs(),
        );
        let rollout_span = obs::span!(telemetry, "rollout");
        let rollout_start = Instant::now();
        let mut last_progress = Instant::now();

        loop {
            // Mark shards whose results are fully in.
            let mut all_done = true;
            for (s, shard) in shards.iter_mut().enumerate() {
                if !shard.done {
                    let episodes_in = shard.range.clone().all(|i| ledger[i].is_some());
                    let replica_in = self.cfg.merge == MergeMode::Sync || replicas[s].is_some();
                    shard.done = episodes_in && replica_in;
                }
                all_done &= shard.done;
            }
            if all_done {
                break;
            }

            // Assignment pass: every shard that is unowned — or past its
            // watchdog deadline — goes to an idle worker.
            let now = Instant::now();
            for (s, shard) in shards.iter_mut().enumerate() {
                if shard.done {
                    continue;
                }
                let expired = shard.deadline.is_some_and(|d| now >= d);
                let unowned = shard.owners.iter().all(|c| !self.workers.contains_key(c));
                if !(unowned || expired) {
                    continue;
                }
                let idle = self
                    .workers
                    .iter()
                    .filter(|(c, w)| w.busy.is_none() && !shard.owners.contains(c))
                    .map(|(c, _)| *c)
                    .min(); // deterministic pick; correctness never depends on it
                let Some(conn) = idle else { continue };
                let assignments: Vec<(usize, usize)> =
                    shard.range.clone().map(|i| (i, plan.starts[i])).collect();
                let mut line = String::new();
                protocol::write_message(
                    &Message::Shard {
                        epoch,
                        shard: s,
                        seed_base: plan.episode_seed_base,
                        merge: self.cfg.merge,
                        frame: self.cfg.frame,
                        assignments,
                        checkpoint: checkpoint.clone(),
                    },
                    &mut line,
                );
                let w = self.workers.get_mut(&conn).expect("picked from workers");
                if w.tx.send(OutMsg::Frame(line)).is_err() {
                    // Conn thread already gone; the Dead event will follow.
                    continue;
                }
                w.busy = Some(s);
                if shard.assigned > 0 {
                    self.report.reassignments += 1;
                }
                shard.assigned += 1;
                shard.owners.push(conn);
                shard.deadline = Some(now + self.cfg.shard_timeout);
            }

            // Event pump.
            match self.events.recv_timeout(self.cfg.tick) {
                Ok(Event::Joined {
                    conn,
                    input_dim,
                    seed,
                    tx,
                }) => {
                    if input_dim != self.input_dim || seed != self.seed {
                        let mut line = String::new();
                        protocol::write_message(
                            &Message::Error {
                                message: format!(
                                    "worker world mismatch: input_dim {input_dim} vs {}, \
                                     seed {seed} vs {}",
                                    self.input_dim, self.seed
                                ),
                            },
                            &mut line,
                        );
                        let _ = tx.send(OutMsg::Frame(line));
                        let _ = tx.send(OutMsg::Close);
                        continue;
                    }
                    self.report.workers_joined += 1;
                    self.workers.insert(conn, WorkerState { tx, busy: None });
                    last_progress = Instant::now();
                }
                Ok(Event::Episode { epoch: e, summary }) => {
                    if e != epoch {
                        self.report.stale += 1;
                        continue;
                    }
                    let index = summary.index;
                    if index >= n {
                        continue; // hostile index; the frame was well-formed JSON
                    }
                    if ledger[index].is_none() {
                        ledger[index] = Some(summary);
                        filled += 1;
                        self.report.episodes += 1;
                        last_progress = Instant::now();
                    } else {
                        self.report.duplicates += 1;
                    }
                }
                Ok(Event::ShardDone {
                    conn,
                    epoch: e,
                    shard,
                    replica,
                }) => {
                    if let Some(w) = self.workers.get_mut(&conn) {
                        if w.busy == Some(shard) || e != epoch {
                            w.busy = None;
                        }
                    }
                    if e != epoch {
                        self.report.stale += 1;
                        continue;
                    }
                    if shard < k {
                        shards[shard].owners.retain(|c| *c != conn);
                        if let (Some(r), None) = (replica, &replicas[shard]) {
                            replicas[shard] = Some(parse_replica(&r, self.seed)?);
                        }
                        last_progress = Instant::now();
                    }
                }
                Ok(Event::Dead { conn }) => {
                    if self.workers.remove(&conn).is_some() {
                        self.report.worker_deaths += 1;
                    }
                    for shard in &mut shards {
                        shard.owners.retain(|c| *c != conn);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(DistError::Io("acceptor channel closed".into()));
                }
            }

            if last_progress.elapsed() > self.cfg.epoch_timeout {
                return Err(DistError::Stalled {
                    epoch,
                    collected: filled,
                    expected: n,
                });
            }
        }

        drop(rollout_span);
        let rollout_secs = rollout_start.elapsed().as_secs_f64();
        debug_assert_eq!(filled, n);
        let summaries: Vec<EpisodeSummary> = ledger
            .into_iter()
            .map(|s| s.expect("ledger complete"))
            .collect();
        let traj_blob = store.as_ref().map(|_| protocol::encode_batch(&summaries));
        let report = RolloutReport {
            rollout_secs,
            baseline_secs: 0.0,
            cache_before,
        };
        let record = match self.cfg.merge {
            MergeMode::Sync => trainer.complete_epoch(epoch, summaries, report, epoch_span),
            MergeMode::Decentralized => {
                let parts: Vec<(PpoTrainer, UpdateStats, f64)> = replicas
                    .into_iter()
                    .zip(&shards)
                    .map(|(r, shard)| {
                        let (ppo, stats) = r.expect("all replicas present");
                        (ppo, stats, shard.range.len() as f64)
                    })
                    .collect();
                let merge_shards: Vec<MergeShard> = parts
                    .iter()
                    .map(|(ppo, _, w)| MergeShard { ppo, weight: *w })
                    .collect();
                let merged = average_ppo(&merge_shards).map_err(DistError::Train)?;
                let stats =
                    average_stats(&parts.iter().map(|(_, s, w)| (*s, *w)).collect::<Vec<_>>());
                trainer
                    .complete_epoch_premerged(epoch, summaries, merged, stats, report, epoch_span)
                    .map_err(|e| DistError::Train(e.to_string()))?
            }
        };
        self.report.history.records.push(record);

        if let Some(st) = store.as_deref_mut() {
            let blob = traj_blob.expect("encoded before completion");
            st.put(
                store::trajectory::epoch_key(epoch),
                store::trajectory::encode_segment(epoch as u64, &blob),
            );
            st.put(CHECKPOINT_KEY, trainer.checkpoint_text(epoch + 1));
            st.commit().map_err(|e| DistError::Store(e.to_string()))?;
        }
        Ok(())
    }
}

/// Parse and validate a decentralized replica shipped in `shard_done`.
fn parse_replica(r: &Replica, seed: u64) -> Result<(PpoTrainer, UpdateStats), DistError> {
    let ck = Checkpoint::from_text(&r.checkpoint).map_err(DistError::Train)?;
    if ck.seed != seed {
        return Err(DistError::Train(format!(
            "replica trained with seed {}, coordinator has {seed}",
            ck.seed
        )));
    }
    let ppo = PpoTrainer::from_parts(
        ck.policy,
        ck.critic,
        PpoConfig::default(),
        ck.pi_opt,
        ck.vf_opt,
    )
    .map_err(DistError::Train)?;
    Ok((ppo, r.stats))
}

/// Split `0..n` into `k` contiguous near-equal ranges (first `n % k`
/// ranges get the extra episode). Empty ranges are legal when `k > n`.
fn split_ranges(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut lo = 0;
    for s in 0..k {
        let len = base + usize::from(s < rem);
        out.push(lo..lo + len);
        lo += len;
    }
    out
}

fn spawn_acceptor<A: AcceptPolicy>(
    listener: TcpListener,
    mut accept: A,
    stop: Arc<AtomicBool>,
    events: Sender<Event>,
    tick: Duration,
) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let mut next_conn = 0u64;
        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let Some(conn_stream) = accept.admit(stream) else {
                continue;
            };
            let conn = next_conn;
            next_conn += 1;
            let (out_tx, out_rx) = mpsc::channel();
            let events = events.clone();
            thread::spawn(move || conn_loop(conn_stream, conn, tick, events, out_rx, out_tx));
        }
    })
}

/// Per-connection thread: drains outgoing frames, reads and parses
/// incoming ones, forwards semantic events to the scheduler. Any
/// protocol violation or transport failure ends the connection with a
/// `Dead` event — a misbehaving worker can never panic or wedge the
/// coordinator.
fn conn_loop<T: Transport>(
    mut t: T,
    conn: u64,
    tick: Duration,
    events: Sender<Event>,
    out_rx: Receiver<OutMsg>,
    out_tx: Sender<OutMsg>,
) {
    // The scheduler only needs to know *that* the conn died — it already
    // reassigns the shard either way — so the reason stays local.
    let dead = |events: &Sender<Event>, _reason: String| {
        let _ = events.send(Event::Dead { conn });
    };
    if let Err(e) = t.configure(Some(tick)) {
        dead(&events, e.to_string());
        return;
    }
    let mut reader = FrameReader::new(MAX_FRAME_BYTES);
    let mut hello = false;
    loop {
        loop {
            match out_rx.try_recv() {
                Ok(OutMsg::Frame(frame)) => {
                    if let Err(e) = t.write_all(frame.as_bytes()) {
                        dead(&events, e.to_string());
                        return;
                    }
                }
                Ok(OutMsg::Close) => return,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        let line = match reader.poll_line(&mut t) {
            Ok(None) => continue,
            Ok(Some(line)) => line,
            Err(e) => {
                dead(&events, e.to_string());
                return;
            }
        };
        let msg = match protocol::parse_message(&line) {
            Ok(msg) => msg,
            Err(e) => {
                dead(&events, e.to_string());
                return;
            }
        };
        let event = match (hello, msg) {
            (
                false,
                Message::Hello {
                    proto,
                    input_dim,
                    seed,
                },
            ) => {
                if proto != PROTO_VERSION {
                    dead(
                        &events,
                        format!("protocol version {proto} != {PROTO_VERSION}"),
                    );
                    return;
                }
                hello = true;
                Event::Joined {
                    conn,
                    input_dim,
                    seed,
                    tx: out_tx.clone(),
                }
            }
            (true, Message::Episode { epoch, summary }) => Event::Episode { epoch, summary },
            (
                true,
                Message::EpisodeBin {
                    epoch,
                    index,
                    base_metric,
                    inspected_metric,
                    inspections,
                    rejections,
                    bytes,
                },
            ) => {
                let payload = loop {
                    match reader.poll_bytes(&mut t, bytes) {
                        Ok(None) => continue,
                        Ok(Some(p)) => break p,
                        Err(e) => {
                            dead(&events, e.to_string());
                            return;
                        }
                    }
                };
                match protocol::decode_trajectory(&payload) {
                    Ok(trajectory) => Event::Episode {
                        epoch,
                        summary: EpisodeSummary {
                            index,
                            trajectory,
                            base_metric,
                            inspected_metric,
                            inspections,
                            rejections,
                        },
                    },
                    Err(e) => {
                        dead(&events, e.to_string());
                        return;
                    }
                }
            }
            (
                true,
                Message::ShardDone {
                    epoch,
                    shard,
                    episodes: _,
                    replica,
                },
            ) => Event::ShardDone {
                conn,
                epoch,
                shard,
                replica,
            },
            (_, Message::Error { message }) => {
                dead(&events, format!("worker error: {message}"));
                return;
            }
            (_, other) => {
                dead(
                    &events,
                    format!("unexpected frame before/after hello: {other:?}"),
                );
                return;
            }
        };
        if events.send(event).is_err() {
            return; // scheduler gone; shutting down
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything_contiguously() {
        for n in [0usize, 1, 5, 6, 7, 100] {
            for k in [1usize, 2, 3, 4, 8] {
                let ranges = split_ranges(n, k);
                assert_eq!(ranges.len(), k);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
                let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced split {lens:?}");
            }
        }
    }
}
