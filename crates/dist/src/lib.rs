//! Distributed PPO training for the SchedInspector reproduction.
//!
//! A [`coordinator::Coordinator`] shards each epoch's episode plan across
//! N rollout workers — separate `schedinspector dist-worker` processes or
//! in-process threads ([`spawn_local_workers`]), both behind the same
//! [`serve::Transport`] seam — and merges results either synchronously
//! (one central PPO update, byte-identical to the in-process `Trainer`)
//! or decentralized (DD-PPO-style parameter averaging, deterministic per
//! `(seed, shard count)`).
//!
//! The wire protocol ([`protocol`]) is line-delimited JSON with bit-exact
//! float framing, plus an optional compact binary trajectory frame.
//! Trajectory segments and checkpoints journal through `store` so a
//! killed coordinator resumes byte-identically.

pub mod coordinator;
pub mod protocol;
pub mod worker;

pub use coordinator::{Coordinator, DistConfig, DistReport, CHECKPOINT_KEY};
pub use protocol::{FrameKind, MergeMode, ProtoError};
pub use worker::{
    run_worker, run_worker_on, spawn_local_workers, LocalWorkers, WorkerConfig, WorkerReport,
};

use std::fmt;

/// Everything that can go wrong in a distributed run.
#[derive(Debug)]
pub enum DistError {
    /// Transport-level failure (bind, connect, read, write).
    Io(String),
    /// Wire-protocol violation from the peer.
    Protocol(ProtoError),
    /// Training-layer failure (checkpoint parse, shape mismatch, merge).
    Train(String),
    /// Run-store journaling failure.
    Store(String),
    /// Invalid configuration.
    Config(String),
    /// The coordinator closed the connection without a `shutdown` frame.
    Disconnected,
    /// The peer reported an error frame.
    Remote(String),
    /// An epoch made no progress for the configured timeout.
    Stalled {
        /// Epoch that stalled.
        epoch: usize,
        /// Episodes accounted when the watchdog fired.
        collected: usize,
        /// Episodes the epoch needed.
        expected: usize,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "io error: {e}"),
            DistError::Protocol(e) => write!(f, "protocol error: {e}"),
            DistError::Train(e) => write!(f, "training error: {e}"),
            DistError::Store(e) => write!(f, "store error: {e}"),
            DistError::Config(e) => write!(f, "config error: {e}"),
            DistError::Disconnected => write!(f, "coordinator closed the connection"),
            DistError::Remote(e) => write!(f, "remote error: {e}"),
            DistError::Stalled {
                epoch,
                collected,
                expected,
            } => write!(
                f,
                "epoch {epoch} stalled with {collected}/{expected} episodes accounted"
            ),
        }
    }
}

impl std::error::Error for DistError {}

impl From<ProtoError> for DistError {
    fn from(e: ProtoError) -> Self {
        DistError::Protocol(e)
    }
}
