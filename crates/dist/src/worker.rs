//! The rollout worker: connects to a coordinator, installs each epoch's
//! checkpoint, rolls out its assigned episodes with the existing
//! allocation-free rollout path, and streams the results back.
//!
//! A worker is **stateless across shards** by construction: every shard
//! frame carries the checkpoint to roll out under, so a worker that joins
//! mid-training (or replaces a killed one) produces byte-identical
//! episodes. Workers run as separate processes (`schedinspector
//! dist-worker`) or as in-process threads ([`spawn_local_workers`]) —
//! both speak the same [`Transport`]-level protocol.

use std::net::TcpStream;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use inspector::{Checkpoint, Trainer};
use rlcore::Batch;
use serve::Transport;

use crate::protocol::{
    self, FrameKind, FrameReader, MergeMode, Message, ProtoError, Replica, MAX_FRAME_BYTES,
    PROTO_VERSION,
};
use crate::DistError;

/// Worker-side knobs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address to connect to.
    pub connect: String,
    /// Read-timeout tick (poll period while idle).
    pub tick: Duration,
    /// How long to retry the initial connect (the coordinator may still
    /// be binding when a worker process starts).
    pub connect_timeout: Duration,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            connect: "127.0.0.1:7700".into(),
            tick: Duration::from_millis(50),
            connect_timeout: Duration::from_secs(10),
        }
    }
}

/// What a worker did over its session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Shards rolled out (including speculative re-executions).
    pub shards: u64,
    /// Episodes streamed back.
    pub episodes: u64,
}

/// Connect to `cfg.connect` (with retry while the coordinator binds) and
/// serve shards until the coordinator sends `shutdown`.
pub fn run_worker(trainer: &mut Trainer, cfg: &WorkerConfig) -> Result<WorkerReport, DistError> {
    let deadline = Instant::now() + cfg.connect_timeout;
    let stream = loop {
        match TcpStream::connect(&cfg.connect) {
            Ok(s) => break s,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(DistError::Io(format!("connect {}: {e}", cfg.connect))),
        }
    };
    run_worker_on(trainer, stream, cfg.tick)
}

/// Serve shards over an established transport until `shutdown`. The
/// in-process test path enters here directly.
pub fn run_worker_on<T: Transport>(
    trainer: &mut Trainer,
    mut conn: T,
    tick: Duration,
) -> Result<WorkerReport, DistError> {
    conn.configure(Some(tick))
        .map_err(|e| DistError::Io(e.to_string()))?;
    let mut out = String::new();
    protocol::write_message(
        &Message::Hello {
            proto: PROTO_VERSION,
            input_dim: trainer.features().dim(),
            seed: trainer.config().seed,
        },
        &mut out,
    );
    conn.write_all(out.as_bytes())
        .map_err(|e| DistError::Io(e.to_string()))?;

    let mut reader = FrameReader::new(MAX_FRAME_BYTES);
    let mut report = WorkerReport::default();
    loop {
        let line = match reader.poll_line(&mut conn) {
            Ok(None) => continue,
            Ok(Some(line)) => line,
            Err(ProtoError::Closed) => return Err(DistError::Disconnected),
            Err(e) => return Err(DistError::Protocol(e)),
        };
        match protocol::parse_message(&line).map_err(DistError::Protocol)? {
            Message::Shard {
                epoch,
                shard,
                seed_base,
                merge,
                frame,
                assignments,
                checkpoint,
            } => {
                report.episodes += run_shard(
                    trainer,
                    &mut conn,
                    ShardJob {
                        epoch,
                        shard,
                        seed_base,
                        merge,
                        frame,
                        assignments: &assignments,
                        checkpoint: &checkpoint,
                    },
                )?;
                report.shards += 1;
            }
            Message::Shutdown => return Ok(report),
            Message::Error { message } => return Err(DistError::Remote(message)),
            other => {
                return Err(DistError::Protocol(ProtoError::Malformed(format!(
                    "unexpected frame from coordinator: {:?}",
                    frame_name(&other)
                ))))
            }
        }
    }
}

fn frame_name(msg: &Message) -> &'static str {
    match msg {
        Message::Hello { .. } => "hello",
        Message::Shard { .. } => "shard",
        Message::Episode { .. } => "episode",
        Message::EpisodeBin { .. } => "episode_bin",
        Message::ShardDone { .. } => "shard_done",
        Message::Shutdown => "shutdown",
        Message::Error { .. } => "error",
    }
}

struct ShardJob<'a> {
    epoch: usize,
    shard: usize,
    seed_base: u64,
    merge: MergeMode,
    frame: FrameKind,
    assignments: &'a [(usize, usize)],
    checkpoint: &'a str,
}

fn run_shard<T: Transport>(
    trainer: &mut Trainer,
    conn: &mut T,
    job: ShardJob<'_>,
) -> Result<u64, DistError> {
    let ck = Checkpoint::from_text(job.checkpoint).map_err(DistError::Train)?;
    trainer
        .install_checkpoint(ck)
        .map_err(|e| DistError::Train(e.to_string()))?;
    let policy = trainer.ppo().policy.clone();
    let (summaries, _baseline_nanos) =
        trainer.rollout_assigned(job.seed_base, job.assignments, &policy);

    let mut out = String::new();
    for s in &summaries {
        out.clear();
        match job.frame {
            FrameKind::Json => {
                protocol::write_message(
                    &Message::Episode {
                        epoch: job.epoch,
                        summary: s.clone(),
                    },
                    &mut out,
                );
                conn.write_all(out.as_bytes())
                    .map_err(|e| DistError::Io(e.to_string()))?;
            }
            FrameKind::Binary => {
                let payload = protocol::encode_trajectory(&s.trajectory);
                protocol::write_message(
                    &Message::EpisodeBin {
                        epoch: job.epoch,
                        index: s.index,
                        base_metric: s.base_metric,
                        inspected_metric: s.inspected_metric,
                        inspections: s.inspections,
                        rejections: s.rejections,
                        bytes: payload.len(),
                    },
                    &mut out,
                );
                conn.write_all(out.as_bytes())
                    .map_err(|e| DistError::Io(e.to_string()))?;
                conn.write_all(&payload)
                    .map_err(|e| DistError::Io(e.to_string()))?;
            }
        }
    }

    let replica = match job.merge {
        MergeMode::Sync => None,
        MergeMode::Decentralized => {
            // Local DD-PPO update over this shard's trajectories, in
            // episode order, starting from the shipped checkpoint — a
            // pure function of (checkpoint, shard plan), so a shard
            // re-executed after a worker death merges identically.
            let batch = Batch {
                trajectories: summaries.iter().map(|s| s.trajectory.clone()).collect(),
            };
            let stats = trainer.ppo_mut().update(&batch);
            Some(Replica {
                checkpoint: trainer.checkpoint_text(job.epoch + 1),
                stats,
            })
        }
    };
    let n = summaries.len() as u64;
    out.clear();
    protocol::write_message(
        &Message::ShardDone {
            epoch: job.epoch,
            shard: job.shard,
            episodes: n,
            replica,
        },
        &mut out,
    );
    conn.write_all(out.as_bytes())
        .map_err(|e| DistError::Io(e.to_string()))?;
    Ok(n)
}

/// Handles to in-process workers started by [`spawn_local_workers`].
pub struct LocalWorkers {
    handles: Vec<JoinHandle<Result<WorkerReport, DistError>>>,
}

impl LocalWorkers {
    /// Wait for every worker thread; a worker that lost its connection
    /// (e.g. its coordinator-side stream was chaos-killed) reports an
    /// error rather than panicking the test.
    pub fn join(self) -> Vec<Result<WorkerReport, DistError>> {
        self.handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(DistError::Io("worker thread panicked".into())))
            })
            .collect()
    }
}

/// Spawn one in-process worker thread per trainer, all connecting to
/// `addr`. Each thread owns its trainer — the same isolation a worker
/// process has, minus the process boundary.
pub fn spawn_local_workers(addr: std::net::SocketAddr, trainers: Vec<Trainer>) -> LocalWorkers {
    let handles = trainers
        .into_iter()
        .map(|mut trainer| {
            let cfg = WorkerConfig {
                connect: addr.to_string(),
                ..WorkerConfig::default()
            };
            thread::spawn(move || run_worker(&mut trainer, &cfg))
        })
        .collect();
    LocalWorkers { handles }
}
