//! The coordinator↔worker wire protocol: line-delimited JSON frames with
//! an optional length-prefixed binary trajectory frame.
//!
//! # Grammar
//!
//! Coordinator → worker:
//!
//! ```text
//! shard    = {"verb":"shard","epoch":E,"shard":S,"seed_base":HEX16,
//!             "merge":"sync"|"decentralized","frame":"json"|"binary",
//!             "assignments":[[index,start],...],"checkpoint":TEXT}
//! shutdown = {"verb":"shutdown"}
//! ```
//!
//! Worker → coordinator:
//!
//! ```text
//! hello       = {"verb":"hello","proto":1,"input_dim":D,"seed":HEX16}
//! episode     = {"verb":"episode","epoch":E,"index":I,"base_metric":B,
//!                "inspected_metric":M,"inspections":N,"rejections":K,
//!                "reward":R,"steps":[[[f,...],a,logp],...]}
//! episode_bin = {"verb":"episode_bin","epoch":E,"index":I,"base_metric":B,
//!                "inspected_metric":M,"inspections":N,"rejections":K,
//!                "bytes":L}           followed by exactly L raw bytes
//! shard_done  = {"verb":"shard_done","epoch":E,"shard":S,"episodes":n
//!                [,"replica":TEXT,"stats":[pi,vf,kl,ent,clip,gnorm,iters]]}
//! ```
//!
//! Either direction may send `{"verb":"error","message":S}` before closing.
//!
//! # Numeric encoding
//!
//! 64-bit seeds ride as 16-hex-digit strings (JSON numbers pass through
//! `f64` and lose precision above 2⁵³). Every `f32` payload is widened to
//! `f64` before formatting: `f32 → f64` is exact, Rust's `{}` prints the
//! shortest string that re-parses to the same `f64`, and casting that
//! `f64` back to `f32` is exact because the value *is* an `f32`. The
//! result: floats cross the wire bit-identically, which the determinism
//! contract depends on. The binary frame ships raw little-endian `f32`
//! bits and is exact by construction.

use inspector::EpisodeSummary;
use obs::json::{escape_into, parse, Json};
use obs::trace::{hex16, parse_hex16};
use rlcore::{Step, Trajectory, UpdateStats};
use serve::Transport;
use std::fmt::Write as _;

/// Protocol version carried in `hello`; the coordinator rejects mismatches.
pub const PROTO_VERSION: u64 = 1;

/// Ceiling on one frame (line or binary payload). A full checkpoint for
/// the paper's 938-parameter network is a few tens of KiB; 16 MiB leaves
/// room for far larger models while bounding a hostile peer.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Typed wire-format failures. Every malformed input maps here — the
/// codec never panics on untrusted bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The peer closed the stream cleanly (EOF).
    Closed,
    /// A hard transport error (reset, broken pipe, ...).
    Io(String),
    /// A frame exceeded [`MAX_FRAME_BYTES`] (or the reader's limit).
    TooLong {
        /// The limit that was exceeded, in bytes.
        limit: usize,
    },
    /// A line was not valid protocol JSON, or a field had the wrong
    /// type/value.
    Malformed(String),
    /// A binary trajectory payload failed structural validation.
    Binary(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "peer closed the connection"),
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::TooLong { limit } => write!(f, "frame exceeds {limit} bytes"),
            ProtoError::Malformed(e) => write!(f, "malformed frame: {e}"),
            ProtoError::Binary(e) => write!(f, "bad binary payload: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// How per-shard results fold back into one model per epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeMode {
    /// Workers ship trajectories; the coordinator runs one central PPO
    /// update over the full batch — byte-identical to in-process training
    /// for any worker count.
    #[default]
    Sync,
    /// DD-PPO style: each worker runs a local PPO update over its shard
    /// and ships the replica; the coordinator installs the weighted
    /// parameter average. Deterministic for a fixed (seed, shard count).
    Decentralized,
}

impl MergeMode {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            MergeMode::Sync => "sync",
            MergeMode::Decentralized => "decentralized",
        }
    }

    /// Parse a wire/CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sync" => Some(MergeMode::Sync),
            "decentralized" => Some(MergeMode::Decentralized),
            _ => None,
        }
    }
}

/// Episode frame encoding the coordinator asks workers to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameKind {
    /// Human-readable JSON steps (the default; exact, see module docs).
    #[default]
    Json,
    /// Length-prefixed little-endian binary payload — compact for long
    /// trajectories.
    Binary,
}

impl FrameKind {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            FrameKind::Json => "json",
            FrameKind::Binary => "binary",
        }
    }

    /// Parse a wire/CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "json" => Some(FrameKind::Json),
            "binary" => Some(FrameKind::Binary),
            _ => None,
        }
    }
}

/// A worker's post-local-update state, attached to `shard_done` in
/// decentralized mode.
#[derive(Debug, Clone, PartialEq)]
pub struct Replica {
    /// Full checkpoint text (`schedinspector-checkpoint v1`) of the
    /// replica after its local update.
    pub checkpoint: String,
    /// The local update's diagnostics.
    pub stats: UpdateStats,
}

/// One parsed protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker join announcement (first frame on every connection).
    Hello {
        /// Must equal [`PROTO_VERSION`].
        proto: u64,
        /// Worker's feature dimension — must match the coordinator's.
        input_dim: usize,
        /// Worker's training seed — must match the coordinator's.
        seed: u64,
    },
    /// Shard assignment: roll out these `(episode index, start offset)`
    /// pairs under the shipped checkpoint.
    Shard {
        /// Epoch the assignment belongs to.
        epoch: usize,
        /// Logical shard index (the merge key, not the worker identity).
        shard: usize,
        /// Base of per-episode seeds (episode `i` uses `base + i`).
        seed_base: u64,
        /// Merge discipline for this epoch.
        merge: MergeMode,
        /// Episode frame encoding to reply with.
        frame: FrameKind,
        /// `(episode index, start offset)` pairs, in episode order.
        assignments: Vec<(usize, usize)>,
        /// Checkpoint text to install before rolling out.
        checkpoint: String,
    },
    /// One rolled-out episode (JSON frame).
    Episode {
        /// Epoch the episode belongs to.
        epoch: usize,
        /// The episode's summary, exact to the bit.
        summary: EpisodeSummary,
    },
    /// Header of one rolled-out episode whose trajectory follows as
    /// `bytes` raw bytes (binary frame).
    EpisodeBin {
        /// Epoch the episode belongs to.
        epoch: usize,
        /// Position of the episode in the epoch batch.
        index: usize,
        /// Base-policy metric value.
        base_metric: f64,
        /// Inspected-run metric value.
        inspected_metric: f64,
        /// Scheduling points inspected.
        inspections: u64,
        /// Rejections issued.
        rejections: u64,
        /// Exact length of the binary trajectory payload that follows.
        bytes: usize,
    },
    /// A shard's rollout (and, decentralized, local update) finished.
    ShardDone {
        /// Epoch the shard belongs to.
        epoch: usize,
        /// Logical shard index.
        shard: usize,
        /// Episodes the worker produced for this shard.
        episodes: u64,
        /// Replica state (decentralized mode only).
        replica: Option<Replica>,
    },
    /// Orderly end of session.
    Shutdown,
    /// Fatal condition report; the sender closes after this.
    Error {
        /// Human-readable description (safe to log).
        message: String,
    },
}

fn f64_str(x: f64, out: &mut String) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

/// Append `msg` as one newline-terminated frame line.
pub fn write_message(msg: &Message, out: &mut String) {
    match msg {
        Message::Hello {
            proto,
            input_dim,
            seed,
        } => {
            let _ = write!(
                out,
                "{{\"verb\":\"hello\",\"proto\":{proto},\"input_dim\":{input_dim},\"seed\":\"{}\"}}",
                hex16(*seed)
            );
        }
        Message::Shard {
            epoch,
            shard,
            seed_base,
            merge,
            frame,
            assignments,
            checkpoint,
        } => {
            let _ = write!(
                out,
                "{{\"verb\":\"shard\",\"epoch\":{epoch},\"shard\":{shard},\"seed_base\":\"{}\",\
                 \"merge\":\"{}\",\"frame\":\"{}\",\"assignments\":[",
                hex16(*seed_base),
                merge.as_str(),
                frame.as_str()
            );
            for (i, (index, start)) in assignments.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{index},{start}]");
            }
            out.push_str("],\"checkpoint\":");
            escape_into(checkpoint, out);
            out.push('}');
        }
        Message::Episode { epoch, summary } => {
            let _ = write!(out, "{{\"verb\":\"episode\",\"epoch\":{epoch},");
            write_summary_fields(
                out,
                summary.index,
                summary.base_metric,
                summary.inspected_metric,
                summary.inspections,
                summary.rejections,
            );
            out.push_str(",\"reward\":");
            f64_str(summary.trajectory.reward as f64, out);
            out.push_str(",\"steps\":[");
            for (i, s) in summary.trajectory.steps.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("[[");
                for (j, x) in s.state.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    f64_str(*x as f64, out);
                }
                let _ = write!(out, "],{},", s.action);
                f64_str(s.logp as f64, out);
                out.push(']');
            }
            out.push_str("]}");
        }
        Message::EpisodeBin {
            epoch,
            index,
            base_metric,
            inspected_metric,
            inspections,
            rejections,
            bytes,
        } => {
            let _ = write!(out, "{{\"verb\":\"episode_bin\",\"epoch\":{epoch},");
            write_summary_fields(
                out,
                *index,
                *base_metric,
                *inspected_metric,
                *inspections,
                *rejections,
            );
            let _ = write!(out, ",\"bytes\":{bytes}}}");
        }
        Message::ShardDone {
            epoch,
            shard,
            episodes,
            replica,
        } => {
            let _ = write!(
                out,
                "{{\"verb\":\"shard_done\",\"epoch\":{epoch},\"shard\":{shard},\"episodes\":{episodes}"
            );
            if let Some(r) = replica {
                out.push_str(",\"replica\":");
                escape_into(&r.checkpoint, out);
                out.push_str(",\"stats\":[");
                for (i, x) in [
                    r.stats.pi_loss,
                    r.stats.vf_loss,
                    r.stats.approx_kl,
                    r.stats.entropy,
                    r.stats.clip_frac,
                    r.stats.grad_norm,
                ]
                .iter()
                .enumerate()
                {
                    if i > 0 {
                        out.push(',');
                    }
                    f64_str(*x as f64, out);
                }
                let _ = write!(out, ",{}]", r.stats.pi_iters);
            }
            out.push('}');
        }
        Message::Shutdown => out.push_str("{\"verb\":\"shutdown\"}"),
        Message::Error { message } => {
            out.push_str("{\"verb\":\"error\",\"message\":");
            escape_into(message, out);
            out.push('}');
        }
    }
    out.push('\n');
}

fn write_summary_fields(
    out: &mut String,
    index: usize,
    base_metric: f64,
    inspected_metric: f64,
    inspections: u64,
    rejections: u64,
) {
    let _ = write!(out, "\"index\":{index},\"base_metric\":");
    f64_str(base_metric, out);
    out.push_str(",\"inspected_metric\":");
    f64_str(inspected_metric, out);
    let _ = write!(
        out,
        ",\"inspections\":{inspections},\"rejections\":{rejections}"
    );
}

fn bad(msg: impl Into<String>) -> ProtoError {
    ProtoError::Malformed(msg.into())
}

fn num_field(v: &Json, key: &str) -> Result<f64, ProtoError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(format!("missing numeric field {key:?}")))
}

fn index_field(v: &Json, key: &str) -> Result<usize, ProtoError> {
    let n = num_field(v, key)?;
    if n < 0.0 || n.fract() != 0.0 || n > (1u64 << 53) as f64 {
        return Err(bad(format!(
            "field {key:?} must be a non-negative integer, got {n}"
        )));
    }
    Ok(n as usize)
}

fn count_field(v: &Json, key: &str) -> Result<u64, ProtoError> {
    Ok(index_field(v, key)? as u64)
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, ProtoError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("missing string field {key:?}")))
}

fn hex_field(v: &Json, key: &str) -> Result<u64, ProtoError> {
    let s = str_field(v, key)?;
    parse_hex16(s).ok_or_else(|| bad(format!("field {key:?} is not a 64-bit hex id: {s:?}")))
}

/// Parse one frame line (without its trailing newline).
pub fn parse_message(line: &str) -> Result<Message, ProtoError> {
    let v = parse(line).map_err(bad)?;
    let verb = str_field(&v, "verb")?;
    match verb {
        "hello" => Ok(Message::Hello {
            proto: count_field(&v, "proto")?,
            input_dim: index_field(&v, "input_dim")?,
            seed: hex_field(&v, "seed")?,
        }),
        "shard" => {
            let raw = v
                .get("assignments")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("shard requires an array \"assignments\""))?;
            let mut assignments = Vec::with_capacity(raw.len());
            for pair in raw {
                let items = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| bad("each assignment must be an [index, start] pair"))?;
                let as_idx = |x: &Json| -> Result<usize, ProtoError> {
                    let n = x
                        .as_f64()
                        .ok_or_else(|| bad("assignment entries must be numbers"))?;
                    if n < 0.0 || n.fract() != 0.0 {
                        return Err(bad(format!(
                            "assignment entries must be non-negative integers, got {n}"
                        )));
                    }
                    Ok(n as usize)
                };
                assignments.push((as_idx(&items[0])?, as_idx(&items[1])?));
            }
            Ok(Message::Shard {
                epoch: index_field(&v, "epoch")?,
                shard: index_field(&v, "shard")?,
                seed_base: hex_field(&v, "seed_base")?,
                merge: MergeMode::parse(str_field(&v, "merge")?)
                    .ok_or_else(|| bad("unknown merge mode"))?,
                frame: FrameKind::parse(str_field(&v, "frame")?)
                    .ok_or_else(|| bad("unknown frame kind"))?,
                assignments,
                checkpoint: str_field(&v, "checkpoint")?.to_string(),
            })
        }
        "episode" => {
            let raw = v
                .get("steps")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("episode requires an array \"steps\""))?;
            let mut steps = Vec::with_capacity(raw.len());
            for s in raw {
                let parts = s
                    .as_array()
                    .filter(|p| p.len() == 3)
                    .ok_or_else(|| bad("each step must be a [state, action, logp] triple"))?;
                let state_raw = parts[0]
                    .as_array()
                    .ok_or_else(|| bad("step state must be an array of numbers"))?;
                let mut state = Vec::with_capacity(state_raw.len());
                for x in state_raw {
                    state.push(
                        x.as_f64()
                            .ok_or_else(|| bad("step state must contain only numbers"))?
                            as f32,
                    );
                }
                let action = parts[1]
                    .as_f64()
                    .filter(|a| *a == 0.0 || *a == 1.0)
                    .ok_or_else(|| bad("step action must be 0 or 1"))?
                    as u8;
                let logp = parts[2]
                    .as_f64()
                    .ok_or_else(|| bad("step logp must be a number"))?
                    as f32;
                steps.push(Step {
                    state,
                    action,
                    logp,
                });
            }
            Ok(Message::Episode {
                epoch: index_field(&v, "epoch")?,
                summary: EpisodeSummary {
                    index: index_field(&v, "index")?,
                    trajectory: Trajectory {
                        steps,
                        reward: num_field(&v, "reward")? as f32,
                    },
                    base_metric: num_field(&v, "base_metric")?,
                    inspected_metric: num_field(&v, "inspected_metric")?,
                    inspections: count_field(&v, "inspections")?,
                    rejections: count_field(&v, "rejections")?,
                },
            })
        }
        "episode_bin" => {
            let bytes = index_field(&v, "bytes")?;
            if bytes > MAX_FRAME_BYTES {
                return Err(ProtoError::TooLong {
                    limit: MAX_FRAME_BYTES,
                });
            }
            Ok(Message::EpisodeBin {
                epoch: index_field(&v, "epoch")?,
                index: index_field(&v, "index")?,
                base_metric: num_field(&v, "base_metric")?,
                inspected_metric: num_field(&v, "inspected_metric")?,
                inspections: count_field(&v, "inspections")?,
                rejections: count_field(&v, "rejections")?,
                bytes,
            })
        }
        "shard_done" => {
            let replica = match v.get("replica") {
                None => None,
                Some(r) => {
                    let checkpoint = r
                        .as_str()
                        .ok_or_else(|| bad("\"replica\" must be a checkpoint string"))?
                        .to_string();
                    let raw = v
                        .get("stats")
                        .and_then(Json::as_array)
                        .filter(|s| s.len() == 7)
                        .ok_or_else(|| bad("replica requires a 7-element \"stats\" array"))?;
                    let mut f = [0.0f64; 7];
                    for (slot, x) in f.iter_mut().zip(raw) {
                        *slot = x
                            .as_f64()
                            .ok_or_else(|| bad("\"stats\" must contain only numbers"))?;
                    }
                    if f[6] < 0.0 || f[6].fract() != 0.0 {
                        return Err(bad("stats pi_iters must be a non-negative integer"));
                    }
                    Some(Replica {
                        checkpoint,
                        stats: UpdateStats {
                            pi_loss: f[0] as f32,
                            vf_loss: f[1] as f32,
                            approx_kl: f[2] as f32,
                            entropy: f[3] as f32,
                            clip_frac: f[4] as f32,
                            grad_norm: f[5] as f32,
                            pi_iters: f[6] as usize,
                        },
                    })
                }
            };
            Ok(Message::ShardDone {
                epoch: index_field(&v, "epoch")?,
                shard: index_field(&v, "shard")?,
                episodes: count_field(&v, "episodes")?,
                replica,
            })
        }
        "shutdown" => Ok(Message::Shutdown),
        "error" => Ok(Message::Error {
            message: str_field(&v, "message")?.to_string(),
        }),
        other => Err(bad(format!("unknown verb {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Binary trajectory payload
// ---------------------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn push_f32(out: &mut Vec<u8>, x: f32) {
    out.extend_from_slice(&x.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|e| *e <= self.bytes.len())
            .ok_or_else(|| ProtoError::Binary("payload truncated".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, ProtoError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }
}

/// Encode a trajectory as the `episode_bin` payload: `u32` step count,
/// `u32` state dimension, then per step `dim × f32` state + `u8` action +
/// `f32` logp, then the `f32` terminal reward — all little-endian.
pub fn encode_trajectory(t: &Trajectory) -> Vec<u8> {
    let dim = t.steps.first().map_or(0, |s| s.state.len());
    let mut out = Vec::with_capacity(8 + t.steps.len() * (dim * 4 + 5) + 4);
    push_u32(&mut out, t.steps.len() as u32);
    push_u32(&mut out, dim as u32);
    for s in &t.steps {
        debug_assert_eq!(s.state.len(), dim, "ragged state dims in one trajectory");
        for x in &s.state {
            push_f32(&mut out, *x);
        }
        out.push(s.action);
        push_f32(&mut out, s.logp);
    }
    push_f32(&mut out, t.reward);
    out
}

/// Decode an `episode_bin` payload. Every structural violation (short
/// buffer, trailing bytes, absurd counts, non-binary action) is a typed
/// [`ProtoError::Binary`] — never a panic.
pub fn decode_trajectory(bytes: &[u8]) -> Result<Trajectory, ProtoError> {
    let mut c = Cursor { bytes, pos: 0 };
    let steps = c.u32()? as usize;
    let dim = c.u32()? as usize;
    let need = steps
        .checked_mul(dim.saturating_mul(4).saturating_add(5))
        .and_then(|n| n.checked_add(12))
        .ok_or_else(|| ProtoError::Binary("step/dim counts overflow".into()))?;
    if need != bytes.len() {
        return Err(ProtoError::Binary(format!(
            "payload holds {} bytes, header implies {need}",
            bytes.len()
        )));
    }
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let mut state = Vec::with_capacity(dim);
        for _ in 0..dim {
            state.push(c.f32()?);
        }
        let action = c.u8()?;
        if action > 1 {
            return Err(ProtoError::Binary(format!(
                "action byte {action} is not 0/1"
            )));
        }
        let logp = c.f32()?;
        out.push(Step {
            state,
            action,
            logp,
        });
    }
    let reward = c.f32()?;
    if c.pos != bytes.len() {
        return Err(ProtoError::Binary("trailing bytes after reward".into()));
    }
    Ok(Trajectory { steps: out, reward })
}

/// Encode an epoch's episode summaries (in ledger order) as one opaque
/// blob for the [`store::trajectory`] journal.
pub fn encode_batch(summaries: &[EpisodeSummary]) -> Vec<u8> {
    let mut out = Vec::new();
    push_u32(&mut out, summaries.len() as u32);
    for s in summaries {
        push_u32(&mut out, s.index as u32);
        out.extend_from_slice(&s.base_metric.to_le_bytes());
        out.extend_from_slice(&s.inspected_metric.to_le_bytes());
        out.extend_from_slice(&s.inspections.to_le_bytes());
        out.extend_from_slice(&s.rejections.to_le_bytes());
        let traj = encode_trajectory(&s.trajectory);
        push_u32(&mut out, traj.len() as u32);
        out.extend_from_slice(&traj);
    }
    out
}

/// Decode a blob written by [`encode_batch`].
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<EpisodeSummary>, ProtoError> {
    let mut c = Cursor { bytes, pos: 0 };
    let n = c.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let index = c.u32()? as usize;
        let base_metric = f64::from_le_bytes(c.take(8)?.try_into().unwrap());
        let inspected_metric = f64::from_le_bytes(c.take(8)?.try_into().unwrap());
        let inspections = u64::from_le_bytes(c.take(8)?.try_into().unwrap());
        let rejections = u64::from_le_bytes(c.take(8)?.try_into().unwrap());
        let len = c.u32()? as usize;
        let trajectory = decode_trajectory(c.take(len)?)?;
        out.push(EpisodeSummary {
            index,
            trajectory,
            base_metric,
            inspected_metric,
            inspections,
            rejections,
        });
    }
    if c.pos != bytes.len() {
        return Err(ProtoError::Binary("trailing bytes after batch".into()));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Frame reader
// ---------------------------------------------------------------------------

/// Incremental frame reader over a [`Transport`]: buffers bytes, yields
/// complete lines and length-prefixed binary payloads. `Ok(None)` means
/// the transport's read timeout elapsed with the frame still incomplete
/// (poll again); EOF surfaces as [`ProtoError::Closed`].
pub struct FrameReader {
    buf: Vec<u8>,
    max: usize,
}

impl FrameReader {
    /// A reader enforcing `max` bytes per frame.
    pub fn new(max: usize) -> Self {
        FrameReader {
            buf: Vec::new(),
            max,
        }
    }

    /// Pull more bytes from `t`. `Ok(true)` if any arrived, `Ok(false)`
    /// on a timeout tick.
    fn fill<T: Transport>(&mut self, t: &mut T) -> Result<bool, ProtoError> {
        let mut chunk = [0u8; 4096];
        match t.read(&mut chunk) {
            Ok(0) => Err(ProtoError::Closed),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(true)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(false)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(false),
            Err(e) => Err(ProtoError::Io(e.to_string())),
        }
    }

    /// Next complete line (without the newline), or `None` on a timeout.
    pub fn poll_line<T: Transport>(&mut self, t: &mut T) -> Result<Option<String>, ProtoError> {
        loop {
            if let Some(at) = self.buf.iter().position(|b| *b == b'\n') {
                let rest = self.buf.split_off(at + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                let line = String::from_utf8(line)
                    .map_err(|_| ProtoError::Malformed("frame is not UTF-8".into()))?;
                return Ok(Some(line));
            }
            if self.buf.len() > self.max {
                return Err(ProtoError::TooLong { limit: self.max });
            }
            if !self.fill(t)? {
                return Ok(None);
            }
        }
    }

    /// Next `n` raw payload bytes, or `None` on a timeout with the
    /// payload still incomplete (already-buffered bytes are retained).
    pub fn poll_bytes<T: Transport>(
        &mut self,
        t: &mut T,
        n: usize,
    ) -> Result<Option<Vec<u8>>, ProtoError> {
        if n > self.max {
            return Err(ProtoError::TooLong { limit: self.max });
        }
        while self.buf.len() < n {
            if !self.fill(t)? {
                return Ok(None);
            }
        }
        let rest = self.buf.split_off(n);
        Ok(Some(std::mem::replace(&mut self.buf, rest)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(index: usize) -> EpisodeSummary {
        EpisodeSummary {
            index,
            trajectory: Trajectory {
                steps: vec![
                    Step {
                        state: vec![0.1, -2.5e-7, 1.0 / 3.0],
                        action: 0,
                        logp: -std::f32::consts::LN_2,
                    },
                    Step {
                        state: vec![f32::MIN_POSITIVE, 1e30, -0.0],
                        action: 1,
                        logp: -1.25,
                    },
                ],
                reward: 0.012_345_67,
            },
            base_metric: 123.456_789_012_345,
            inspected_metric: -0.000_001_234,
            inspections: 17,
            rejections: 3,
        }
    }

    fn roundtrip(msg: &Message) -> Message {
        let mut line = String::new();
        write_message(msg, &mut line);
        assert!(line.ends_with('\n'));
        parse_message(line.trim_end()).expect("wire roundtrip")
    }

    #[test]
    fn every_message_roundtrips_exactly() {
        let msgs = [
            Message::Hello {
                proto: PROTO_VERSION,
                input_dim: 7,
                seed: u64::MAX - 3,
            },
            Message::Shard {
                epoch: 4,
                shard: 1,
                seed_base: 0xDEAD_BEEF_CAFE_F00D,
                merge: MergeMode::Decentralized,
                frame: FrameKind::Binary,
                assignments: vec![(0, 12), (1, 0), (2, 999)],
                checkpoint: "schedinspector-checkpoint v1\nline \"two\"\n".into(),
            },
            Message::Episode {
                epoch: 2,
                summary: summary(5),
            },
            Message::EpisodeBin {
                epoch: 2,
                index: 6,
                base_metric: 1.5,
                inspected_metric: 0.75,
                inspections: 9,
                rejections: 0,
                bytes: 42,
            },
            Message::ShardDone {
                epoch: 2,
                shard: 0,
                episodes: 25,
                replica: Some(Replica {
                    checkpoint: "ck\ntext".into(),
                    stats: UpdateStats {
                        pi_loss: -0.125,
                        vf_loss: 2.5,
                        approx_kl: 0.001,
                        entropy: 0.69,
                        clip_frac: 0.25,
                        grad_norm: 3.5,
                        pi_iters: 10,
                    },
                }),
            },
            Message::ShardDone {
                epoch: 0,
                shard: 3,
                episodes: 0,
                replica: None,
            },
            Message::Shutdown,
            Message::Error {
                message: "it \"broke\"\nbadly".into(),
            },
        ];
        for msg in &msgs {
            assert_eq!(&roundtrip(msg), msg);
        }
    }

    #[test]
    fn u64_seeds_survive_above_f64_precision() {
        // 2^53 + 1 is exactly the first value a JSON number would corrupt.
        let seed = (1u64 << 53) + 1;
        match roundtrip(&Message::Hello {
            proto: 1,
            input_dim: 1,
            seed,
        }) {
            Message::Hello { seed: got, .. } => assert_eq!(got, seed),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn episode_floats_cross_the_wire_bit_exactly() {
        let s = summary(0);
        match roundtrip(&Message::Episode {
            epoch: 0,
            summary: s.clone(),
        }) {
            Message::Episode { summary: got, .. } => {
                assert_eq!(got, s);
                // Spot-check the bits, not just PartialEq.
                assert_eq!(
                    got.trajectory.steps[0].logp.to_bits(),
                    s.trajectory.steps[0].logp.to_bits()
                );
                assert_eq!(got.base_metric.to_bits(), s.base_metric.to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn binary_trajectory_roundtrips_and_rejects_corruption() {
        let t = summary(0).trajectory;
        let bytes = encode_trajectory(&t);
        assert_eq!(decode_trajectory(&bytes).unwrap(), t);
        // Truncations at every byte boundary fail cleanly.
        for cut in 0..bytes.len() {
            assert!(decode_trajectory(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing junk fails.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_trajectory(&long).is_err());
        // A non-binary action byte fails: flip the first step's action.
        let mut bad = bytes.clone();
        let action_at = 8 + 3 * 4;
        bad[action_at] = 7;
        assert!(decode_trajectory(&bad).is_err());
        // Empty trajectory is fine.
        let empty = Trajectory::default();
        assert_eq!(
            decode_trajectory(&encode_trajectory(&empty)).unwrap(),
            empty
        );
    }

    #[test]
    fn batch_blob_roundtrips() {
        let batch = vec![summary(0), summary(1), summary(7)];
        let bytes = encode_batch(&batch);
        assert_eq!(decode_batch(&bytes).unwrap(), batch);
        assert!(decode_batch(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes;
        long.push(9);
        assert!(decode_batch(&long).is_err());
        assert_eq!(decode_batch(&encode_batch(&[])).unwrap(), vec![]);
    }

    #[test]
    fn parse_rejects_malformed_lines_with_typed_errors() {
        for line in [
            "",
            "{",
            "null",
            "{\"verb\":\"nope\"}",
            "{\"verb\":\"hello\",\"proto\":1,\"input_dim\":7}", // missing seed
            "{\"verb\":\"hello\",\"proto\":1,\"input_dim\":7,\"seed\":12}", // numeric seed
            "{\"verb\":\"shard\",\"epoch\":0}",
            "{\"verb\":\"episode\",\"epoch\":0,\"index\":0,\"base_metric\":1,\
             \"inspected_metric\":1,\"inspections\":0,\"rejections\":0,\"reward\":0,\
             \"steps\":[[[1],2,0.0]]}", // action 2
            "{\"verb\":\"episode_bin\",\"epoch\":0,\"index\":0,\"base_metric\":1,\
             \"inspected_metric\":1,\"inspections\":0,\"rejections\":0,\"bytes\":-4}",
            "{\"verb\":\"shard_done\",\"epoch\":0,\"shard\":0,\"episodes\":1,\
             \"replica\":\"ck\",\"stats\":[1,2,3]}", // short stats
        ] {
            assert!(parse_message(line).is_err(), "{line:?}");
        }
    }

    #[test]
    fn oversized_bin_header_is_too_long() {
        let line = format!(
            "{{\"verb\":\"episode_bin\",\"epoch\":0,\"index\":0,\"base_metric\":1,\
             \"inspected_metric\":1,\"inspections\":0,\"rejections\":0,\"bytes\":{}}}",
            MAX_FRAME_BYTES + 1
        );
        assert!(matches!(
            parse_message(&line),
            Err(ProtoError::TooLong { .. })
        ));
    }
}
