//! Property: scenario compilation is a pure function of `(spec, seed)`.
//!
//! Two independent parse+compile passes over the same spec text with the
//! same seed must produce **byte-identical** artifacts — both the SWF
//! text (trace plus tenant-range header) and the serialized load profile.
//! This is the contract CI's scenario matrix relies on (`compile` twice,
//! `cmp` the outputs), so it is enforced here over generated specs, not
//! just the checked-in examples.

use proptest::prelude::*;
use scenario::{compile, swf_text, ScenarioSpec};

const ARRIVALS: [&str; 3] = ["steady", "diurnal", "bursty"];

/// Render a spec document from generated parameters. Building the TOML
/// text (rather than the struct) exercises the parser on every case too.
fn spec_text(tenants: &[(u64, u64, usize)], event: Option<(usize, u64)>) -> String {
    let mut s = String::from("[scenario]\nname = \"prop\"\nprocs = 128\nhorizon_hours = 2.0\n");
    for (i, &(users, rate, arrival)) in tenants.iter().enumerate() {
        s.push_str(&format!(
            "\n[[tenant]]\nname = \"t{i}\"\nusers = {users}\n\
             rate_per_hour = {rate}.0\narrival = \"{}\"\n",
            ARRIVALS[arrival % ARRIVALS.len()]
        ));
    }
    match event {
        Some((0, start)) => s.push_str(&format!(
            "\n[[event]]\nkind = \"flash_crowd\"\nstart_hours = 0.{start}\n\
             duration_hours = 0.5\nmultiplier = 3.0\n"
        )),
        Some((_, start)) => s.push_str(&format!(
            "\n[[event]]\nkind = \"drain\"\nstart_hours = 0.{start}\n\
             duration_hours = 0.5\n"
        )),
        None => {}
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compile_is_pure_in_spec_and_seed(
        seed in any::<u64>(),
        tenants in prop::collection::vec((1u64..2000, 1u64..40, 0usize..3), 1..4),
        event_pick in 0usize..3,
        event_start in 1u64..9,
    ) {
        // 0 = flash crowd, 1 = drain, 2 = no event.
        let event = (event_pick < 2).then_some((event_pick, event_start));
        let text = spec_text(&tenants, event);

        // Two fully independent passes: parse the text twice, compile
        // each spec separately, serialize both artifact sets.
        let a = compile(&ScenarioSpec::parse(&text).unwrap(), seed).unwrap();
        let b = compile(&ScenarioSpec::parse(&text).unwrap(), seed).unwrap();
        prop_assert_eq!(swf_text(&a), swf_text(&b));
        prop_assert_eq!(a.profile.to_toml(), b.profile.to_toml());
        prop_assert_eq!(a.trace.jobs.clone(), b.trace.jobs.clone());

        // The seed must actually matter: a different seed on a non-empty
        // trace reshuffles at least the arrival process (compared on the
        // jobs themselves — the SWF header differs trivially by seed).
        if !a.trace.jobs.is_empty() {
            let c = compile(&ScenarioSpec::parse(&text).unwrap(), seed ^ 0x9E37_79B9).unwrap();
            prop_assert!(a.trace.jobs != c.trace.jobs, "seed did not affect the trace");
        }
    }
}

/// The round-trip leg of the same contract: the emitted profile parses
/// back to an equal profile, and re-serializes to the same bytes.
#[test]
fn profile_toml_round_trips() {
    let text = spec_text(&[(500, 20, 1), (50, 8, 2)], Some((0, 3)));
    let compiled = compile(&ScenarioSpec::parse(&text).unwrap(), 7).unwrap();
    let toml = compiled.profile.to_toml();
    let reparsed = scenario::LoadProfile::parse(&toml).expect("emitted profile parses");
    assert_eq!(reparsed.to_toml(), toml);
}
