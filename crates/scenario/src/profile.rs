//! Typed, serializable load profiles for open-loop serve replay.
//!
//! A [`LoadProfile`] replaces the loadgen binary's flag soup (`--qps`,
//! `--secs`, `--conns`, `--seed`, ...) with one value that can be written
//! to disk, compiled from a scenario, and shared between the loadgen
//! library and the CLI. The on-disk form is the same TOML fragment the
//! scenario grammar uses, so one parser serves both.

use crate::toml::{escape, Doc, Value};

/// How a tenant shares the replayed request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantShare {
    /// Tenant name (matches the scenario tenant).
    pub name: String,
    /// Fraction of requests attributed to this tenant (shares sum to 1).
    pub weight: f64,
}

/// A typed open-loop load profile.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadProfile {
    /// Profile name (scenario name when compiled).
    pub name: String,
    /// Mean request rate over the whole run.
    pub qps: f64,
    /// Run duration, seconds.
    pub secs: f64,
    /// Requested client connections (before shard balancing).
    pub conns: u32,
    /// RNG seed for arrival jitter and tenant tagging.
    pub seed: u64,
    /// Per-phase rate multipliers (mean ≈ 1), replayed left to right over
    /// `secs`. Empty means a flat rate.
    pub phases: Vec<f64>,
    /// Tenant mix. Empty means a single anonymous tenant.
    pub tenants: Vec<TenantShare>,
}

impl LoadProfile {
    /// A flat single-tenant profile — the equivalent of the old flag set.
    pub fn steady(name: impl Into<String>, qps: f64, secs: f64, conns: u32, seed: u64) -> Self {
        LoadProfile {
            name: name.into(),
            qps,
            secs,
            conns,
            seed,
            phases: Vec::new(),
            tenants: Vec::new(),
        }
    }

    /// Validate invariants (positive rate/duration, normalized weights).
    pub fn validate(&self) -> Result<(), ProfileError> {
        if !(self.qps > 0.0 && self.qps.is_finite()) {
            return Err(ProfileError::new(format!(
                "qps must be positive, got {}",
                self.qps
            )));
        }
        if !(self.secs > 0.0 && self.secs.is_finite()) {
            return Err(ProfileError::new(format!(
                "secs must be positive, got {}",
                self.secs
            )));
        }
        if self.conns == 0 {
            return Err(ProfileError::new("conns must be at least 1"));
        }
        if self.phases.iter().any(|&p| !p.is_finite() || p < 0.0) {
            return Err(ProfileError::new("phase multipliers must be ≥ 0"));
        }
        if !self.tenants.is_empty() {
            let sum: f64 = self.tenants.iter().map(|t| t.weight).sum();
            let bad_weight = |w: f64| w.is_nan() || w < 0.0;
            if self.tenants.iter().any(|t| bad_weight(t.weight)) || sum.is_nan() || sum <= 0.0 {
                return Err(ProfileError::new(
                    "tenant weights must be ≥ 0 and sum to a positive value",
                ));
            }
        }
        Ok(())
    }

    /// The number of connections to actually open against `shards` engine
    /// shards: `conns` rounded **up** to a multiple of the shard count, so
    /// the `conn_id % shards` pinning gives every shard the same number of
    /// connections and per-shard batch statistics stay comparable even for
    /// uneven tenant mixes.
    pub fn balanced_conns(&self, shards: usize) -> u32 {
        let shards = shards.max(1) as u32;
        let conns = self.conns.max(1);
        conns.div_ceil(shards) * shards
    }

    /// The instantaneous rate multiplier at `frac ∈ [0, 1)` of the run.
    pub fn phase_multiplier(&self, frac: f64) -> f64 {
        if self.phases.is_empty() {
            return 1.0;
        }
        let idx = ((frac.clamp(0.0, 1.0)) * self.phases.len() as f64) as usize;
        self.phases[idx.min(self.phases.len() - 1)]
    }

    /// Deterministically attribute request `request_id` to a tenant index.
    ///
    /// Both the sender (tagging outgoing requests) and the receiver
    /// (attributing latencies) call this with the same ids, so the split
    /// never needs to ride the wire.
    pub fn tenant_for(&self, request_id: u64) -> usize {
        if self.tenants.is_empty() {
            return 0;
        }
        // SplitMix64 of (seed, id) → uniform in [0, 1) → weight CDF.
        let mut z = request_id
            .wrapping_add(self.seed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let total: f64 = self.tenants.iter().map(|t| t.weight).sum();
        let u = (z >> 11) as f64 / (1u64 << 53) as f64 * total;
        let mut acc = 0.0;
        for (i, t) in self.tenants.iter().enumerate() {
            acc += t.weight;
            if u < acc {
                return i;
            }
        }
        self.tenants.len() - 1
    }

    /// Serialize to the canonical TOML form. The output is byte-stable for
    /// equal profiles (fields in fixed order, `{}` float formatting) so
    /// compiled artifacts can be compared with `cmp`.
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("[profile]\n");
        let _ = writeln!(out, "name = {}", escape(&self.name));
        let _ = writeln!(out, "qps = {}", fmt_f64(self.qps));
        let _ = writeln!(out, "secs = {}", fmt_f64(self.secs));
        let _ = writeln!(out, "conns = {}", self.conns);
        let _ = writeln!(out, "seed = {}", self.seed);
        if !self.phases.is_empty() {
            let items: Vec<String> = self.phases.iter().map(|&p| fmt_f64(p)).collect();
            let _ = writeln!(out, "phases = [{}]", items.join(", "));
        }
        for t in &self.tenants {
            out.push_str("\n[[tenant]]\n");
            let _ = writeln!(out, "name = {}", escape(&t.name));
            let _ = writeln!(out, "weight = {}", fmt_f64(t.weight));
        }
        out
    }

    /// Parse the TOML form produced by [`to_toml`](Self::to_toml) (or
    /// written by hand).
    pub fn parse(text: &str) -> Result<Self, ProfileError> {
        let doc = Doc::parse(text).map_err(|e| ProfileError::new(format!("syntax: {e}")))?;
        let p = doc
            .table("profile")
            .ok_or_else(|| ProfileError::new("missing [profile] section"))?;
        for key in p.keys() {
            if !matches!(key, "name" | "qps" | "secs" | "conns" | "seed" | "phases") {
                return Err(ProfileError::new(format!("unknown [profile] key {key:?}")));
            }
        }
        let name = p
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ProfileError::new("missing string key name"))?
            .to_string();
        let need = |key: &str| -> Result<f64, ProfileError> {
            p.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| ProfileError::new(format!("missing numeric key {key}")))
        };
        let qps = need("qps")?;
        let secs = need("secs")?;
        let conns = need("conns")?;
        if conns < 1.0 || conns.fract() != 0.0 || conns > u32::MAX as f64 {
            return Err(ProfileError::new("conns must be a positive integer"));
        }
        let seed = match p.get("seed") {
            None => 0,
            Some(v) => {
                let n = v
                    .as_i64()
                    .ok_or_else(|| ProfileError::new("seed must be an integer"))?;
                if n < 0 {
                    return Err(ProfileError::new("seed must be non-negative"));
                }
                n as u64
            }
        };
        let phases = match p.get("phases") {
            None => Vec::new(),
            Some(Value::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for v in items {
                    out.push(
                        v.as_f64()
                            .ok_or_else(|| ProfileError::new("phases must be numeric"))?,
                    );
                }
                out
            }
            Some(_) => return Err(ProfileError::new("phases must be an array")),
        };
        let mut tenants = Vec::new();
        for t in doc.array("tenant") {
            for key in t.keys() {
                if !matches!(key, "name" | "weight") {
                    return Err(ProfileError::new(format!("unknown [[tenant]] key {key:?}")));
                }
            }
            let name = t
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| ProfileError::new("tenant missing string key name"))?
                .to_string();
            let weight = t
                .get("weight")
                .and_then(Value::as_f64)
                .ok_or_else(|| ProfileError::new("tenant missing numeric key weight"))?;
            tenants.push(TenantShare { name, weight });
        }
        let profile = LoadProfile {
            name,
            qps,
            secs,
            conns: conns as u32,
            seed,
            phases,
            tenants,
        };
        profile.validate()?;
        Ok(profile)
    }
}

/// Format an `f64` with the shortest round-trip representation (Rust's
/// `{}`), which is deterministic across platforms.
pub fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        // Keep integral values readable and make them parse back as TOML
        // floats-or-ints interchangeably.
        format!("{:.1}", v)
    } else {
        format!("{v}")
    }
}

/// A load-profile parse or validation error.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileError {
    /// What is wrong.
    pub message: String,
}

impl ProfileError {
    fn new(message: impl Into<String>) -> Self {
        ProfileError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "load profile: {}", self.message)
    }
}

impl std::error::Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LoadProfile {
        LoadProfile {
            name: "flash".into(),
            qps: 120.5,
            secs: 4.0,
            conns: 6,
            seed: 99,
            phases: vec![0.5, 1.0, 2.5, 1.0],
            tenants: vec![
                TenantShare {
                    name: "batch".into(),
                    weight: 0.75,
                },
                TenantShare {
                    name: "ui".into(),
                    weight: 0.25,
                },
            ],
        }
    }

    #[test]
    fn toml_roundtrip_is_exact() {
        let p = sample();
        let text = p.to_toml();
        let back = LoadProfile::parse(&text).unwrap();
        assert_eq!(p, back);
        // And re-serialization is byte-identical.
        assert_eq!(text, back.to_toml());
    }

    #[test]
    fn steady_profile_has_flat_phases() {
        let p = LoadProfile::steady("s", 50.0, 2.0, 4, 1);
        assert_eq!(p.phase_multiplier(0.0), 1.0);
        assert_eq!(p.phase_multiplier(0.99), 1.0);
        assert_eq!(p.tenant_for(123), 0);
        p.validate().unwrap();
    }

    #[test]
    fn phase_multiplier_indexes_by_fraction() {
        let p = sample();
        assert_eq!(p.phase_multiplier(0.0), 0.5);
        assert_eq!(p.phase_multiplier(0.6), 2.5);
        assert_eq!(p.phase_multiplier(1.0), 1.0);
        assert_eq!(p.phase_multiplier(-1.0), 0.5);
    }

    #[test]
    fn balanced_conns_rounds_up_to_shard_multiple() {
        let p = sample(); // conns = 6
        assert_eq!(p.balanced_conns(1), 6);
        assert_eq!(p.balanced_conns(2), 6);
        assert_eq!(p.balanced_conns(4), 8);
        assert_eq!(p.balanced_conns(5), 10);
        let one = LoadProfile::steady("s", 1.0, 1.0, 1, 0);
        assert_eq!(one.balanced_conns(3), 3);
    }

    #[test]
    fn tenant_attribution_is_deterministic_and_weighted() {
        let p = sample();
        let n = 40_000u64;
        let mut counts = [0usize; 2];
        for id in 0..n {
            let t = p.tenant_for(id);
            assert_eq!(t, p.tenant_for(id), "deterministic");
            counts[t] += 1;
        }
        let frac = counts[0] as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "batch share {frac}");
    }

    #[test]
    fn parse_rejects_bad_profiles() {
        for text in [
            "",
            "[profile]\nqps = 1.0\nsecs = 1.0\nconns = 1\n",
            "[profile]\nname = \"x\"\nqps = -1.0\nsecs = 1.0\nconns = 1\n",
            "[profile]\nname = \"x\"\nqps = 1.0\nsecs = 1.0\nconns = 0\n",
            "[profile]\nname = \"x\"\nqps = 1.0\nsecs = 1.0\nconns = 1\nbogus = 2\n",
            "[profile]\nname = \"x\"\nqps = 1.0\nsecs = 1.0\nconns = 1\n[[tenant]]\nname = \"t\"\n",
        ] {
            assert!(LoadProfile::parse(text).is_err(), "should reject {text:?}");
        }
    }
}
