//! Per-tenant fairness and tail metrics.
//!
//! A [`FairnessReport`] joins simulation outcomes (or serve replay
//! latencies) back to the tenant ranges a scenario compiled, and summarizes
//! each tenant's wait/slowdown distribution plus a Jain fairness index
//! across tenants. The JSON form is what `schedinspector report
//! --fairness` renders, so the simulator path and the serving path emit
//! the same schema.

use std::collections::BTreeMap;

use obs::json::Json;
use simhpc::SimResult;
use workload::Job;

use crate::compile::TenantRange;

/// Summary statistics for one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMetrics {
    /// Tenant name.
    pub name: String,
    /// Jobs (or requests) attributed to the tenant.
    pub jobs: u64,
    /// Mean wait (sim) or mean latency (serve), seconds.
    pub mean_wait_s: f64,
    /// 99th percentile wait/latency, seconds.
    pub p99_wait_s: f64,
    /// Mean bounded slowdown (sim only; 0 for serve sources).
    pub mean_bsld: f64,
    /// 99th percentile bounded slowdown (sim only; 0 for serve sources).
    pub p99_bsld: f64,
}

/// Fairness report across a scenario's tenants.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// Scenario name.
    pub scenario: String,
    /// Where the numbers came from: `"sim"` or `"serve"`.
    pub source: String,
    /// Per-tenant rows, in tenant order.
    pub tenants: Vec<TenantMetrics>,
    /// Jain fairness index over per-tenant mean slowdown (sim) or mean
    /// latency (serve). 1.0 = perfectly even, 1/n = one tenant takes all
    /// the pain.
    pub jain: f64,
}

/// `p`-th percentile (0–100) by nearest-rank on a sorted slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over non-negative values.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

fn summarize(name: &str, mut waits: Vec<f64>, mut bslds: Vec<f64>) -> TenantMetrics {
    waits.sort_by(f64::total_cmp);
    bslds.sort_by(f64::total_cmp);
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    TenantMetrics {
        name: name.to_string(),
        jobs: waits.len() as u64,
        mean_wait_s: mean(&waits),
        p99_wait_s: percentile(&waits, 99.0),
        mean_bsld: mean(&bslds),
        p99_bsld: percentile(&bslds, 99.0),
    }
}

impl FairnessReport {
    /// Build a report from a simulation: outcomes are joined to the input
    /// jobs by id to recover the submitting user, and users map to tenants
    /// through the compiled ranges. Jobs outside every range land in an
    /// `"(other)"` row so nothing is silently dropped.
    pub fn from_sim(
        scenario: impl Into<String>,
        result: &SimResult,
        jobs: &[Job],
        tenants: &[TenantRange],
    ) -> Self {
        let user_of: BTreeMap<u64, u32> = jobs.iter().map(|j| (j.id, j.user)).collect();
        let mut waits: Vec<Vec<f64>> = vec![Vec::new(); tenants.len() + 1];
        let mut bslds: Vec<Vec<f64>> = vec![Vec::new(); tenants.len() + 1];
        for o in &result.outcomes {
            let slot = user_of
                .get(&o.id)
                .and_then(|&u| tenants.iter().position(|t| t.contains(u)))
                .unwrap_or(tenants.len());
            waits[slot].push(o.wait());
            bslds[slot].push(o.bsld());
        }
        let mut rows = Vec::with_capacity(tenants.len() + 1);
        for (i, t) in tenants.iter().enumerate() {
            rows.push(summarize(
                &t.name,
                std::mem::take(&mut waits[i]),
                std::mem::take(&mut bslds[i]),
            ));
        }
        if !waits[tenants.len()].is_empty() {
            rows.push(summarize(
                "(other)",
                std::mem::take(&mut waits[tenants.len()]),
                std::mem::take(&mut bslds[tenants.len()]),
            ));
        }
        Self::assemble(scenario, "sim", rows)
    }

    /// Build a report from per-tenant latency samples (seconds), as
    /// collected by a serve replay. Slowdown columns are zero.
    pub fn from_latencies(scenario: impl Into<String>, samples: Vec<(String, Vec<f64>)>) -> Self {
        let rows = samples
            .into_iter()
            .map(|(name, lat)| summarize(&name, lat, Vec::new()))
            .collect();
        Self::assemble(scenario, "serve", rows)
    }

    /// Assemble a report from pre-computed rows. The serve replay records
    /// latencies in log-linear histograms rather than raw vectors, so it
    /// summarizes per tenant itself and hands the rows over here.
    pub fn from_rows(
        scenario: impl Into<String>,
        source: &str,
        tenants: Vec<TenantMetrics>,
    ) -> Self {
        Self::assemble(scenario, source, tenants)
    }

    fn assemble(scenario: impl Into<String>, source: &str, tenants: Vec<TenantMetrics>) -> Self {
        // Fairness over the tenant means of the source's primary metric:
        // bounded slowdown for simulations, latency for serve replays.
        let xs: Vec<f64> = tenants
            .iter()
            .filter(|t| t.jobs > 0)
            .map(|t| {
                if source == "sim" {
                    t.mean_bsld
                } else {
                    t.mean_wait_s
                }
            })
            .collect();
        FairnessReport {
            scenario: scenario.into(),
            source: source.to_string(),
            tenants,
            jain: jain_index(&xs),
        }
    }

    /// Serialize to the JSON schema consumed by `schedinspector report`.
    pub fn to_json(&self) -> Json {
        let mut root = BTreeMap::new();
        root.insert("kind".into(), Json::String("fairness".into()));
        root.insert("scenario".into(), Json::String(self.scenario.clone()));
        root.insert("source".into(), Json::String(self.source.clone()));
        root.insert("jain".into(), Json::Number(self.jain));
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                let mut row = BTreeMap::new();
                row.insert("name".into(), Json::String(t.name.clone()));
                row.insert("jobs".into(), Json::Number(t.jobs as f64));
                row.insert("mean_wait_s".into(), Json::Number(t.mean_wait_s));
                row.insert("p99_wait_s".into(), Json::Number(t.p99_wait_s));
                row.insert("mean_bsld".into(), Json::Number(t.mean_bsld));
                row.insert("p99_bsld".into(), Json::Number(t.p99_bsld));
                Json::Object(row)
            })
            .collect();
        root.insert("tenants".into(), Json::Array(tenants));
        Json::Object(root)
    }

    /// Parse the JSON form back (for `schedinspector report --fairness`).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        if v.get("kind").and_then(Json::as_str) != Some("fairness") {
            return Err("not a fairness report (kind != \"fairness\")".into());
        }
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let scenario = str_field("scenario")?;
        let source = str_field("source")?;
        let jain = v
            .get("jain")
            .and_then(Json::as_f64)
            .ok_or("missing numeric field \"jain\"")?;
        let rows = v
            .get("tenants")
            .and_then(Json::as_array)
            .ok_or("missing array field \"tenants\"")?;
        let mut tenants = Vec::with_capacity(rows.len());
        for row in rows {
            let num = |key: &str| -> Result<f64, String> {
                row.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("tenant row missing numeric field {key:?}"))
            };
            tenants.push(TenantMetrics {
                name: row
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("tenant row missing \"name\"")?
                    .to_string(),
                jobs: num("jobs")? as u64,
                mean_wait_s: num("mean_wait_s")?,
                p99_wait_s: num("p99_wait_s")?,
                mean_bsld: num("mean_bsld")?,
                p99_bsld: num("p99_bsld")?,
            });
        }
        Ok(FairnessReport {
            scenario,
            source,
            tenants,
            jain,
        })
    }

    /// Render an aligned plain-text table. Column labels follow the
    /// source: simulation rows report wait/slowdown, serve rows latency.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let sim = self.source == "sim";
        let (c1, c2) = if sim {
            ("mean_wait_s", "p99_wait_s")
        } else {
            ("mean_lat_s", "p99_lat_s")
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fairness: scenario={} source={} jain={:.4}",
            self.scenario, self.source, self.jain
        );
        let name_w = self
            .tenants
            .iter()
            .map(|t| t.name.len())
            .chain(["tenant".len()])
            .max()
            .unwrap_or(6);
        if sim {
            let _ = writeln!(
                out,
                "{:name_w$}  {:>8}  {:>12}  {:>12}  {:>10}  {:>10}",
                "tenant", "jobs", c1, c2, "mean_bsld", "p99_bsld"
            );
        } else {
            let _ = writeln!(
                out,
                "{:name_w$}  {:>8}  {:>12}  {:>12}",
                "tenant", "reqs", c1, c2
            );
        }
        for t in &self.tenants {
            if sim {
                let _ = writeln!(
                    out,
                    "{:name_w$}  {:>8}  {:>12.2}  {:>12.2}  {:>10.3}  {:>10.3}",
                    t.name, t.jobs, t.mean_wait_s, t.p99_wait_s, t.mean_bsld, t.p99_bsld
                );
            } else {
                let _ = writeln!(
                    out,
                    "{:name_w$}  {:>8}  {:>12.6}  {:>12.6}",
                    t.name, t.jobs, t.mean_wait_s, t.p99_wait_s
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simhpc::{JobOutcome, SimResult};

    fn outcome(id: u64, submit: f64, start: f64, runtime: f64) -> JobOutcome {
        JobOutcome {
            id,
            submit,
            start,
            end: start + runtime,
            runtime,
            procs: 1,
            backfilled: false,
            rejections: 0,
        }
    }

    fn ranges() -> Vec<TenantRange> {
        vec![
            TenantRange {
                name: "a".into(),
                user_lo: 0,
                user_hi: 10,
            },
            TenantRange {
                name: "b".into(),
                user_lo: 10,
                user_hi: 20,
            },
        ]
    }

    fn job(id: u64, user: u32) -> Job {
        Job {
            id,
            submit: 0.0,
            runtime: 100.0,
            estimate: 100.0,
            procs: 1,
            user,
            queue: 0,
        }
    }

    #[test]
    fn from_sim_joins_outcomes_to_tenants() {
        let jobs = vec![job(1, 0), job(2, 5), job(3, 15)];
        let result = SimResult {
            outcomes: vec![
                outcome(1, 0.0, 0.0, 100.0),
                outcome(2, 0.0, 100.0, 100.0),
                outcome(3, 0.0, 300.0, 100.0),
            ],
            total_procs: 4,
            inspections: 0,
            rejections: 0,
        };
        let r = FairnessReport::from_sim("s", &result, &jobs, &ranges());
        assert_eq!(r.tenants.len(), 2);
        assert_eq!(r.tenants[0].jobs, 2);
        assert_eq!(r.tenants[0].mean_wait_s, 50.0);
        assert_eq!(r.tenants[1].jobs, 1);
        assert_eq!(r.tenants[1].mean_wait_s, 300.0);
        assert!(r.jain > 0.0 && r.jain <= 1.0);
        // tenant b waits 6× longer → meaningfully unfair.
        assert!(r.jain < 0.95, "jain {}", r.jain);
    }

    #[test]
    fn unknown_users_get_an_other_row() {
        let jobs = vec![job(1, 999)];
        let result = SimResult {
            outcomes: vec![outcome(1, 0.0, 10.0, 100.0)],
            total_procs: 4,
            inspections: 0,
            rejections: 0,
        };
        let r = FairnessReport::from_sim("s", &result, &jobs, &ranges());
        assert_eq!(r.tenants.len(), 3);
        assert_eq!(r.tenants[2].name, "(other)");
        assert_eq!(r.tenants[2].jobs, 1);
    }

    #[test]
    fn json_roundtrip() {
        let jobs = vec![job(1, 0), job(2, 15)];
        let result = SimResult {
            outcomes: vec![outcome(1, 0.0, 5.0, 50.0), outcome(2, 0.0, 80.0, 50.0)],
            total_procs: 4,
            inspections: 3,
            rejections: 1,
        };
        let r = FairnessReport::from_sim("round", &result, &jobs, &ranges());
        let text = r.to_json().to_string();
        let back = FairnessReport::from_json(&obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn serve_source_renders_latency_columns() {
        let r = FairnessReport::from_latencies(
            "replay",
            vec![
                ("a".into(), vec![0.001, 0.002, 0.003]),
                ("b".into(), vec![0.010]),
            ],
        );
        assert_eq!(r.source, "serve");
        assert_eq!(r.tenants[0].jobs, 3);
        assert_eq!(r.tenants[0].mean_bsld, 0.0);
        let table = r.render();
        assert!(table.contains("mean_lat_s"), "{table}");
        assert!(table.contains("jain"), "{table}");
    }

    #[test]
    fn percentile_and_jain_edge_cases() {
        assert_eq!(percentile(&[], 99.0), 0.0);
        assert_eq!(percentile(&[5.0], 99.0), 5.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skew = jain_index(&[10.0, 0.1, 0.1]);
        assert!(skew < 0.5, "jain {skew}");
    }
}
