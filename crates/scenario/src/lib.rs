//! Declarative traffic scenarios for the SchedInspector reproduction.
//!
//! The north-star deployment serves scheduling decisions for clusters with
//! very large, multi-tenant user populations. This crate lets an operator
//! describe that traffic declaratively — tenants with Zipf-skewed user
//! activity, diurnal or bursty arrival processes, flash crowds, and
//! maintenance drains — and compile the description **deterministically**
//! into the two artifact kinds the rest of the workspace consumes:
//!
//! * a synthetic SWF trace (via [`compile`] / [`swf_text`]) usable
//!   anywhere a [`workload::TraceSource`] is accepted, with tenant
//!   user-id ranges recorded in the SWF header; and
//! * a typed [`LoadProfile`] replayed open-loop against the serving
//!   engine, replacing the loadgen binary's ad-hoc flags.
//!
//! [`FairnessReport`] closes the loop: it joins simulation outcomes or
//! replay latencies back to tenants and reports per-tenant tail metrics
//! plus a Jain fairness index, rendered by `schedinspector report`.
//!
//! ```
//! let spec = scenario::ScenarioSpec::parse(r#"
//! [scenario]
//! name = "demo"
//! procs = 64
//! horizon_hours = 1.0
//!
//! [[tenant]]
//! name = "batch"
//! users = 20
//! rate_per_hour = 120.0
//! "#).unwrap();
//! let a = scenario::compile(&spec, 42).unwrap();
//! let b = scenario::compile(&spec, 42).unwrap();
//! assert_eq!(scenario::swf_text(&a), scenario::swf_text(&b));
//! assert_eq!(a.profile.to_toml(), b.profile.to_toml());
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod fairness;
pub mod profile;
pub mod spec;
pub mod toml;

pub use compile::{
    compile, swf_text, tenant_ranges_from_header, CompileError, Compiled, TenantRange,
    PROFILE_PHASES,
};
pub use fairness::{jain_index, percentile, FairnessReport, TenantMetrics};
pub use profile::{LoadProfile, ProfileError, TenantShare};
pub use spec::{
    ArrivalKind, EventKind, EventSpec, ReplaySpec, ScenarioSpec, SpecError, TenantSpec,
};

use std::path::{Path, PathBuf};

use workload::{JobTrace, SourceError, TraceSource};

/// A [`TraceSource`] that compiles a scenario spec file on `load`.
///
/// This is the third ingestion backend next to
/// [`workload::SwfFileSource`] and [`workload::SyntheticSource`]: the
/// simulator, trainer, and experiment binaries can consume a scenario
/// without knowing anything about the grammar.
#[derive(Debug, Clone)]
pub struct ScenarioSource {
    path: PathBuf,
    seed: u64,
}

impl ScenarioSource {
    /// Source for the spec at `path`, compiled with `seed`.
    pub fn new(path: impl Into<PathBuf>, seed: u64) -> Self {
        ScenarioSource {
            path: path.into(),
            seed,
        }
    }

    /// The spec file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Parse the spec and compile the full artifact set (trace, tenant
    /// ranges, load profile). `load` keeps only the trace.
    pub fn compile(&self) -> Result<Compiled, SourceError> {
        let text = std::fs::read_to_string(&self.path).map_err(SourceError::Io)?;
        let spec = ScenarioSpec::parse(&text)
            .map_err(|e| SourceError::Other(format!("{}: {e}", self.path.display())))?;
        compile::compile(&spec, self.seed).map_err(|e| SourceError::Other(e.to_string()))
    }
}

impl TraceSource for ScenarioSource {
    fn id(&self) -> String {
        format!("scenario:{}:{}", self.path.display(), self.seed)
    }

    fn load(&self) -> Result<JobTrace, SourceError> {
        Ok(self.compile()?.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_source_compiles_through_the_trait() {
        let dir = std::env::temp_dir().join(format!("scn-src-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.toml");
        std::fs::write(
            &path,
            "[scenario]\nname = \"demo\"\nprocs = 32\nhorizon_hours = 1.0\n\
             [[tenant]]\nname = \"t\"\nusers = 5\nrate_per_hour = 240.0\n",
        )
        .unwrap();
        let src = ScenarioSource::new(&path, 9);
        assert!(src.id().starts_with("scenario:"));
        let trace = src.load().unwrap();
        assert_eq!(trace.procs, 32);
        assert!(!trace.is_empty());
        assert_eq!(trace.jobs, src.load().unwrap().jobs, "load is pure");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_source_surfaces_errors() {
        let missing = ScenarioSource::new("/nonexistent/spec.toml", 1);
        assert!(matches!(missing.load(), Err(SourceError::Io(_))));
        let dir = std::env::temp_dir().join(format!("scn-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.toml");
        std::fs::write(&path, "[scenario]\nname = \"x\"\n").unwrap();
        assert!(matches!(
            ScenarioSource::new(&path, 1).load(),
            Err(SourceError::Other(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
