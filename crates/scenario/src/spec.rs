//! The declarative scenario grammar.
//!
//! A scenario spec is a TOML document describing a machine, a set of tenant
//! populations, and a timeline of load events:
//!
//! ```toml
//! [scenario]
//! name = "flash-crowd"
//! procs = 256
//! horizon_hours = 6.0
//!
//! [[tenant]]
//! name = "batch"
//! users = 200
//! rate_per_hour = 300.0
//! arrival = "diurnal"
//!
//! [[tenant]]
//! name = "interactive"
//! users = 1500
//! rate_per_hour = 120.0
//! mean_runtime_s = 300.0
//!
//! [[event]]
//! kind = "flash_crowd"
//! tenant = "interactive"
//! start_hours = 2.0
//! duration_hours = 0.5
//! multiplier = 8.0
//!
//! [replay]
//! qps = 50.0
//! secs = 5.0
//! conns = 8
//! ```
//!
//! Parsing is strict: unknown sections or keys are errors, so a typo fails
//! `scenario validate` instead of silently compiling to the defaults.

use crate::toml::{Doc, Table, TomlError, Value};

/// Hard cap on the expected job count of a compiled scenario
/// (`Σ rate × horizon`), so a fat-fingered rate cannot OOM the compiler.
pub const MAX_EXPECTED_JOBS: f64 = 5_000_000.0;

/// Hard cap on the total user population across tenants (the compiler
/// builds an O(users) Zipf CDF table per tenant, so this bounds memory).
pub const MAX_TOTAL_USERS: u64 = 10_000_000;

/// How a tenant's jobs arrive over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Homogeneous Poisson arrivals.
    Steady,
    /// Poisson modulated by the shared diurnal cycle
    /// ([`workload::synthetic::daily_cycle_weight`]).
    Diurnal,
    /// Steady base process plus correlated submission campaigns.
    Bursty,
}

impl ArrivalKind {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "steady" => Some(ArrivalKind::Steady),
            "diurnal" => Some(ArrivalKind::Diurnal),
            "bursty" => Some(ArrivalKind::Bursty),
            _ => None,
        }
    }

    /// The spec keyword for this kind.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalKind::Steady => "steady",
            ArrivalKind::Diurnal => "diurnal",
            ArrivalKind::Bursty => "bursty",
        }
    }
}

/// One tenant: a user population with its own workload shape.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Unique tenant name.
    pub name: String,
    /// User population size (users get a disjoint global id range).
    pub users: u64,
    /// Mean submissions per hour for the whole tenant.
    pub rate_per_hour: f64,
    /// Zipf exponent of the user activity skew (0 = uniform).
    pub user_skew: f64,
    /// Arrival process shape.
    pub arrival: ArrivalKind,
    /// Probability an arrival starts a submission campaign (bursty only).
    pub burst_prob: f64,
    /// Mean extra jobs per campaign (bursty only).
    pub burst_mean: f64,
    /// Target mean requested processors.
    pub mean_procs: f64,
    /// Probability of a serial (1-proc) job.
    pub serial_prob: f64,
    /// Probability a parallel size snaps to a power of two.
    pub pow2_prob: f64,
    /// Mean actual runtime, seconds.
    pub mean_runtime_s: f64,
    /// Log-scale spread of the runtime log-normal.
    pub runtime_sigma: f64,
    /// Mean walltime over-estimation factor (≥ 1).
    pub overest: f64,
}

/// What a timeline event does to the arrival rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Multiply the arrival rate by `multiplier` for the window.
    FlashCrowd {
        /// Rate multiplier (> 1).
        multiplier: f64,
    },
    /// Maintenance drain: suppress submissions entirely for the window.
    Drain,
}

/// One timeline event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// What happens.
    pub kind: EventKind,
    /// Affected tenant, or `None` for all tenants.
    pub tenant: Option<String>,
    /// Window start, seconds from scenario origin.
    pub start_s: f64,
    /// Window length, seconds.
    pub duration_s: f64,
}

impl EventSpec {
    /// The rate multiplier this event applies at time `t` for tenant
    /// `tenant` (1.0 outside the window or for other tenants).
    pub fn multiplier_at(&self, t: f64, tenant: &str) -> f64 {
        if let Some(target) = &self.tenant {
            if target != tenant {
                return 1.0;
            }
        }
        if t < self.start_s || t >= self.start_s + self.duration_s {
            return 1.0;
        }
        match self.kind {
            EventKind::FlashCrowd { multiplier } => multiplier,
            EventKind::Drain => 0.0,
        }
    }
}

/// Serve-replay parameters compiled into the [`LoadProfile`]
/// (`crate::profile::LoadProfile`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplaySpec {
    /// Mean request rate for open-loop replay.
    pub qps: f64,
    /// Replay duration, seconds.
    pub secs: f64,
    /// Client connection count (before shard balancing).
    pub conns: u32,
}

impl Default for ReplaySpec {
    fn default() -> Self {
        ReplaySpec {
            qps: 50.0,
            secs: 5.0,
            conns: 8,
        }
    }
}

/// A validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (becomes the trace name).
    pub name: String,
    /// Machine processor count.
    pub procs: u32,
    /// Timeline length, seconds.
    pub horizon_s: f64,
    /// Tenant populations (at least one).
    pub tenants: Vec<TenantSpec>,
    /// Timeline events.
    pub events: Vec<EventSpec>,
    /// Serve-replay parameters.
    pub replay: ReplaySpec,
}

impl ScenarioSpec {
    /// Parse and validate a spec document.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let doc = Doc::parse(text)?;
        Self::from_doc(&doc)
    }

    fn from_doc(doc: &Doc) -> Result<Self, SpecError> {
        if let Some((key, _)) = doc.root.entries.first() {
            return Err(SpecError::at(
                "top level",
                format!("key {key:?} outside any section; keys go under [scenario]"),
            ));
        }
        for path in doc.section_paths() {
            if !matches!(path, "scenario" | "tenant" | "event" | "replay") {
                return Err(SpecError::at(
                    "top level",
                    format!("unknown section [{path}]"),
                ));
            }
        }

        let scenario = doc
            .table("scenario")
            .ok_or_else(|| SpecError::at("top level", "missing [scenario] section"))?;
        check_keys(scenario, "scenario", &["name", "procs", "horizon_hours"])?;
        let name = req_str(scenario, "scenario", "name")?;
        let procs = req_f64(scenario, "scenario", "procs")?;
        if !(1.0..=1_048_576.0).contains(&procs) || procs.fract() != 0.0 {
            return Err(SpecError::at(
                "scenario",
                format!("procs must be an integer in [1, 1048576], got {procs}"),
            ));
        }
        let horizon_hours = req_f64(scenario, "scenario", "horizon_hours")?;
        if !(horizon_hours > 0.0 && horizon_hours <= 24.0 * 365.0) {
            return Err(SpecError::at(
                "scenario",
                format!("horizon_hours must be in (0, 8760], got {horizon_hours}"),
            ));
        }
        let horizon_s = horizon_hours * 3600.0;

        let tenant_tables = doc.array("tenant");
        if tenant_tables.is_empty() {
            return Err(SpecError::at(
                "top level",
                "at least one [[tenant]] required",
            ));
        }
        let mut tenants = Vec::with_capacity(tenant_tables.len());
        for t in &tenant_tables {
            tenants.push(parse_tenant(t, procs as u32)?);
        }
        for i in 1..tenants.len() {
            if tenants[..i].iter().any(|t| t.name == tenants[i].name) {
                return Err(SpecError::at(
                    "tenant",
                    format!("duplicate tenant name {:?}", tenants[i].name),
                ));
            }
        }
        let total_users: u64 = tenants.iter().map(|t| t.users).sum();
        if total_users > MAX_TOTAL_USERS {
            return Err(SpecError::at(
                "tenant",
                format!("total user population {total_users} exceeds {MAX_TOTAL_USERS}"),
            ));
        }
        let expected_jobs: f64 = tenants
            .iter()
            .map(|t| t.rate_per_hour * horizon_hours)
            .sum();
        if expected_jobs > MAX_EXPECTED_JOBS {
            return Err(SpecError::at(
                "tenant",
                format!(
                    "expected job count {expected_jobs:.0} (Σ rate_per_hour × horizon) \
                     exceeds {MAX_EXPECTED_JOBS:.0}"
                ),
            ));
        }

        let mut events = Vec::new();
        for e in doc.array("event") {
            events.push(parse_event(e, horizon_s, &tenants)?);
        }

        let replay = match doc.table("replay") {
            None => ReplaySpec::default(),
            Some(r) => parse_replay(r)?,
        };

        Ok(ScenarioSpec {
            name,
            procs: procs as u32,
            horizon_s,
            tenants,
            events,
            replay,
        })
    }

    /// The combined rate multiplier (events only) for `tenant` at `t`.
    pub fn event_multiplier(&self, t: f64, tenant: &str) -> f64 {
        self.events
            .iter()
            .map(|e| e.multiplier_at(t, tenant))
            .product()
    }

    /// Upper bound of [`event_multiplier`](Self::event_multiplier) over the
    /// whole horizon for `tenant` (drains never raise it).
    pub fn max_event_multiplier(&self, tenant: &str) -> f64 {
        self.events
            .iter()
            .filter(|e| match e.tenant.as_deref() {
                None => true,
                Some(t) => t == tenant,
            })
            .map(|e| match e.kind {
                EventKind::FlashCrowd { multiplier } => multiplier,
                EventKind::Drain => 1.0,
            })
            .product()
    }
}

fn parse_tenant(t: &Table, procs: u32) -> Result<TenantSpec, SpecError> {
    const KEYS: &[&str] = &[
        "name",
        "users",
        "rate_per_hour",
        "user_skew",
        "arrival",
        "burst_prob",
        "burst_mean",
        "mean_procs",
        "serial_prob",
        "pow2_prob",
        "mean_runtime_s",
        "runtime_sigma",
        "overest",
    ];
    check_keys(t, "tenant", KEYS)?;
    let name = req_str(t, "tenant", "name")?;
    let ctx = format!("tenant {name:?}");

    let users = req_f64(t, &ctx, "users")?;
    if users < 1.0 || users.fract() != 0.0 || users > MAX_TOTAL_USERS as f64 {
        return Err(SpecError::at(
            &ctx,
            format!("users must be a positive integer, got {users}"),
        ));
    }
    let rate_per_hour = req_f64(t, &ctx, "rate_per_hour")?;
    if rate_per_hour.is_nan() || rate_per_hour <= 0.0 {
        return Err(SpecError::at(
            &ctx,
            format!("rate_per_hour must be positive, got {rate_per_hour}"),
        ));
    }

    let user_skew = opt_f64(t, &ctx, "user_skew", 1.1)?;
    if !(0.0..=10.0).contains(&user_skew) {
        return Err(SpecError::at(&ctx, "user_skew must be in [0, 10]"));
    }
    let arrival = match t.get("arrival") {
        None => ArrivalKind::Steady,
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| SpecError::at(&ctx, "arrival must be a string"))?;
            ArrivalKind::parse(s).ok_or_else(|| {
                SpecError::at(
                    &ctx,
                    format!("arrival must be steady|diurnal|bursty, got {s:?}"),
                )
            })?
        }
    };
    let burst_prob = opt_f64(t, &ctx, "burst_prob", 0.05)?;
    let burst_mean = opt_f64(t, &ctx, "burst_mean", 4.0)?;
    let serial_prob = opt_f64(t, &ctx, "serial_prob", 0.25)?;
    let pow2_prob = opt_f64(t, &ctx, "pow2_prob", 0.75)?;
    for (key, v) in [
        ("burst_prob", burst_prob),
        ("serial_prob", serial_prob),
        ("pow2_prob", pow2_prob),
    ] {
        if !(0.0..=1.0).contains(&v) {
            return Err(SpecError::at(
                &ctx,
                format!("{key} must be in [0, 1], got {v}"),
            ));
        }
    }
    if burst_mean.is_nan() || burst_mean <= 0.0 {
        return Err(SpecError::at(&ctx, "burst_mean must be positive"));
    }

    let default_mean_procs = (procs as f64 / 16.0).max(1.0);
    let mean_procs = opt_f64(t, &ctx, "mean_procs", default_mean_procs)?;
    if !(1.0 <= mean_procs && mean_procs <= procs as f64) {
        return Err(SpecError::at(
            &ctx,
            format!("mean_procs must be in [1, {procs}], got {mean_procs}"),
        ));
    }
    let mean_runtime_s = opt_f64(t, &ctx, "mean_runtime_s", 3600.0)?;
    if mean_runtime_s.is_nan() || mean_runtime_s < 10.0 {
        return Err(SpecError::at(&ctx, "mean_runtime_s must be ≥ 10"));
    }
    let runtime_sigma = opt_f64(t, &ctx, "runtime_sigma", 1.2)?;
    if !(runtime_sigma > 0.0 && runtime_sigma <= 5.0) {
        return Err(SpecError::at(&ctx, "runtime_sigma must be in (0, 5]"));
    }
    let overest = opt_f64(t, &ctx, "overest", 1.5)?;
    if !(1.0..=100.0).contains(&overest) {
        return Err(SpecError::at(&ctx, "overest must be in [1, 100]"));
    }

    Ok(TenantSpec {
        name,
        users: users as u64,
        rate_per_hour,
        user_skew,
        arrival,
        burst_prob,
        burst_mean,
        mean_procs,
        serial_prob,
        pow2_prob,
        mean_runtime_s,
        runtime_sigma,
        overest,
    })
}

fn parse_event(e: &Table, horizon_s: f64, tenants: &[TenantSpec]) -> Result<EventSpec, SpecError> {
    const KEYS: &[&str] = &[
        "kind",
        "tenant",
        "start_hours",
        "duration_hours",
        "multiplier",
    ];
    check_keys(e, "event", KEYS)?;
    let kind_name = req_str(e, "event", "kind")?;
    let ctx = format!("event {kind_name:?}");

    let tenant = match e.get("tenant") {
        None => None,
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| SpecError::at(&ctx, "tenant must be a string"))?;
            if !tenants.iter().any(|t| t.name == s) {
                return Err(SpecError::at(&ctx, format!("unknown tenant {s:?}")));
            }
            Some(s.to_string())
        }
    };
    let start_s = req_f64(e, &ctx, "start_hours")? * 3600.0;
    let duration_s = req_f64(e, &ctx, "duration_hours")? * 3600.0;
    if !(start_s >= 0.0 && start_s < horizon_s) {
        return Err(SpecError::at(
            &ctx,
            format!(
                "start_hours must be in [0, horizon), got {}",
                start_s / 3600.0
            ),
        ));
    }
    if duration_s.is_nan() || duration_s <= 0.0 {
        return Err(SpecError::at(&ctx, "duration_hours must be positive"));
    }

    let kind = match kind_name.as_str() {
        "flash_crowd" => {
            let multiplier = req_f64(e, &ctx, "multiplier")?;
            if !(multiplier > 1.0 && multiplier <= 1000.0) {
                return Err(SpecError::at(
                    &ctx,
                    format!("multiplier must be in (1, 1000], got {multiplier}"),
                ));
            }
            EventKind::FlashCrowd { multiplier }
        }
        "drain" => {
            if e.get("multiplier").is_some() {
                return Err(SpecError::at(&ctx, "drain events take no multiplier"));
            }
            EventKind::Drain
        }
        other => {
            return Err(SpecError::at(
                "event",
                format!("kind must be flash_crowd|drain, got {other:?}"),
            ))
        }
    };

    Ok(EventSpec {
        kind,
        tenant,
        start_s,
        duration_s,
    })
}

fn parse_replay(r: &Table) -> Result<ReplaySpec, SpecError> {
    check_keys(r, "replay", &["qps", "secs", "conns"])?;
    let d = ReplaySpec::default();
    let qps = opt_f64(r, "replay", "qps", d.qps)?;
    let secs = opt_f64(r, "replay", "secs", d.secs)?;
    let conns = opt_f64(r, "replay", "conns", d.conns as f64)?;
    if !(qps > 0.0 && qps <= 1e6) {
        return Err(SpecError::at("replay", "qps must be in (0, 1e6]"));
    }
    if !(secs > 0.0 && secs <= 3600.0) {
        return Err(SpecError::at("replay", "secs must be in (0, 3600]"));
    }
    if conns < 1.0 || conns.fract() != 0.0 || conns > 4096.0 {
        return Err(SpecError::at(
            "replay",
            "conns must be an integer in [1, 4096]",
        ));
    }
    Ok(ReplaySpec {
        qps,
        secs,
        conns: conns as u32,
    })
}

fn check_keys(t: &Table, section: &str, allowed: &[&str]) -> Result<(), SpecError> {
    for key in t.keys() {
        if !allowed.contains(&key) {
            return Err(SpecError::at(
                section,
                format!("unknown key {key:?} (allowed: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn req_str(t: &Table, section: &str, key: &str) -> Result<String, SpecError> {
    let v = t
        .get(key)
        .ok_or_else(|| SpecError::at(section, format!("missing key {key:?}")))?;
    let s = v
        .as_str()
        .ok_or_else(|| SpecError::at(section, format!("{key} must be a string")))?;
    if s.is_empty() {
        return Err(SpecError::at(section, format!("{key} must be non-empty")));
    }
    Ok(s.to_string())
}

fn req_f64(t: &Table, section: &str, key: &str) -> Result<f64, SpecError> {
    let v = t
        .get(key)
        .ok_or_else(|| SpecError::at(section, format!("missing key {key:?}")))?;
    num(v, section, key)
}

fn opt_f64(t: &Table, section: &str, key: &str, default: f64) -> Result<f64, SpecError> {
    match t.get(key) {
        None => Ok(default),
        Some(v) => num(v, section, key),
    }
}

fn num(v: &Value, section: &str, key: &str) -> Result<f64, SpecError> {
    let n = v
        .as_f64()
        .ok_or_else(|| SpecError::at(section, format!("{key} must be a number")))?;
    if !n.is_finite() {
        return Err(SpecError::at(section, format!("{key} must be finite")));
    }
    Ok(n)
}

/// A spec syntax or validation error.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// TOML-level syntax error.
    Toml(TomlError),
    /// Semantic validation failure, with the section that failed.
    Invalid {
        /// Which section or entity the error is about.
        section: String,
        /// What is wrong.
        message: String,
    },
}

impl SpecError {
    fn at(section: impl Into<String>, message: impl Into<String>) -> Self {
        SpecError::Invalid {
            section: section.into(),
            message: message.into(),
        }
    }
}

impl From<TomlError> for SpecError {
    fn from(e: TomlError) -> Self {
        SpecError::Toml(e)
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Toml(e) => write!(f, "spec syntax: {e}"),
            SpecError::Invalid { section, message } => write!(f, "spec {section}: {message}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Toml(e) => Some(e),
            SpecError::Invalid { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
[scenario]
name = "mini"
procs = 64
horizon_hours = 2.0

[[tenant]]
name = "batch"
users = 10
rate_per_hour = 60.0
"#;

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let s = ScenarioSpec::parse(MINIMAL).unwrap();
        assert_eq!(s.name, "mini");
        assert_eq!(s.procs, 64);
        assert_eq!(s.horizon_s, 7200.0);
        assert_eq!(s.tenants.len(), 1);
        let t = &s.tenants[0];
        assert_eq!(t.arrival, ArrivalKind::Steady);
        assert_eq!(t.user_skew, 1.1);
        assert_eq!(t.mean_procs, 4.0);
        assert_eq!(s.replay, ReplaySpec::default());
        assert!(s.events.is_empty());
    }

    #[test]
    fn full_spec_parses() {
        let text = format!(
            "{MINIMAL}\n\
             [[tenant]]\nname = \"ui\"\nusers = 1000\nrate_per_hour = 30.0\n\
             arrival = \"diurnal\"\nmean_runtime_s = 120.0\n\
             [[event]]\nkind = \"flash_crowd\"\ntenant = \"ui\"\n\
             start_hours = 0.5\nduration_hours = 0.25\nmultiplier = 6.0\n\
             [[event]]\nkind = \"drain\"\nstart_hours = 1.5\nduration_hours = 0.5\n\
             [replay]\nqps = 80.0\nsecs = 3.0\nconns = 6\n"
        );
        let s = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(s.tenants.len(), 2);
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.replay.qps, 80.0);
        // Multiplier timeline: flash crowd hits only "ui"; drain hits both.
        assert_eq!(s.event_multiplier(0.6 * 3600.0, "ui"), 6.0);
        assert_eq!(s.event_multiplier(0.6 * 3600.0, "batch"), 1.0);
        assert_eq!(s.event_multiplier(1.6 * 3600.0, "batch"), 0.0);
        assert_eq!(s.max_event_multiplier("ui"), 6.0);
        assert_eq!(s.max_event_multiplier("batch"), 1.0);
    }

    #[test]
    fn rejects_semantic_errors() {
        let cases: &[(&str, &str)] = &[
            ("", "missing [scenario]"),
            (
                "[scenario]\nname = \"x\"\nprocs = 0\nhorizon_hours = 1.0\n",
                "procs",
            ),
            (
                "[scenario]\nname = \"x\"\nprocs = 4\nhorizon_hours = 1.0\n",
                "tenant",
            ),
            (
                "[scenario]\nname = \"x\"\nprocs = 4\nhorizon_hours = 1.0\ntypo = 1\n",
                "unknown key",
            ),
            (
                "[scenario]\nname = \"x\"\nprocs = 4\nhorizon_hours = 1.0\n\
                 [[tenant]]\nname = \"a\"\nusers = 1\nrate_per_hour = 1.0\n\
                 [[tenant]]\nname = \"a\"\nusers = 1\nrate_per_hour = 1.0\n",
                "duplicate",
            ),
            (
                "[scenario]\nname = \"x\"\nprocs = 4\nhorizon_hours = 1.0\n\
                 [[tenant]]\nname = \"a\"\nusers = 1\nrate_per_hour = 1.0\n\
                 [[event]]\nkind = \"flash_crowd\"\nstart_hours = 0.0\n\
                 duration_hours = 0.5\nmultiplier = 0.5\n",
                "multiplier",
            ),
            (
                "[scenario]\nname = \"x\"\nprocs = 4\nhorizon_hours = 1.0\n\
                 [[tenant]]\nname = \"a\"\nusers = 1\nrate_per_hour = 1.0\n\
                 [[event]]\nkind = \"drain\"\ntenant = \"ghost\"\n\
                 start_hours = 0.0\nduration_hours = 0.5\n",
                "unknown tenant",
            ),
            (
                "[scenario]\nname = \"x\"\nprocs = 4\nhorizon_hours = 1.0\n\
                 [[tenant]]\nname = \"a\"\nusers = 1\nrate_per_hour = 1e9\n",
                "expected job count",
            ),
            ("[bogus]\nx = 1\n", "unknown section"),
        ];
        for (text, _hint) in cases {
            assert!(
                ScenarioSpec::parse(text).is_err(),
                "should reject: {text:?}"
            );
        }
    }

    #[test]
    fn error_messages_name_the_section() {
        let err = ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\nprocs = 4\nhorizon_hours = 1.0\n\
             [[tenant]]\nname = \"a\"\nusers = 1\nrate_per_hour = 1.0\nuser_skew = 99\n",
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("tenant \"a\""), "{msg}");
        assert!(msg.contains("user_skew"), "{msg}");
    }
}
