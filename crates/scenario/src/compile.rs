//! Deterministic scenario compilation.
//!
//! [`compile`] turns a validated [`ScenarioSpec`] plus a seed into:
//!
//! * a [`workload::JobTrace`] (and its SWF text, via [`swf_text`]) with
//!   per-tenant user-id ranges recorded as SWF header comments, and
//! * a [`LoadProfile`] whose phase histogram mirrors the compiled arrival
//!   process, for open-loop serve replay.
//!
//! Compilation is a **pure function** of `(spec, seed)`: every tenant gets
//! its own RNG stream seeded from `(seed, tenant index)`, arrivals use
//! Lewis thinning against an inhomogeneous rate
//! `λ(t) = rate × diurnal(t) × event_multiplier(t)`, and all containers
//! are `Vec`s, so the same inputs always produce byte-identical artifacts.
//! A property test in `tests/` holds this invariant.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use swf::SwfHeader;
use workload::distributions::{calibrate_mean, Exponential, LogNormal, Sample, Zipf};
use workload::synthetic::{canonical_estimate, daily_cycle_weight};
use workload::{Job, JobTrace, TraceError};

use crate::profile::{LoadProfile, TenantShare};
use crate::spec::{ArrivalKind, ScenarioSpec, TenantSpec};

/// Number of buckets in the compiled [`LoadProfile`] phase histogram.
pub const PROFILE_PHASES: usize = 16;

/// Peak of the shared diurnal weight (`1 + 0.8·cos`), used as the thinning
/// envelope.
const DIURNAL_PEAK: f64 = 1.8;

/// Maximum runtime/estimate, matching the canonical walltime grid.
const MAX_RUNTIME_S: f64 = 432_000.0;

/// A tenant's slice of the global user-id space (`user_lo..user_hi`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRange {
    /// Tenant name.
    pub name: String,
    /// First user id owned by the tenant (inclusive).
    pub user_lo: u32,
    /// One past the last user id owned by the tenant (exclusive).
    pub user_hi: u32,
}

impl TenantRange {
    /// Whether `user` belongs to this tenant.
    pub fn contains(&self, user: u32) -> bool {
        (self.user_lo..self.user_hi).contains(&user)
    }
}

/// The compiled artifacts of one `(spec, seed)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Compiled {
    /// Seed the scenario was compiled with.
    pub seed: u64,
    /// The synthetic trace (jobs sorted by submit time, ids 1..n).
    pub trace: JobTrace,
    /// Disjoint per-tenant user-id ranges, in spec order.
    pub tenants: Vec<TenantRange>,
    /// Open-loop replay profile mirroring the arrival shape.
    pub profile: LoadProfile,
}

impl Compiled {
    /// Tenant index owning `user`, if any.
    pub fn tenant_of(&self, user: u32) -> Option<usize> {
        self.tenants.iter().position(|t| t.contains(user))
    }
}

/// A compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The generated jobs did not form a valid trace (a bug, surfaced
    /// rather than panicking).
    Trace(TraceError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Trace(e) => write!(f, "compiled trace invalid: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// SplitMix64-style stream split so each tenant (and each sampler within a
/// tenant) gets an independent deterministic seed.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sample a processor count: serial with `serial_prob`, otherwise
/// log₂-uniform over `[0, hi]` with power-of-two snapping. The same shape
/// as the calibrated synthetic generator, so scenario traces look like
/// archive logs.
fn sample_size<R: Rng + ?Sized>(t: &TenantSpec, hi: f64, procs: u32, rng: &mut R) -> u32 {
    if procs <= 1 || rng.random::<f64>() < t.serial_prob {
        return 1;
    }
    let u: f64 = rng.random::<f64>() * hi;
    let raw = 2f64.powf(u).round().max(2.0);
    let size = if rng.random::<f64>() < t.pow2_prob {
        2f64.powf(u.round())
    } else {
        raw
    };
    (size as u32).clamp(1, procs)
}

/// Calibrate the log₂ cut so the mean sampled size hits the tenant target.
fn calibrate_size_cut(t: &TenantSpec, procs: u32, seed: u64) -> f64 {
    let log2max = (procs as f64).log2();
    if procs <= 1 || log2max <= 0.1 {
        return 0.1;
    }
    calibrate_mean(0.1, log2max, t.mean_procs, 0.01, |hi| {
        let mut rng = StdRng::seed_from_u64(seed);
        const PROBE: usize = 4096;
        (0..PROBE)
            .map(|_| sample_size(t, hi, procs, &mut rng) as f64)
            .sum::<f64>()
            / PROBE as f64
    })
}

/// One tenant's arrival times via Lewis thinning of an inhomogeneous
/// Poisson process, plus bursty submission campaigns.
fn tenant_arrivals(spec: &ScenarioSpec, t: &TenantSpec, rng: &mut StdRng) -> Vec<f64> {
    let base = t.rate_per_hour / 3600.0;
    let diurnal = t.arrival == ArrivalKind::Diurnal;
    let envelope =
        base * if diurnal { DIURNAL_PEAK } else { 1.0 } * spec.max_event_multiplier(&t.name);
    debug_assert!(envelope > 0.0);
    let candidate_gap = Exponential::with_mean(1.0 / envelope);
    let burst_len = Exponential::with_mean(t.burst_mean);

    let mut arrivals = Vec::new();
    let mut now = 0.0_f64;
    loop {
        now += candidate_gap.sample(rng).max(1e-9);
        if now >= spec.horizon_s {
            break;
        }
        let lambda =
            base * if diurnal {
                daily_cycle_weight(now)
            } else {
                1.0
            } * spec.event_multiplier(now, &t.name);
        // Thinning: always draw the acceptance variate so the candidate
        // stream (and thus every downstream sample) is seed-stable.
        let accept = rng.random::<f64>() * envelope < lambda;
        if !accept {
            continue;
        }
        arrivals.push(now);
        if t.arrival == ArrivalKind::Bursty && rng.random::<f64>() < t.burst_prob {
            // A campaign: the same user script firing jobs back to back.
            let extra = 1 + burst_len.sample(rng).round() as usize;
            for k in 1..=extra {
                let s = now + k as f64;
                if s < spec.horizon_s {
                    arrivals.push(s);
                }
            }
        }
    }
    arrivals
}

/// Compile a scenario. Pure in `(spec, seed)`.
pub fn compile(spec: &ScenarioSpec, seed: u64) -> Result<Compiled, CompileError> {
    // Disjoint user-id ranges, in spec order.
    let mut tenants = Vec::with_capacity(spec.tenants.len());
    let mut next_user = 0u64;
    for t in &spec.tenants {
        tenants.push(TenantRange {
            name: t.name.clone(),
            user_lo: next_user as u32,
            user_hi: (next_user + t.users) as u32,
        });
        next_user += t.users;
    }

    // (submit, tenant index, job fields) across all tenants.
    let mut pending: Vec<(f64, usize, Job)> = Vec::new();
    let mut per_tenant_jobs = vec![0u64; spec.tenants.len()];
    for (ti, t) in spec.tenants.iter().enumerate() {
        let tseed = mix(seed, ti as u64 + 1);
        let mut rng = StdRng::seed_from_u64(tseed);
        let arrivals = tenant_arrivals(spec, t, &mut rng);
        per_tenant_jobs[ti] = arrivals.len() as u64;

        let hi = calibrate_size_cut(t, spec.procs, mix(tseed, 0x5157));
        let runtime_dist = LogNormal::with_mean(t.mean_runtime_s, t.runtime_sigma);
        let overest_dist = LogNormal::with_mean((t.overest - 1.0).max(0.01), 0.9);
        let zipf = Zipf::new(t.users as usize, t.user_skew);
        let range = &tenants[ti];

        for submit in arrivals {
            let procs = sample_size(t, hi, spec.procs, &mut rng);
            let runtime = runtime_dist.sample(&mut rng).clamp(10.0, MAX_RUNTIME_S);
            let estimate = canonical_estimate(runtime * (1.0 + overest_dist.sample(&mut rng)));
            let user = range.user_lo + zipf.sample(&mut rng) as u32;
            pending.push((
                submit,
                ti,
                Job {
                    id: 0, // assigned after the global merge sort
                    submit,
                    runtime: runtime.min(estimate),
                    estimate,
                    procs,
                    user,
                    queue: ti as u32,
                },
            ));
        }
    }

    // Merge tenant streams; ids follow global submit order so the SWF file
    // reads like a real chronological log.
    pending.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let jobs: Vec<Job> = pending
        .iter()
        .enumerate()
        .map(|(i, (_, _, j))| Job {
            id: i as u64 + 1,
            ..*j
        })
        .collect();

    let profile = build_profile(spec, seed, &jobs, &per_tenant_jobs);
    let trace = JobTrace::new(&spec.name, spec.procs, jobs).map_err(CompileError::Trace)?;

    Ok(Compiled {
        seed,
        trace,
        tenants,
        profile,
    })
}

/// Build the replay profile: phase histogram from the compiled arrivals,
/// tenant weights from realized job shares.
fn build_profile(
    spec: &ScenarioSpec,
    seed: u64,
    jobs: &[Job],
    per_tenant_jobs: &[u64],
) -> LoadProfile {
    let mut counts = [0u64; PROFILE_PHASES];
    for j in jobs {
        let idx = ((j.submit / spec.horizon_s) * PROFILE_PHASES as f64) as usize;
        counts[idx.min(PROFILE_PHASES - 1)] += 1;
    }
    let total = jobs.len() as f64;
    let phases: Vec<f64> = if total == 0.0 {
        vec![1.0; PROFILE_PHASES]
    } else {
        counts
            .iter()
            .map(|&c| c as f64 * PROFILE_PHASES as f64 / total)
            .collect()
    };

    let tenant_total: u64 = per_tenant_jobs.iter().sum();
    let tenants: Vec<TenantShare> = spec
        .tenants
        .iter()
        .zip(per_tenant_jobs)
        .map(|(t, &n)| TenantShare {
            name: t.name.clone(),
            weight: if tenant_total == 0 {
                1.0 / spec.tenants.len() as f64
            } else {
                n as f64 / tenant_total as f64
            },
        })
        .collect();

    LoadProfile {
        name: spec.name.clone(),
        qps: spec.replay.qps,
        secs: spec.replay.secs,
        conns: spec.replay.conns,
        seed,
        phases,
        tenants,
    }
}

/// Serialize a compiled scenario to SWF text, with the tenant ranges and
/// the compile seed recorded as header comments so the file is
/// self-describing (`Tenant: <name> <lo> <hi>` round-trips through
/// [`tenant_ranges_from_header`]).
pub fn swf_text(c: &Compiled) -> String {
    let mut swf = c.trace.to_swf();
    swf.header
        .absorb_comment(&format!(" ScenarioSeed: {}", c.seed));
    for t in &c.tenants {
        swf.header
            .absorb_comment(&format!(" Tenant: {} {} {}", t.name, t.user_lo, t.user_hi));
    }
    swf.to_swf_string()
}

/// Recover tenant ranges from the `Tenant:` header comments of a compiled
/// SWF file. Tenant names may contain spaces; the last two tokens are the
/// id range.
pub fn tenant_ranges_from_header(header: &SwfHeader) -> Vec<TenantRange> {
    let mut out = Vec::new();
    for line in &header.raw_lines {
        let Some(rest) = line.trim().strip_prefix("Tenant:") else {
            continue;
        };
        let mut toks: Vec<&str> = rest.split_whitespace().collect();
        if toks.len() < 3 {
            continue;
        }
        let (Ok(hi), Ok(lo)) = (
            toks.pop().unwrap().parse::<u32>(),
            toks.pop().unwrap().parse::<u32>(),
        ) else {
            continue;
        };
        if lo >= hi {
            continue;
        }
        out.push(TenantRange {
            name: toks.join(" "),
            user_lo: lo,
            user_hi: hi,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;
    use swf::SwfTrace;

    const SPEC: &str = r#"
[scenario]
name = "two-tenant"
procs = 128
horizon_hours = 3.0

[[tenant]]
name = "batch"
users = 50
rate_per_hour = 400.0
arrival = "diurnal"
mean_procs = 16.0

[[tenant]]
name = "interactive"
users = 2000
rate_per_hour = 150.0
arrival = "bursty"
mean_runtime_s = 300.0
mean_procs = 2.0

[[event]]
kind = "flash_crowd"
tenant = "interactive"
start_hours = 1.0
duration_hours = 0.25
multiplier = 6.0

[[event]]
kind = "drain"
start_hours = 2.5
duration_hours = 0.5
"#;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::parse(SPEC).unwrap()
    }

    #[test]
    fn compile_is_deterministic() {
        let s = spec();
        let a = compile(&s, 7).unwrap();
        let b = compile(&s, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(swf_text(&a), swf_text(&b));
        assert_eq!(a.profile.to_toml(), b.profile.to_toml());
        let c = compile(&s, 8).unwrap();
        assert_ne!(a.trace.jobs, c.trace.jobs);
    }

    #[test]
    fn job_count_tracks_expected_rate() {
        let s = spec();
        let c = compile(&s, 1).unwrap();
        // Expected ≈ (400 + 150) × 3 plus the flash crowd and bursts, minus
        // the drain; just check the order of magnitude is right.
        let n = c.trace.len() as f64;
        assert!(n > 800.0 && n < 4000.0, "job count {n}");
    }

    #[test]
    fn tenants_get_disjoint_users_and_queue_ids() {
        let s = spec();
        let c = compile(&s, 2).unwrap();
        assert_eq!(c.tenants.len(), 2);
        assert_eq!(c.tenants[0].user_lo, 0);
        assert_eq!(c.tenants[0].user_hi, 50);
        assert_eq!(c.tenants[1].user_lo, 50);
        assert_eq!(c.tenants[1].user_hi, 2050);
        for j in &c.trace.jobs {
            let ti = c.tenant_of(j.user).expect("job user in a tenant range");
            assert_eq!(j.queue, ti as u32, "queue encodes tenant");
        }
        // Both tenants actually submitted.
        assert!(c.trace.jobs.iter().any(|j| j.queue == 0));
        assert!(c.trace.jobs.iter().any(|j| j.queue == 1));
    }

    #[test]
    fn drain_suppresses_all_submissions() {
        let s = spec();
        let c = compile(&s, 3).unwrap();
        let drained = c
            .trace
            .jobs
            .iter()
            .filter(|j| j.submit >= 2.5 * 3600.0 && j.submit < 3.0 * 3600.0)
            // Campaign follow-ups from a burst that started before the
            // drain may land a few seconds inside it.
            .filter(|j| j.submit >= 2.5 * 3600.0 + 60.0)
            .count();
        assert_eq!(drained, 0, "no submissions during the drain window");
    }

    #[test]
    fn flash_crowd_raises_the_target_tenant_rate() {
        let s = spec();
        let c = compile(&s, 4).unwrap();
        let window = |lo: f64, hi: f64| {
            c.trace
                .jobs
                .iter()
                .filter(|j| j.queue == 1 && j.submit >= lo * 3600.0 && j.submit < hi * 3600.0)
                .count() as f64
        };
        let crowd = window(1.0, 1.25) / 0.25;
        let before = window(0.0, 1.0) / 1.0;
        assert!(
            crowd > 3.0 * before,
            "flash crowd rate {crowd}/h vs baseline {before}/h"
        );
    }

    #[test]
    fn swf_text_roundtrips_tenants_and_jobs() {
        let s = spec();
        let c = compile(&s, 5).unwrap();
        let text = swf_text(&c);
        let parsed = SwfTrace::parse(&text).unwrap();
        assert_eq!(parsed.machine_procs(), Some(128));
        let ranges = tenant_ranges_from_header(&parsed.header);
        assert_eq!(ranges, c.tenants);
        let back = JobTrace::from_swf(&s.name, &parsed).unwrap();
        assert_eq!(back.len(), c.trace.len());
        // Writing the parsed trace again is byte-identical (stable text).
        assert_eq!(parsed.to_swf_string(), text);
    }

    #[test]
    fn profile_mirrors_arrival_shape() {
        let s = spec();
        let c = compile(&s, 6).unwrap();
        let p = &c.profile;
        assert_eq!(p.phases.len(), PROFILE_PHASES);
        let mean: f64 = p.phases.iter().sum::<f64>() / PROFILE_PHASES as f64;
        assert!((mean - 1.0).abs() < 1e-9, "phase mean {mean}");
        // The flash-crowd bucket (hour 1.0–1.25 of 3 h → bucket 5) beats
        // the drained tail bucket.
        assert!(p.phases[5] > *p.phases.last().unwrap());
        let wsum: f64 = p.tenants.iter().map(|t| t.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
        p.validate().unwrap();
    }

    #[test]
    fn jobs_are_valid_for_the_machine() {
        let s = spec();
        let c = compile(&s, 9).unwrap();
        for j in &c.trace.jobs {
            assert!(j.procs >= 1 && j.procs <= 128);
            assert!(j.runtime >= 10.0 && j.estimate >= j.runtime);
            assert!(j.submit >= 0.0 && j.submit < s.horizon_s);
        }
    }
}
