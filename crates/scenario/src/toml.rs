//! A minimal TOML subset parser for scenario specs and load profiles.
//!
//! The allowed dependency set has no TOML crate (and the workspace `serde`
//! is a no-op dev stub), so this module implements the fragment the
//! scenario grammar needs, from scratch:
//!
//! * `key = value` pairs with bare keys;
//! * basic strings (`"..."` with `\"`, `\\`, `\n`, `\t` escapes);
//! * integers, floats, booleans;
//! * flat arrays of scalars (`[1, 2.5, "x"]`);
//! * `[table]` and `[[array-of-tables]]` headers;
//! * `#` comments and blank lines.
//!
//! Parsing is strict: anything outside this fragment is a
//! [`TomlError`] with a line number, not a silent skip — a typo in a
//! scenario spec must fail `scenario validate`, not compile to an empty
//! workload.

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A flat array of scalars.
    Array(Vec<Value>),
}

impl Value {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer content, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A table: key/value pairs in file order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    /// Entries in the order they appeared.
    pub entries: Vec<(String, Value)>,
    /// Line of the table header (0 for the root table).
    pub line: usize,
}

impl Table {
    /// Look a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The keys present, in file order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }
}

/// One `[name]` or `[[name]]` section.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Header path (dots are kept verbatim; the scenario grammar only uses
    /// single-segment names).
    pub path: String,
    /// Whether the header was `[[...]]` (array of tables).
    pub array: bool,
    /// The section body.
    pub table: Table,
}

/// A parsed document: a root table plus the sections in file order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Doc {
    /// Keys before the first section header.
    pub root: Table,
    /// Sections in file order.
    pub sections: Vec<Section>,
}

impl Doc {
    /// Parse a document.
    pub fn parse(text: &str) -> Result<Doc, TomlError> {
        let mut doc = Doc::default();
        let mut current: Option<Section> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw, lineno)?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("[[") {
                let Some(name) = rest.strip_suffix("]]") else {
                    return Err(TomlError::new(lineno, "unterminated [[table]] header"));
                };
                let name = check_header_name(name, lineno)?;
                if let Some(done) = current.replace(Section {
                    path: name,
                    array: true,
                    table: Table {
                        entries: Vec::new(),
                        line: lineno,
                    },
                }) {
                    doc.sections.push(done);
                }
            } else if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(TomlError::new(lineno, "unterminated [table] header"));
                };
                let name = check_header_name(name, lineno)?;
                if let Some(done) = current.replace(Section {
                    path: name,
                    array: false,
                    table: Table {
                        entries: Vec::new(),
                        line: lineno,
                    },
                }) {
                    doc.sections.push(done);
                }
            } else {
                let Some((key, value)) = line.split_once('=') else {
                    return Err(TomlError::new(
                        lineno,
                        format!("expected `key = value`, got {line:?}"),
                    ));
                };
                let key = key.trim();
                if key.is_empty()
                    || !key
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    return Err(TomlError::new(lineno, format!("invalid key {key:?}")));
                }
                let value = parse_value(value.trim(), lineno)?;
                let table = current
                    .as_mut()
                    .map(|s| &mut s.table)
                    .unwrap_or(&mut doc.root);
                if table.get(key).is_some() {
                    return Err(TomlError::new(lineno, format!("duplicate key {key:?}")));
                }
                table.entries.push((key.to_string(), value));
            }
        }
        if let Some(done) = current {
            doc.sections.push(done);
        }
        Ok(doc)
    }

    /// The first non-array `[name]` section.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.sections
            .iter()
            .find(|s| !s.array && s.path == name)
            .map(|s| &s.table)
    }

    /// Every `[[name]]` section body, in file order.
    pub fn array(&self, name: &str) -> Vec<&Table> {
        self.sections
            .iter()
            .filter(|s| s.array && s.path == name)
            .map(|s| &s.table)
            .collect()
    }

    /// All distinct section paths (for unknown-section validation).
    pub fn section_paths(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|s| s.path.as_str())
    }
}

/// A syntax error with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl TomlError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        TomlError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

/// Strip a trailing `#` comment, honouring string quoting.
fn strip_comment(line: &str, lineno: usize) -> Result<&str, TomlError> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return Ok(&line[..i]),
            _ => {}
        }
    }
    if in_string {
        return Err(TomlError::new(lineno, "unterminated string"));
    }
    Ok(line)
}

fn check_header_name(name: &str, lineno: usize) -> Result<String, TomlError> {
    let name = name.trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
    {
        return Err(TomlError::new(
            lineno,
            format!("invalid table name {name:?}"),
        ));
    }
    Ok(name.to_string())
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, TomlError> {
    if text.is_empty() {
        return Err(TomlError::new(lineno, "missing value"));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let (s, tail) = parse_string(rest, lineno)?;
        if !tail.trim().is_empty() {
            return Err(TomlError::new(
                lineno,
                format!("trailing characters after string: {tail:?}"),
            ));
        }
        return Ok(Value::Str(s));
    }
    if let Some(rest) = text.strip_prefix('[') {
        let Some(body) = rest.strip_suffix(']') else {
            return Err(TomlError::new(lineno, "unterminated array"));
        };
        let mut items = Vec::new();
        for part in split_array_items(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let v = parse_value(part, lineno)?;
            if matches!(v, Value::Array(_)) {
                return Err(TomlError::new(lineno, "nested arrays are not supported"));
            }
            items.push(v);
        }
        return Ok(Value::Array(items));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    // TOML allows `1_000_000`; strip separators before numeric parsing.
    let digits = text.replace('_', "");
    if !text.starts_with('_') && !text.ends_with('_') && !digits.is_empty() {
        if let Ok(i) = digits.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(f) = digits.parse::<f64>() {
            if f.is_finite() {
                return Ok(Value::Float(f));
            }
        }
    }
    Err(TomlError::new(lineno, format!("invalid value {text:?}")))
}

/// Parse the remainder of a basic string (after the opening quote).
/// Returns the unescaped content and the text after the closing quote.
fn parse_string(rest: &str, lineno: usize) -> Result<(String, &str), TomlError> {
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &rest[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, other)) => {
                    return Err(TomlError::new(
                        lineno,
                        format!("unsupported escape \\{other}"),
                    ))
                }
                None => return Err(TomlError::new(lineno, "dangling escape")),
            },
            other => out.push(other),
        }
    }
    Err(TomlError::new(lineno, "unterminated string"))
}

/// Split array body on top-level commas (strings may contain commas).
fn split_array_items(body: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            ',' if !in_string => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&body[start..]);
    items
}

/// Escape a string for emission as a TOML basic string.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_and_arrays_of_tables() {
        let doc = Doc::parse(
            r#"
# top comment
top = 1

[scenario]
name = "flash-crowd"  # trailing comment
procs = 256
horizon_hours = 24.0

[[tenant]]
name = "batch"
users = 1_000_000

[[tenant]]
name = "interactive"
rate_per_hour = 0.5
"#,
        )
        .unwrap();
        assert_eq!(doc.root.get("top"), Some(&Value::Int(1)));
        let s = doc.table("scenario").unwrap();
        assert_eq!(s.get("name").unwrap().as_str(), Some("flash-crowd"));
        assert_eq!(s.get("procs").unwrap().as_i64(), Some(256));
        assert_eq!(s.get("horizon_hours").unwrap().as_f64(), Some(24.0));
        let tenants = doc.array("tenant");
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].get("users").unwrap().as_i64(), Some(1_000_000));
        assert_eq!(tenants[1].get("rate_per_hour").unwrap().as_f64(), Some(0.5));
    }

    #[test]
    fn parses_scalars_and_arrays() {
        let doc = Doc::parse("a = true\nb = \"x # not a comment\"\nc = [1, 2.5, \"z\"]\n").unwrap();
        assert_eq!(doc.root.get("a").unwrap().as_bool(), Some(true));
        assert_eq!(
            doc.root.get("b").unwrap().as_str(),
            Some("x # not a comment")
        );
        match doc.root.get("c").unwrap() {
            Value::Array(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[1].as_f64(), Some(2.5));
                assert_eq!(items[2].as_str(), Some("z"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_syntax_errors_with_line_numbers() {
        for (text, line) in [
            ("a = \n", 1),
            ("[unterminated\n", 1),
            ("a = 1\nnot a pair\n", 2),
            ("a = \"unterminated\n", 1),
            ("a = 1\na = 2\n", 2),
            ("9bad key = 1 1\n", 1),
        ] {
            let err = Doc::parse(text).unwrap_err();
            assert_eq!(err.line, line, "{text:?} -> {err}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote \" slash \\ nl \n tab \t done";
        let text = format!("k = {}\n", escape(s));
        let doc = Doc::parse(&text).unwrap();
        assert_eq!(doc.root.get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn duplicate_sections_accumulate_only_for_arrays() {
        let doc = Doc::parse("[a]\nx = 1\n[[b]]\ny = 1\n[[b]]\ny = 2\n").unwrap();
        assert_eq!(doc.table("a").unwrap().get("x").unwrap().as_i64(), Some(1));
        assert_eq!(doc.array("b").len(), 2);
        assert!(doc.table("b").is_none());
    }
}
