//! Property tests: SWF records and traces survive serialization
//! round-trips for arbitrary field values.

use proptest::prelude::*;
use swf::{parse_line, SwfRecord, SwfTrace};

fn record_strategy() -> impl Strategy<Value = SwfRecord> {
    (
        (
            1u64..1_000_000,
            -1i64..10_000_000,
            -1i64..1_000_000,
            -1i64..1_000_000,
        ),
        (-1i64..100_000, -1i64..100_000, -1i64..1_000_000),
        (-1i64..10_000, -1i64..10_000, -1i64..100, -1i64..100),
        (-1i64..1000, -1i64..100_000, -1i64..100_000),
    )
        .prop_map(
            |(
                (job_id, submit, wait, run),
                (alloc, req_procs, req_time),
                (user, group, exec, queue),
                (partition, preceding, think),
            )| {
                SwfRecord {
                    job_id,
                    submit_time: submit,
                    wait_time: wait,
                    run_time: run,
                    allocated_procs: alloc,
                    avg_cpu_time: -1.0,
                    used_memory: -1.0,
                    requested_procs: req_procs,
                    requested_time: req_time,
                    requested_memory: -1.0,
                    status: 1,
                    user_id: user,
                    group_id: group,
                    executable: exec,
                    queue,
                    partition,
                    preceding_job: preceding,
                    think_time: think,
                }
            },
        )
}

proptest! {
    #[test]
    fn record_roundtrips(rec in record_strategy()) {
        let trace = SwfTrace { header: Default::default(), records: vec![rec] };
        let text = trace.to_swf_string();
        let back = SwfTrace::parse(&text).unwrap();
        prop_assert_eq!(back.records[0], rec);
    }

    #[test]
    fn trace_roundtrips(records in prop::collection::vec(record_strategy(), 0..30)) {
        let trace = SwfTrace { header: Default::default(), records };
        let back = SwfTrace::parse(&trace.to_swf_string()).unwrap();
        prop_assert_eq!(back.records, trace.records);
    }

    /// Whitespace variations never change the parsed record.
    #[test]
    fn whitespace_insensitive(rec in record_strategy(), pad in 1usize..5) {
        let line = {
            let trace = SwfTrace { header: Default::default(), records: vec![rec] };
            trace.to_swf_string().trim().to_string()
        };
        let spaced = line.split_whitespace().collect::<Vec<_>>().join(&" ".repeat(pad));
        prop_assert_eq!(parse_line(&spaced).unwrap(), rec);
    }

    /// Arbitrary garbage never panics the parser — it errors or parses.
    #[test]
    fn parser_never_panics(line in "[ -~]{0,120}") {
        let _ = parse_line(&line);
        let _ = SwfTrace::parse(&line);
    }
}
