//! SWF header metadata extracted from `;`-comment lines.

use serde::{Deserialize, Serialize};

/// Metadata from SWF header comments (`; Key: Value`).
///
/// Only the keys that matter for simulation are parsed into typed fields;
/// every header line is also kept verbatim in [`SwfHeader::raw_lines`] so a
/// trace can be written back without losing provenance comments.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SwfHeader {
    /// `Computer:` — free-text machine description.
    pub computer: Option<String>,
    /// `MaxJobs:` — number of jobs in the log.
    pub max_jobs: Option<u64>,
    /// `MaxNodes:` — node count of the machine.
    pub max_nodes: Option<u32>,
    /// `MaxProcs:` — processor count of the machine.
    pub max_procs: Option<u32>,
    /// `UnixStartTime:` — epoch seconds of the first record.
    pub unix_start_time: Option<i64>,
    /// All header comment lines verbatim (without the leading `;`).
    pub raw_lines: Vec<String>,
}

impl SwfHeader {
    /// Ingest one comment line (the text after the leading `;`).
    pub fn absorb_comment(&mut self, rest: &str) {
        let rest = rest.trim();
        self.raw_lines.push(rest.to_string());
        let Some((key, value)) = rest.split_once(':') else {
            return;
        };
        let value = value.trim();
        match key.trim() {
            "Computer" => self.computer = Some(value.to_string()),
            "MaxJobs" => self.max_jobs = value.parse().ok(),
            "MaxNodes" => self.max_nodes = value.parse().ok(),
            "MaxProcs" => self.max_procs = value.parse().ok(),
            "UnixStartTime" => self.unix_start_time = value.parse().ok(),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbs_known_keys() {
        let mut h = SwfHeader::default();
        h.absorb_comment(" MaxProcs: 338");
        h.absorb_comment(" Computer: IBM SP2 ");
        h.absorb_comment(" Note without colon-value structure maybe");
        assert_eq!(h.max_procs, Some(338));
        assert_eq!(h.computer.as_deref(), Some("IBM SP2"));
        assert_eq!(h.raw_lines.len(), 3);
    }

    #[test]
    fn unparsable_value_is_none() {
        let mut h = SwfHeader::default();
        h.absorb_comment("MaxJobs: lots");
        assert_eq!(h.max_jobs, None);
    }
}
