//! The 18-field SWF job record.

use serde::{Deserialize, Serialize};

/// One job record: the 18 standard SWF fields.
///
/// Field semantics follow the Parallel Workloads Archive definition. Values
/// of `-1` mean "unknown/not collected" and are preserved verbatim so that
/// traces round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwfRecord {
    /// 1: job number, usually sequential from 1.
    pub job_id: u64,
    /// 2: submit time in seconds relative to the trace start.
    pub submit_time: i64,
    /// 3: wait time in seconds (as recorded by the original system).
    pub wait_time: i64,
    /// 4: actual run time in seconds.
    pub run_time: i64,
    /// 5: number of allocated processors.
    pub allocated_procs: i64,
    /// 6: average CPU time used per processor.
    pub avg_cpu_time: f64,
    /// 7: average memory used per processor (KB).
    pub used_memory: f64,
    /// 8: requested number of processors.
    pub requested_procs: i64,
    /// 9: requested (estimated) run time in seconds.
    pub requested_time: i64,
    /// 10: requested memory per processor (KB).
    pub requested_memory: f64,
    /// 11: completion status (1 = completed, 0 = failed, 5 = cancelled, ...).
    pub status: i64,
    /// 12: user id.
    pub user_id: i64,
    /// 13: group id.
    pub group_id: i64,
    /// 14: executable (application) number.
    pub executable: i64,
    /// 15: queue number.
    pub queue: i64,
    /// 16: partition number.
    pub partition: i64,
    /// 17: preceding job number (dependency), or -1.
    pub preceding_job: i64,
    /// 18: think time from preceding job, or -1.
    pub think_time: i64,
}

impl Default for SwfRecord {
    fn default() -> Self {
        SwfRecord {
            job_id: 0,
            submit_time: 0,
            wait_time: -1,
            run_time: -1,
            allocated_procs: -1,
            avg_cpu_time: -1.0,
            used_memory: -1.0,
            requested_procs: -1,
            requested_time: -1,
            requested_memory: -1.0,
            status: 1,
            user_id: -1,
            group_id: -1,
            executable: -1,
            queue: -1,
            partition: -1,
            preceding_job: -1,
            think_time: -1,
        }
    }
}

impl SwfRecord {
    /// The number of processors this job effectively needs: the requested
    /// count when present, otherwise the allocated count.
    pub fn effective_procs(&self) -> i64 {
        if self.requested_procs > 0 {
            self.requested_procs
        } else {
            self.allocated_procs
        }
    }

    /// The runtime estimate usable for scheduling: the requested time when
    /// present, otherwise the actual run time.
    pub fn effective_estimate(&self) -> i64 {
        if self.requested_time > 0 {
            self.requested_time
        } else {
            self.run_time
        }
    }

    /// Whether the record describes a usable job for simulation: it must
    /// have a positive run time and a positive processor count.
    pub fn is_simulatable(&self) -> bool {
        self.run_time > 0 && self.effective_procs() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_procs_falls_back_to_allocated() {
        let r = SwfRecord {
            requested_procs: -1,
            allocated_procs: 16,
            ..Default::default()
        };
        assert_eq!(r.effective_procs(), 16);
        let r = SwfRecord {
            requested_procs: 8,
            allocated_procs: 16,
            ..Default::default()
        };
        assert_eq!(r.effective_procs(), 8);
    }

    #[test]
    fn effective_estimate_falls_back_to_runtime() {
        let r = SwfRecord {
            requested_time: -1,
            run_time: 100,
            ..Default::default()
        };
        assert_eq!(r.effective_estimate(), 100);
        let r = SwfRecord {
            requested_time: 200,
            run_time: 100,
            ..Default::default()
        };
        assert_eq!(r.effective_estimate(), 200);
    }

    #[test]
    fn simulatable_requires_runtime_and_procs() {
        let ok = SwfRecord {
            run_time: 5,
            requested_procs: 1,
            ..Default::default()
        };
        assert!(ok.is_simulatable());
        let no_rt = SwfRecord {
            run_time: 0,
            requested_procs: 1,
            ..Default::default()
        };
        assert!(!no_rt.is_simulatable());
        let no_procs = SwfRecord {
            run_time: 5,
            requested_procs: -1,
            ..Default::default()
        };
        assert!(!no_procs.is_simulatable());
    }
}
