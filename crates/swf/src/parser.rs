//! Line-level SWF record parsing.

use crate::{SwfError, SwfRecord};

fn int(fields: &[&str], idx: usize) -> Result<i64, SwfError> {
    let token = fields[idx];
    // Some archive logs write integral fields with a decimal point.
    token
        .parse::<i64>()
        .or_else(|_| token.parse::<f64>().map(|f| f as i64))
        .map_err(|_| SwfError::BadField {
            line: 0,
            field: idx + 1,
            token: token.to_string(),
        })
}

fn float(fields: &[&str], idx: usize) -> Result<f64, SwfError> {
    let token = fields[idx];
    token.parse::<f64>().map_err(|_| SwfError::BadField {
        line: 0,
        field: idx + 1,
        token: token.to_string(),
    })
}

/// Parse a single whitespace-separated 18-field SWF record line.
///
/// The caller is responsible for stripping comments and blank lines. The
/// returned error carries `line: 0`; attach the real line number with
/// `SwfError::at_line`.
pub fn parse_line(line: &str) -> Result<SwfRecord, SwfError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() != 18 {
        return Err(SwfError::FieldCount {
            line: 0,
            found: fields.len(),
        });
    }
    Ok(SwfRecord {
        job_id: int(&fields, 0)?.max(0) as u64,
        submit_time: int(&fields, 1)?,
        wait_time: int(&fields, 2)?,
        run_time: int(&fields, 3)?,
        allocated_procs: int(&fields, 4)?,
        avg_cpu_time: float(&fields, 5)?,
        used_memory: float(&fields, 6)?,
        requested_procs: int(&fields, 7)?,
        requested_time: int(&fields, 8)?,
        requested_memory: float(&fields, 9)?,
        status: int(&fields, 10)?,
        user_id: int(&fields, 11)?,
        group_id: int(&fields, 12)?,
        executable: int(&fields, 13)?,
        queue: int(&fields, 14)?,
        partition: int(&fields, 15)?,
        preceding_job: int(&fields, 16)?,
        think_time: int(&fields, 17)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_fields() {
        let r = parse_line("7 100 5 60 4 12.5 1024 4 120 2048 1 9 2 3 1 0 -1 -1").unwrap();
        assert_eq!(r.job_id, 7);
        assert_eq!(r.submit_time, 100);
        assert_eq!(r.wait_time, 5);
        assert_eq!(r.run_time, 60);
        assert_eq!(r.allocated_procs, 4);
        assert!((r.avg_cpu_time - 12.5).abs() < 1e-12);
        assert_eq!(r.requested_procs, 4);
        assert_eq!(r.requested_time, 120);
        assert_eq!(r.user_id, 9);
        assert_eq!(r.queue, 1);
        assert_eq!(r.partition, 0);
    }

    #[test]
    fn accepts_decimal_integers() {
        let r = parse_line("1 0.0 1 60.0 4 -1 -1 4 120 -1 1 1 1 1 1 -1 -1 -1").unwrap();
        assert_eq!(r.run_time, 60);
    }

    #[test]
    fn wrong_field_count_is_error() {
        assert!(matches!(
            parse_line("1 2 3"),
            Err(SwfError::FieldCount { found: 3, .. })
        ));
    }

    #[test]
    fn non_numeric_field_is_error() {
        let e = parse_line("1 abc 1 60 4 -1 -1 4 120 -1 1 1 1 1 1 -1 -1 -1").unwrap_err();
        assert!(matches!(e, SwfError::BadField { field: 2, .. }));
    }
}
