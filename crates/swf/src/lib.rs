//! Parser, writer, and data model for the **Standard Workload Format (SWF)**.
//!
//! SWF is the trace format used by the Parallel Workloads Archive, the source
//! of the job traces evaluated in the SchedInspector paper (SDSC-SP2,
//! CTC-SP2, HPC2N). Each non-comment line carries 18 whitespace-separated
//! fields describing one batch job; header comment lines (`; Key: Value`)
//! describe the machine the trace was collected on.
//!
//! This crate is self-contained: it knows nothing about scheduling. The
//! `workload` crate converts [`SwfRecord`]s into simulation jobs.
//!
//! # Example
//!
//! ```
//! use swf::{SwfRecord, SwfTrace};
//!
//! let text = "\
//! ; MaxNodes: 128
//! ; MaxProcs: 128
//! 1 0 10 3600 4 -1 -1 4 7200 -1 1 1 1 1 1 -1 -1 -1
//! 2 30 5 1800 8 -1 -1 8 1800 -1 1 2 1 1 1 -1 -1 -1
//! ";
//! let trace = SwfTrace::parse(text).unwrap();
//! assert_eq!(trace.records.len(), 2);
//! assert_eq!(trace.header.max_procs, Some(128));
//! assert_eq!(trace.records[0].run_time, 3600);
//! ```

mod error;
mod header;
mod parser;
mod record;
mod writer;

pub use error::SwfError;
pub use header::SwfHeader;
pub use parser::parse_line;
pub use record::SwfRecord;

/// A fully parsed SWF trace: header metadata plus the job records in file
/// order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwfTrace {
    /// Metadata extracted from `;`-comment header lines.
    pub header: SwfHeader,
    /// Job records in the order they appear in the file.
    pub records: Vec<SwfRecord>,
}

impl SwfTrace {
    /// Parse a complete SWF document from a string.
    ///
    /// Comment lines (starting with `;`) feed the header; blank lines are
    /// skipped; every other line must be a valid 18-field record.
    pub fn parse(text: &str) -> Result<Self, SwfError> {
        let mut header = SwfHeader::default();
        let mut records = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix(';') {
                header.absorb_comment(rest);
                continue;
            }
            let rec = parse_line(line).map_err(|e| e.at_line(lineno + 1))?;
            records.push(rec);
        }
        Ok(SwfTrace { header, records })
    }

    /// Read and parse an SWF file from disk.
    pub fn read_file(path: &std::path::Path) -> Result<Self, SwfError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SwfError::Io(format!("{}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Serialize the trace back to SWF text (header comments first).
    pub fn to_swf_string(&self) -> String {
        writer::write_trace(self)
    }

    /// Write the trace to a file in SWF format.
    pub fn write_file(&self, path: &std::path::Path) -> Result<(), SwfError> {
        std::fs::write(path, self.to_swf_string())
            .map_err(|e| SwfError::Io(format!("{}: {e}", path.display())))
    }

    /// Number of processors of the traced machine, preferring `MaxProcs`
    /// over `MaxNodes` (some logs only report one of them).
    pub fn machine_procs(&self) -> Option<u32> {
        self.header.max_procs.or(self.header.max_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Computer: IBM SP2
; MaxJobs: 3
; MaxNodes: 128
; UnixStartTime: 800000000
1 0 10 3600 4 50.0 1024 4 7200 2048 1 5 1 3 2 -1 -1 -1
2 30 5 1800 8 -1 -1 8 1800 -1 1 6 1 3 1 -1 -1 -1
; trailing comment
3 60 0 -1 1 -1 -1 1 600 -1 0 7 1 3 1 -1 -1 -1
";

    #[test]
    fn parses_sample_trace() {
        let t = SwfTrace::parse(SAMPLE).unwrap();
        assert_eq!(t.records.len(), 3);
        assert_eq!(t.header.max_nodes, Some(128));
        assert_eq!(t.header.max_jobs, Some(3));
        assert_eq!(t.header.unix_start_time, Some(800_000_000));
        assert_eq!(t.header.computer.as_deref(), Some("IBM SP2"));
        assert_eq!(t.records[1].job_id, 2);
        assert_eq!(t.records[1].submit_time, 30);
        assert_eq!(t.records[1].requested_procs, 8);
    }

    #[test]
    fn roundtrip_preserves_records() {
        let t = SwfTrace::parse(SAMPLE).unwrap();
        let text = t.to_swf_string();
        let t2 = SwfTrace::parse(&text).unwrap();
        assert_eq!(t.records, t2.records);
        assert_eq!(t.header.max_nodes, t2.header.max_nodes);
    }

    #[test]
    fn machine_procs_prefers_max_procs() {
        let t = SwfTrace::parse("; MaxProcs: 64\n; MaxNodes: 32\n").unwrap();
        assert_eq!(t.machine_procs(), Some(64));
        let t = SwfTrace::parse("; MaxNodes: 32\n").unwrap();
        assert_eq!(t.machine_procs(), Some(32));
    }

    #[test]
    fn rejects_bad_record() {
        let err = SwfTrace::parse("1 2 3\n").unwrap_err();
        assert!(matches!(err, SwfError::FieldCount { .. }));
    }

    #[test]
    fn empty_input_is_empty_trace() {
        let t = SwfTrace::parse("").unwrap();
        assert!(t.records.is_empty());
    }
}
