//! SWF serialization.

use std::fmt::Write as _;

use crate::{SwfRecord, SwfTrace};

fn fmt_float(v: f64) -> String {
    // Unknown markers and integral values print without a fraction so that
    // records round-trip through the integer-tolerant parser.
    if v == v.trunc() {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Format one record as an 18-field SWF line (no trailing newline).
pub fn write_record(r: &SwfRecord) -> String {
    format!(
        "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
        r.job_id,
        r.submit_time,
        r.wait_time,
        r.run_time,
        r.allocated_procs,
        fmt_float(r.avg_cpu_time),
        fmt_float(r.used_memory),
        r.requested_procs,
        r.requested_time,
        fmt_float(r.requested_memory),
        r.status,
        r.user_id,
        r.group_id,
        r.executable,
        r.queue,
        r.partition,
        r.preceding_job,
        r.think_time,
    )
}

/// Serialize a whole trace: header comment lines first, then records.
pub fn write_trace(trace: &SwfTrace) -> String {
    let mut out = String::new();
    for line in &trace.header.raw_lines {
        let _ = writeln!(out, "; {line}");
    }
    for rec in &trace.records {
        let _ = writeln!(out, "{}", write_record(rec));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_line;

    #[test]
    fn record_roundtrips() {
        let r = SwfRecord {
            job_id: 42,
            submit_time: 1000,
            wait_time: 17,
            run_time: 360,
            allocated_procs: 16,
            avg_cpu_time: 33.25,
            requested_procs: 16,
            requested_time: 400,
            user_id: 3,
            queue: 2,
            ..Default::default()
        };
        let line = write_record(&r);
        let back = parse_line(&line).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn unknown_floats_written_as_minus_one() {
        let r = SwfRecord::default();
        let line = write_record(&r);
        assert!(line.contains(" -1 "));
        assert!(!line.contains("-1.0"));
    }
}
