//! Error type for SWF parsing and I/O.

use std::fmt;

/// Errors produced while reading or writing SWF traces.
#[derive(Debug, Clone, PartialEq)]
pub enum SwfError {
    /// A record line did not have exactly 18 fields.
    FieldCount {
        /// 1-based line number (0 when unknown).
        line: usize,
        /// Number of fields actually found.
        found: usize,
    },
    /// A field failed to parse as a number.
    BadField {
        /// 1-based line number (0 when unknown).
        line: usize,
        /// 1-based field index within the record.
        field: usize,
        /// The offending token.
        token: String,
    },
    /// Underlying I/O failure (message includes the path).
    Io(String),
}

impl SwfError {
    /// Attach a 1-based line number to an error created during line parsing.
    pub(crate) fn at_line(mut self, lineno: usize) -> Self {
        match &mut self {
            SwfError::FieldCount { line, .. } | SwfError::BadField { line, .. } => *line = lineno,
            SwfError::Io(_) => {}
        }
        self
    }
}

impl fmt::Display for SwfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwfError::FieldCount { line, found } => {
                write!(f, "line {line}: expected 18 fields, found {found}")
            }
            SwfError::BadField { line, field, token } => {
                write!(f, "line {line}: field {field}: cannot parse {token:?}")
            }
            SwfError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for SwfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SwfError::FieldCount { line: 7, found: 3 };
        assert!(e.to_string().contains("line 7"));
        let e = SwfError::BadField {
            line: 2,
            field: 4,
            token: "xyz".into(),
        };
        assert!(e.to_string().contains("\"xyz\""));
    }

    #[test]
    fn at_line_sets_line() {
        let e = SwfError::FieldCount { line: 0, found: 3 }.at_line(12);
        assert_eq!(e, SwfError::FieldCount { line: 12, found: 3 });
    }
}
