//! Adversarial-sidecar coverage for `obs::report`: real runs die mid-write
//! (torn final line), workers crash with spans open (out-of-order closes),
//! and newer writers emit event kinds this analyzer has never seen. The
//! report must degrade to a warned, `DEGRADED`-marked summary — never
//! panic, never throw the whole file away.

use std::path::PathBuf;

use obs::report::{self, ReportEvent};

fn write_sidecar(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("obs-adversarial-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sidecar.jsonl");
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn truncated_final_line_degrades_gracefully() {
    // A SIGKILL mid-write leaves the last line torn inside a JSON string.
    let path = write_sidecar(
        "truncated",
        concat!(
            "{\"kind\":\"span_open\",\"name\":\"epoch\",\"t\":0.0}\n",
            "{\"kind\":\"counter\",\"name\":\"train.episodes\",\"t\":0.5,\"delta\":16}\n",
            "{\"kind\":\"span_close\",\"name\":\"epoch\",\"t\":1.0,\"dur\":1.0}\n",
            "{\"kind\":\"counter\",\"name\":\"train.epis",
        ),
    );
    // Strict parsing refuses the file outright…
    let err = report::parse_sidecar(&path).expect_err("strict parse fails");
    assert!(err.contains(":4:"), "{err}");
    // …lenient analysis keeps everything before the torn line.
    let r = report::analyze_file_lenient(&path).expect("lenient analysis succeeds");
    assert_eq!(r.malformed_lines, 1);
    assert_eq!(r.events, 3);
    assert_eq!(r.epochs.len(), 1);
    assert_eq!(r.epochs[0].episodes, 16);
    assert_eq!(r.counter_totals["train.episodes"], 16);
    assert!(
        r.warnings.iter().any(|w| w.contains(":4:")),
        "{:?}",
        r.warnings
    );
    let mut text = String::new();
    r.render(&mut text);
    assert!(text.contains("DEGRADED"), "{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn out_of_order_span_close_warns_but_aggregates() {
    // A crashed worker closes `epoch` while `rollout` is still open, then a
    // stray close arrives for a span that was never opened.
    let path = write_sidecar(
        "out-of-order",
        concat!(
            "{\"kind\":\"span_open\",\"name\":\"epoch\",\"t\":0.0}\n",
            "{\"kind\":\"span_open\",\"name\":\"rollout\",\"t\":0.2}\n",
            "{\"kind\":\"span_close\",\"name\":\"epoch\",\"t\":2.0,\"dur\":2.0}\n",
            "{\"kind\":\"span_close\",\"name\":\"ghost\",\"t\":2.5,\"dur\":0.5}\n",
        ),
    );
    let r = report::analyze_file_lenient(&path).expect("analysis succeeds");
    assert_eq!(r.malformed_lines, 0);
    // rollout was implicitly closed by the epoch close; ghost was skipped.
    let epoch = &r.spans.children["epoch"];
    assert_eq!(epoch.count, 1);
    assert!((epoch.children["rollout"].total - 1.8).abs() < 1e-9);
    assert!(!r.spans.children.contains_key("ghost"));
    assert!(
        r.warnings.iter().any(|w| w.contains("implicitly closed")),
        "{:?}",
        r.warnings
    );
    assert!(
        r.warnings.iter().any(|w| w.contains("ghost")),
        "{:?}",
        r.warnings
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_event_kinds_are_skipped_with_warnings() {
    let path = write_sidecar(
        "unknown-kind",
        concat!(
            "{\"kind\":\"counter\",\"name\":\"a\",\"t\":0.1,\"delta\":1}\n",
            "{\"kind\":\"quantum_flux\",\"name\":\"b\",\"t\":0.2,\"value\":3.0}\n",
            "{\"kind\":\"counter\",\"name\":\"a\",\"t\":0.3,\"delta\":2}\n",
        ),
    );
    let r = report::analyze_file_lenient(&path).expect("analysis succeeds");
    assert_eq!(r.malformed_lines, 1);
    assert_eq!(r.counter_totals["a"], 3);
    assert!(
        r.warnings.iter().any(|w| w.contains("quantum_flux")),
        "{:?}",
        r.warnings
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn pure_garbage_sidecar_yields_empty_degraded_report_not_panic() {
    let path = write_sidecar(
        "garbage",
        "\u{0}\u{1}binary junk\nnot json at all\n{\"half\": \n[[[[[[\n",
    );
    let r = report::analyze_file_lenient(&path).expect("analysis succeeds");
    assert_eq!(r.events, 0);
    assert_eq!(r.malformed_lines, 4);
    assert!(r.epochs.is_empty());
    let mut text = String::new();
    r.render(&mut text);
    assert!(text.contains("DEGRADED"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn deeply_nested_junk_line_is_rejected_without_stack_overflow() {
    // The depth-capped JSON parser must turn a 100k-deep line into one
    // malformed-line warning, not a recursion-driven abort.
    let mut deep = String::from("{\"kind\":\"counter\",\"name\":\"a\",\"t\":0.1,\"delta\":1}\n");
    deep.push_str(&"[".repeat(100_000));
    deep.push('\n');
    let path = write_sidecar("deep", &deep);
    let r = report::analyze_file_lenient(&path).expect("analysis succeeds");
    assert_eq!(r.events, 1);
    assert_eq!(r.malformed_lines, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn lenient_and_strict_agree_on_clean_sidecars() {
    let path = write_sidecar(
        "clean",
        concat!(
            "{\"kind\":\"span_open\",\"name\":\"epoch\",\"t\":0.0}\n",
            "{\"kind\":\"heartbeat\",\"name\":\"train\",\"t\":1.0,\"epoch\":0,\"eps\":32.0}\n",
            "{\"kind\":\"span_close\",\"name\":\"epoch\",\"t\":1.0,\"dur\":1.0}\n",
        ),
    );
    let strict: Vec<ReportEvent> = report::parse_sidecar(&path).expect("strict parses");
    let (lenient, malformed) = report::parse_sidecar_lenient(&path).expect("lenient parses");
    assert_eq!(strict, lenient);
    assert!(malformed.is_empty());
    let r = report::analyze_file_lenient(&path).unwrap();
    assert_eq!(r.malformed_lines, 0);
    assert_eq!(r.mean_heartbeat_eps(), Some(32.0));
    let _ = std::fs::remove_file(&path);
}
