//! Injectable time sources.
//!
//! Timeout behaviour (request deadlines, drain paths) is untestable
//! against wall time without sleeps, and sleeps make tests slow *and*
//! flaky. Components that compare "now" against deadlines therefore take
//! an `Arc<dyn Clock>` and express instants as **nanoseconds since the
//! clock's epoch** (`u64` ticks) instead of [`std::time::Instant`], which
//! cannot be fabricated by a test.
//!
//! Two implementations:
//!
//! * [`SystemClock`] — the production impl: a monotonic [`Instant`]
//!   anchored at construction; `now_ns` is one `Instant::elapsed` call.
//! * [`VirtualClock`] — a test impl backed by an `AtomicU64` that only
//!   moves when a test calls [`VirtualClock::advance`]. Deadline logic can
//!   be driven through expiry deterministically, with zero wall-clock
//!   sleeps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source. Instants are nanosecond ticks since the
/// clock's own epoch; ticks from different clocks are not comparable.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed since this clock's epoch. Monotone
    /// non-decreasing.
    fn now_ns(&self) -> u64;
}

/// Ticks for a deadline `ms` milliseconds after `now_ns`, saturating
/// instead of wrapping for absurd inputs (`u64::MAX` ≈ 584 years).
pub fn deadline_after_ms(now_ns: u64, ms: u64) -> u64 {
    now_ns.saturating_add(ms.saturating_mul(1_000_000))
}

/// The production clock: monotonic wall time since construction.
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }

    /// An `Arc<dyn Clock>` handle (the shape components store).
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(Self::new())
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A manually advanced clock for deterministic timeout tests. Time stands
/// still until [`VirtualClock::advance`] (or `set_ns`) moves it.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ns: AtomicU64,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared handle plus its `dyn Clock` view, for handing to a
    /// component while keeping the advance handle.
    pub fn shared() -> (Arc<VirtualClock>, Arc<dyn Clock>) {
        let clock = Arc::new(VirtualClock::new());
        let dynamic: Arc<dyn Clock> = Arc::clone(&clock) as Arc<dyn Clock>;
        (clock, dynamic)
    }

    /// Move time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.advance_ns(d.as_nanos() as u64);
    }

    /// Move time forward by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::SeqCst);
    }

    /// Jump to an absolute tick. Panics (debug) on attempts to move
    /// backwards — a virtual clock must stay monotone like the real one.
    pub fn set_ns(&self, ns: u64) {
        let prev = self.ns.swap(ns, Ordering::SeqCst);
        debug_assert!(prev <= ns, "virtual clock moved backwards: {prev} -> {ns}");
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone_and_moves() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let (vc, clock) = VirtualClock::shared();
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now_ns(), 0);
        vc.advance(Duration::from_millis(5));
        assert_eq!(clock.now_ns(), 5_000_000);
        vc.advance_ns(7);
        assert_eq!(clock.now_ns(), 5_000_007);
        vc.set_ns(6_000_000);
        assert_eq!(clock.now_ns(), 6_000_000);
    }

    #[test]
    fn deadline_arithmetic_saturates() {
        assert_eq!(deadline_after_ms(100, 2), 2_000_100);
        assert_eq!(deadline_after_ms(u64::MAX - 1, 50), u64::MAX);
        assert_eq!(deadline_after_ms(0, u64::MAX), u64::MAX);
    }
}
