//! `obs::trace` — end-to-end request tracing: a per-shard flight
//! recorder with tail-based sampling.
//!
//! Every traced request writes compact [`SpanRecord`]s into a
//! fixed-size per-shard ring (the *flight recorder*) using only atomic
//! stores — wait-free, no locks, no allocation on the hot path — and,
//! like the registry handles, a disabled [`Recorder`] costs a single
//! `Option` branch. Sampling is **tail-based**: the keep/drop decision
//! is made at reply time, when the request's latency and outcome are
//! known, so the ring records everything cheaply and only slow, error
//! or swap-coincident traces are collected out of it and promoted to a
//! sink or journaled to a store.
//!
//! Trace id `0` is reserved and means "unsampled". Span ids derive
//! deterministically from the trace id and span kind via a splitmix64
//! mix ([`span_id`]), so every component — and an offline reader —
//! can compute parent links without coordination: the wire carries only
//! the 64-bit trace id.
//!
//! Each ring slot is a block of plain `AtomicU64`s guarded by a
//! sequence word (seqlock style): a writer claims a position with one
//! `fetch_add`, marks the slot odd, stores the fields, and marks it
//! even. A reader that observes an odd or changed sequence discards the
//! slot — dumps are best-effort snapshots, never blocking writers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// splitmix64 — the same finalizer the simulator's seeding uses; good
/// enough to decorrelate ids and cheap enough for the hot path.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derive a non-zero trace id for request `n` under `seed` (used by
/// loadgen and the chaos harness so the expected id for any request is
/// recomputable without shared state).
pub fn derive_trace_id(seed: u64, n: u64) -> u64 {
    let id = splitmix64(seed ^ splitmix64(n.wrapping_add(1)));
    if id == 0 {
        1
    } else {
        id
    }
}

/// Deterministic span id for (`trace_id`, `kind`). Each kind appears at
/// most once per trace, so the pair is unique; id 0 is avoided so "no
/// parent" stays unambiguous.
pub fn span_id(trace_id: u64, kind: SpanKind) -> u64 {
    let id = splitmix64(trace_id ^ ((kind as u64 + 1) << 56));
    if id == 0 {
        1
    } else {
        id
    }
}

/// Format an id as the 16-hex-digit wire form (`"00cafe..."`).
pub fn hex16(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse a wire trace/span id: 1–16 hex digits. Returns `None` for
/// empty, overlong or non-hex input. Note id 0 parses fine — callers
/// that treat 0 as reserved must check.
pub fn parse_hex16(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// The stage of the request lifecycle a span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SpanKind {
    /// Whole request: server accept → reply written.
    Request = 0,
    /// Time on the shard ring: enqueue → batch formation.
    Queue = 1,
    /// Batch membership: formation → completions handed back.
    Batch = 2,
    /// Model forward for the batch that served this request.
    Forward = 3,
    /// Reply serialization + socket write.
    Write = 4,
    /// Deliberate terminal span for a request that got a typed error
    /// instead of a decision; its status says why.
    Dropped = 5,
}

impl SpanKind {
    /// Stable wire/JSONL name.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Queue => "queue",
            SpanKind::Batch => "batch",
            SpanKind::Forward => "forward",
            SpanKind::Write => "write",
            SpanKind::Dropped => "dropped",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<SpanKind> {
        Some(match s {
            "request" => SpanKind::Request,
            "queue" => SpanKind::Queue,
            "batch" => SpanKind::Batch,
            "forward" => SpanKind::Forward,
            "write" => SpanKind::Write,
            "dropped" => SpanKind::Dropped,
            _ => return None,
        })
    }

    fn from_u8(v: u8) -> Option<SpanKind> {
        Some(match v {
            0 => SpanKind::Request,
            1 => SpanKind::Queue,
            2 => SpanKind::Batch,
            3 => SpanKind::Forward,
            4 => SpanKind::Write,
            5 => SpanKind::Dropped,
            _ => return None,
        })
    }
}

/// Outcome carried by a span (mirrors the serve request ledger).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanStatus {
    Ok = 0,
    DeadlineExceeded = 1,
    Overloaded = 2,
    Draining = 3,
    BadDim = 4,
}

impl SpanStatus {
    /// Stable wire/JSONL name.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::DeadlineExceeded => "deadline_exceeded",
            SpanStatus::Overloaded => "overloaded",
            SpanStatus::Draining => "draining",
            SpanStatus::BadDim => "bad_dim",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<SpanStatus> {
        Some(match s {
            "ok" => SpanStatus::Ok,
            "deadline_exceeded" => SpanStatus::DeadlineExceeded,
            "overloaded" => SpanStatus::Overloaded,
            "draining" => SpanStatus::Draining,
            "bad_dim" => SpanStatus::BadDim,
            _ => return None,
        })
    }

    fn from_u8(v: u8) -> Option<SpanStatus> {
        Some(match v {
            0 => SpanStatus::Ok,
            1 => SpanStatus::DeadlineExceeded,
            2 => SpanStatus::Overloaded,
            3 => SpanStatus::Draining,
            4 => SpanStatus::BadDim,
            _ => return None,
        })
    }
}

/// One compact span: what happened to one trace at one stage, on which
/// shard, under which model generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Wire-propagated trace id (never 0 for a recorded span).
    pub trace_id: u64,
    /// Deterministic id of this span ([`span_id`]).
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_id: u64,
    /// Lifecycle stage.
    pub kind: SpanKind,
    /// Outcome.
    pub status: SpanStatus,
    /// Shard the request was routed to.
    pub shard: u32,
    /// Engine batch sequence linking the N request spans that shared a
    /// batch (0 when the span never reached a batch).
    pub batch_seq: u64,
    /// Generation of the model that (would have) served the request.
    pub model_generation: u64,
    /// Span start, clock ns.
    pub start_ns: u64,
    /// Span end, clock ns.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in integer microseconds (saturating).
    pub fn dur_us(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns) / 1_000
    }

    /// Append this span as one `flight_record` JSONL line — the *same*
    /// shape [`crate::Event::FlightRecord`] writes to a telemetry sidecar,
    /// so journaled traces and sidecar files share one parser. `t` is the
    /// telemetry-relative timestamp (seconds).
    pub fn write_flight_record_json(&self, t: f64, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            r#"{{"kind":"flight_record","name":"{}","t":{t:.9},"trace":"{:016x}","span":"{:016x}","parent":"{:016x}","status":"{}","shard":{},"batch_seq":{},"generation":{},"start_ns":{},"end_ns":{}}}"#,
            self.kind.as_str(),
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.status.as_str(),
            self.shard,
            self.batch_seq,
            self.model_generation,
            self.start_ns,
            self.end_ns,
        );
        out.push('\n');
    }

    /// Reconstruct a span from a parsed `flight_record` JSON object (a
    /// journaled trace line or a telemetry sidecar line). Returns a
    /// description of the first malformed field.
    pub fn from_flight_record_json(v: &crate::json::Json) -> Result<SpanRecord, String> {
        use crate::json::Json;
        if v.get("kind").and_then(Json::as_str) != Some("flight_record") {
            return Err("not a flight_record line".into());
        }
        let hex = |field: &str| -> Result<u64, String> {
            v.get(field)
                .and_then(Json::as_str)
                .and_then(parse_hex16)
                .ok_or_else(|| format!("missing or malformed hex field {field:?}"))
        };
        let num = |field: &str| -> Result<u64, String> {
            v.get(field)
                .and_then(Json::as_f64)
                .map(|x| x as u64)
                .ok_or_else(|| format!("missing numeric field {field:?}"))
        };
        let kind = v
            .get("name")
            .and_then(Json::as_str)
            .and_then(SpanKind::parse)
            .ok_or("missing or unknown span kind in \"name\"")?;
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .and_then(SpanStatus::parse)
            .ok_or("missing or unknown span \"status\"")?;
        Ok(SpanRecord {
            trace_id: hex("trace")?,
            span_id: hex("span")?,
            parent_id: match v.get("parent").and_then(Json::as_str) {
                Some(s) => parse_hex16(s).ok_or("malformed hex field \"parent\"")?,
                None => 0,
            },
            kind,
            status,
            shard: num("shard")? as u32,
            batch_seq: num("batch_seq")?,
            model_generation: num("generation")?,
            start_ns: num("start_ns")?,
            end_ns: num("end_ns")?,
        })
    }
}

/// Seqlock-guarded ring slot. `seq` is 0 while empty, `pos*2+1` while
/// being written, `pos*2+2` once position `pos`'s record is published.
struct Slot {
    seq: AtomicU64,
    trace_id: AtomicU64,
    span_id: AtomicU64,
    parent_id: AtomicU64,
    /// kind | status<<8 | shard<<32, packed.
    meta: AtomicU64,
    batch_seq: AtomicU64,
    generation: AtomicU64,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            span_id: AtomicU64::new(0),
            parent_id: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            batch_seq: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            end_ns: AtomicU64::new(0),
        }
    }
}

/// One shard's flight-recorder ring.
struct Ring {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::empty()).collect(),
        }
    }

    /// Wait-free write: claim a position, publish through the seqlock.
    /// Returns true when the claimed position overwrote an older record.
    fn record(&self, rec: &SpanRecord) -> bool {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(pos % self.slots.len() as u64) as usize];
        slot.seq.store(pos * 2 + 1, Ordering::Release);
        slot.trace_id.store(rec.trace_id, Ordering::Relaxed);
        slot.span_id.store(rec.span_id, Ordering::Relaxed);
        slot.parent_id.store(rec.parent_id, Ordering::Relaxed);
        let meta = rec.kind as u64 | ((rec.status as u64) << 8) | ((rec.shard as u64) << 32);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.batch_seq.store(rec.batch_seq, Ordering::Relaxed);
        slot.generation
            .store(rec.model_generation, Ordering::Relaxed);
        slot.start_ns.store(rec.start_ns, Ordering::Relaxed);
        slot.end_ns.store(rec.end_ns, Ordering::Relaxed);
        slot.seq.store(pos * 2 + 2, Ordering::Release);
        pos >= self.slots.len() as u64
    }

    /// Snapshot one slot; `None` when empty, mid-write, or torn by a
    /// concurrent overwrite.
    fn snapshot(&self, idx: usize) -> Option<SpanRecord> {
        let slot = &self.slots[idx];
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 % 2 == 1 {
            return None;
        }
        let trace_id = slot.trace_id.load(Ordering::Relaxed);
        let span_id = slot.span_id.load(Ordering::Relaxed);
        let parent_id = slot.parent_id.load(Ordering::Relaxed);
        let meta = slot.meta.load(Ordering::Relaxed);
        let batch_seq = slot.batch_seq.load(Ordering::Relaxed);
        let generation = slot.generation.load(Ordering::Relaxed);
        let start_ns = slot.start_ns.load(Ordering::Relaxed);
        let end_ns = slot.end_ns.load(Ordering::Relaxed);
        if slot.seq.load(Ordering::Acquire) != s1 {
            return None; // overwritten while reading
        }
        let kind = SpanKind::from_u8((meta & 0xff) as u8)?;
        let status = SpanStatus::from_u8(((meta >> 8) & 0xff) as u8)?;
        Some(SpanRecord {
            trace_id,
            span_id,
            parent_id,
            kind,
            status,
            shard: (meta >> 32) as u32,
            batch_seq,
            model_generation: generation,
            start_ns,
            end_ns,
        })
    }
}

struct Inner {
    rings: Box<[Ring]>,
    recorded: AtomicU64,
    promoted: AtomicU64,
    overwrites: AtomicU64,
}

/// Counter snapshot for reporting ([`Recorder::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Spans written into the flight recorder.
    pub recorded: u64,
    /// Traces promoted out of the ring (tail-sampled keeps).
    pub promoted: u64,
    /// Ring slots that overwrote an older record — non-zero means the
    /// ring was sized too small for the window you care about.
    pub ring_overwrites: u64,
}

/// The flight recorder handle. Cheap to clone; a disabled recorder
/// (`Recorder::disabled()`, also `Default`) makes every call a single
/// branch on `None`, mirroring the telemetry/registry pattern.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Recorder(disabled)"),
            Some(inner) => f
                .debug_struct("Recorder")
                .field("rings", &inner.rings.len())
                .field("capacity", &inner.rings[0].slots.len())
                .finish(),
        }
    }
}

impl Recorder {
    /// An enabled recorder with `rings` per-shard rings of `capacity`
    /// slots each.
    pub fn new(rings: usize, capacity: usize) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                rings: (0..rings.max(1)).map(|_| Ring::new(capacity)).collect(),
                recorded: AtomicU64::new(0),
                promoted: AtomicU64::new(0),
                overwrites: AtomicU64::new(0),
            })),
        }
    }

    /// The ~0-cost disabled recorder.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether spans are being captured.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record a span into shard `shard`'s ring. Wait-free; a no-op when
    /// disabled or when the span's trace id is 0 (unsampled).
    pub fn record(&self, shard: usize, rec: &SpanRecord) {
        let Some(inner) = &self.inner else { return };
        if rec.trace_id == 0 {
            return;
        }
        let ring = &inner.rings[shard % inner.rings.len()];
        let overwrote = ring.record(rec);
        inner.recorded.fetch_add(1, Ordering::Relaxed);
        if overwrote {
            inner.overwrites.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count a promoted trace (the caller decides promotion; this only
    /// maintains the counter).
    pub fn note_promoted(&self) {
        if let Some(inner) = &self.inner {
            inner.promoted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Collect every published span for `trace_id` across all rings,
    /// sorted by (start_ns, kind). Promotion-path only — O(ring size).
    pub fn collect(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut out = self.scan(|rec| rec.trace_id == trace_id);
        out.sort_by_key(|r| (r.start_ns, r.kind));
        out
    }

    /// Snapshot the whole flight recorder, sorted by (start_ns, kind).
    pub fn dump(&self) -> Vec<SpanRecord> {
        let mut out = self.scan(|_| true);
        out.sort_by_key(|r| (r.start_ns, r.kind));
        out
    }

    fn scan(&self, keep: impl Fn(&SpanRecord) -> bool) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for ring in inner.rings.iter() {
            for idx in 0..ring.slots.len() {
                if let Some(rec) = ring.snapshot(idx) {
                    if keep(&rec) {
                        out.push(rec);
                    }
                }
            }
        }
        out
    }

    /// Counter snapshot (all zeros when disabled).
    pub fn stats(&self) -> TraceStats {
        match &self.inner {
            None => TraceStats::default(),
            Some(inner) => TraceStats {
                recorded: inner.recorded.load(Ordering::Relaxed),
                promoted: inner.promoted.load(Ordering::Relaxed),
                ring_overwrites: inner.overwrites.load(Ordering::Relaxed),
            },
        }
    }
}

/// Per-request critical-path breakdown reconstructed from a complete
/// span chain ([`summarize`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    pub trace_id: u64,
    /// Shard that handled the request.
    pub shard: u32,
    /// Model generation that served (or would have served) it.
    pub model_generation: u64,
    /// Terminal status (Ok for a decision, otherwise the drop reason).
    pub status: SpanStatus,
    /// Batch sequence (0 when the request never joined a batch).
    pub batch_seq: u64,
    /// Time queued on the shard ring, µs.
    pub queue_us: u64,
    /// Batch residency excluding the forward itself, µs.
    pub batch_wait_us: u64,
    /// Model forward, µs.
    pub forward_us: u64,
    /// Reply serialization + write, µs.
    pub write_us: u64,
    /// End-to-end request span, µs.
    pub total_us: u64,
}

/// Reconstruct one trace's critical path from its spans, validating the
/// chain is complete and gap-free: a decision chain is
/// `request → queue → batch → forward` plus `write`, all `ok` and all
/// stamped with the same model generation; a drop chain ends in a
/// `dropped` terminal span whose status names the reason. Returns a
/// human-readable error describing the first broken link otherwise.
pub fn summarize(spans: &[SpanRecord]) -> Result<TraceSummary, String> {
    if spans.is_empty() {
        return Err("no spans".into());
    }
    let trace_id = spans[0].trace_id;
    if spans.iter().any(|s| s.trace_id != trace_id) {
        return Err("mixed trace ids".into());
    }
    let find = |kind: SpanKind| spans.iter().find(|s| s.kind == kind);
    let request = find(SpanKind::Request).ok_or("missing request span")?;
    if request.parent_id != 0 {
        return Err("request span is not a root".into());
    }

    if let Some(dropped) = find(SpanKind::Dropped) {
        // Drop chain: the terminal span names the reason; a deadline
        // drop additionally shows its queue residency.
        let queue = find(SpanKind::Queue);
        if dropped.status == SpanStatus::Ok {
            return Err("dropped span with ok status".into());
        }
        if request.status != dropped.status {
            return Err("request/dropped status mismatch".into());
        }
        let expected_parent = match queue {
            Some(q) => q.span_id,
            None => request.span_id,
        };
        if dropped.parent_id != expected_parent {
            return Err("dropped span parent does not chain".into());
        }
        if let Some(q) = queue {
            if q.parent_id != request.span_id {
                return Err("queue span parent is not the request span".into());
            }
        }
        return Ok(TraceSummary {
            trace_id,
            shard: dropped.shard,
            model_generation: dropped.model_generation,
            status: dropped.status,
            batch_seq: 0,
            queue_us: queue.map(|q| q.dur_us()).unwrap_or(0),
            batch_wait_us: 0,
            forward_us: 0,
            write_us: 0,
            total_us: request.dur_us(),
        });
    }

    // Decision chain.
    let queue = find(SpanKind::Queue).ok_or("missing queue span")?;
    let batch = find(SpanKind::Batch).ok_or("missing batch span")?;
    let forward = find(SpanKind::Forward).ok_or("missing forward span")?;
    let write = find(SpanKind::Write).ok_or("missing write span")?;
    for (name, span, parent) in [
        ("queue", queue, request.span_id),
        ("batch", batch, queue.span_id),
        ("forward", forward, batch.span_id),
        ("write", write, forward.span_id),
    ] {
        if span.parent_id != parent {
            return Err(format!("{name} span parent does not chain"));
        }
        if span.status != SpanStatus::Ok {
            return Err(format!("{name} span not ok in a decision chain"));
        }
    }
    let generation = forward.model_generation;
    for (name, span) in [
        ("request", request),
        ("queue", queue),
        ("batch", batch),
        ("write", write),
    ] {
        if span.model_generation != generation {
            return Err(format!(
                "{name} span generation {} != forward generation {generation}",
                span.model_generation
            ));
        }
    }
    if batch.batch_seq == 0 || batch.batch_seq != forward.batch_seq {
        return Err("batch/forward batch_seq do not link".into());
    }
    if queue.start_ns > queue.end_ns || batch.start_ns > batch.end_ns {
        return Err("span time went backwards".into());
    }
    Ok(TraceSummary {
        trace_id,
        shard: forward.shard,
        model_generation: generation,
        status: SpanStatus::Ok,
        batch_seq: batch.batch_seq,
        queue_us: queue.dur_us(),
        batch_wait_us: batch.dur_us().saturating_sub(forward.dur_us()),
        forward_us: forward.dur_us(),
        write_us: write.dur_us(),
        total_us: request.dur_us(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, kind: SpanKind, start: u64, end: u64) -> SpanRecord {
        let parent = match kind {
            SpanKind::Request => 0,
            SpanKind::Queue => span_id(trace, SpanKind::Request),
            SpanKind::Batch => span_id(trace, SpanKind::Queue),
            SpanKind::Forward => span_id(trace, SpanKind::Batch),
            SpanKind::Write => span_id(trace, SpanKind::Forward),
            SpanKind::Dropped => span_id(trace, SpanKind::Request),
        };
        SpanRecord {
            trace_id: trace,
            span_id: span_id(trace, kind),
            parent_id: parent,
            kind,
            status: SpanStatus::Ok,
            shard: 1,
            batch_seq: 7,
            model_generation: 3,
            start_ns: start,
            end_ns: end,
        }
    }

    fn full_chain(trace: u64) -> Vec<SpanRecord> {
        vec![
            span(trace, SpanKind::Request, 0, 50_000),
            span(trace, SpanKind::Queue, 1_000, 10_000),
            span(trace, SpanKind::Batch, 10_000, 40_000),
            span(trace, SpanKind::Forward, 12_000, 30_000),
            span(trace, SpanKind::Write, 41_000, 45_000),
        ]
    }

    #[test]
    fn flight_record_json_round_trips_and_validates() {
        for rec in full_chain(0xfeed_0000_0000_0001) {
            let mut line = String::new();
            rec.write_flight_record_json(1.25, &mut line);
            assert!(line.ends_with('\n'));
            crate::json::validate_telemetry_line(line.trim())
                .expect("journal line passes check-telemetry validation");
            let v = crate::json::parse(line.trim()).unwrap();
            let back = SpanRecord::from_flight_record_json(&v).unwrap();
            assert_eq!(back, rec);
        }
        // Non-flight_record lines are rejected, not misparsed.
        let v = crate::json::parse(r#"{"kind":"count","name":"x","t":1,"delta":1}"#).unwrap();
        assert!(SpanRecord::from_flight_record_json(&v).is_err());
    }

    #[test]
    fn ids_are_stable_nonzero_and_distinct() {
        let t = derive_trace_id(42, 7);
        assert_ne!(t, 0);
        assert_eq!(t, derive_trace_id(42, 7));
        assert_ne!(t, derive_trace_id(42, 8));
        assert_ne!(t, derive_trace_id(43, 7));
        let kinds = [
            SpanKind::Request,
            SpanKind::Queue,
            SpanKind::Batch,
            SpanKind::Forward,
            SpanKind::Write,
            SpanKind::Dropped,
        ];
        let mut ids: Vec<u64> = kinds.iter().map(|&k| span_id(t, k)).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), kinds.len(), "span ids collide within a trace");
        assert!(ids.iter().all(|&id| id != 0));
    }

    #[test]
    fn hex_round_trips_and_rejects_junk() {
        for id in [1u64, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_hex16(&hex16(id)), Some(id));
            assert_eq!(hex16(id).len(), 16);
        }
        assert_eq!(parse_hex16(""), None);
        assert_eq!(parse_hex16("xyz"), None);
        assert_eq!(parse_hex16("00000000000000000"), None); // 17 digits
        assert_eq!(parse_hex16("0"), Some(0));
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.record(0, &span(9, SpanKind::Request, 0, 1));
        r.note_promoted();
        assert_eq!(r.stats(), TraceStats::default());
        assert!(r.dump().is_empty());
        assert!(r.collect(9).is_empty());
    }

    #[test]
    fn record_collect_and_dump_round_trip() {
        let r = Recorder::new(2, 64);
        for rec in full_chain(0xabc) {
            r.record(rec.shard as usize, &rec);
        }
        for rec in full_chain(0xdef) {
            r.record(0, &rec);
        }
        assert_eq!(r.stats().recorded, 10);
        assert_eq!(r.stats().ring_overwrites, 0);
        let got = r.collect(0xabc);
        assert_eq!(got.len(), 5);
        assert_eq!(got, {
            let mut want = full_chain(0xabc);
            want.sort_by_key(|s| (s.start_ns, s.kind));
            want
        });
        assert_eq!(r.dump().len(), 10);
    }

    #[test]
    fn zero_trace_id_is_never_recorded() {
        let r = Recorder::new(1, 8);
        let mut rec = span(5, SpanKind::Request, 0, 1);
        rec.trace_id = 0;
        r.record(0, &rec);
        assert_eq!(r.stats().recorded, 0);
        assert!(r.dump().is_empty());
    }

    #[test]
    fn ring_overwrites_are_counted_and_old_records_evicted() {
        let r = Recorder::new(1, 4);
        for n in 0..10u64 {
            r.record(0, &span(derive_trace_id(1, n), SpanKind::Request, n, n + 1));
        }
        let st = r.stats();
        assert_eq!(st.recorded, 10);
        assert_eq!(st.ring_overwrites, 6);
        let dump = r.dump();
        assert_eq!(dump.len(), 4, "ring keeps exactly its capacity");
        // The survivors are the newest four records.
        let newest: Vec<u64> = (6..10).map(|n| derive_trace_id(1, n)).collect();
        assert!(dump.iter().all(|s| newest.contains(&s.trace_id)));
    }

    #[test]
    fn concurrent_writers_never_produce_torn_records() {
        use std::sync::atomic::AtomicBool;
        let r = Recorder::new(2, 128);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let r = r.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Self-describing record: every field derives
                        // from trace_id, so a torn read is detectable.
                        let t = derive_trace_id(w, n);
                        let rec = SpanRecord {
                            trace_id: t,
                            span_id: splitmix64(t),
                            parent_id: splitmix64(t ^ 1),
                            kind: SpanKind::Queue,
                            status: SpanStatus::Ok,
                            shard: (t % 7) as u32,
                            batch_seq: t ^ 2,
                            model_generation: t ^ 3,
                            start_ns: t ^ 4,
                            end_ns: t ^ 5,
                        };
                        r.record((w % 2) as usize, &rec);
                        n += 1;
                    }
                });
            }
            for _ in 0..200 {
                for rec in r.dump() {
                    let t = rec.trace_id;
                    assert_eq!(rec.span_id, splitmix64(t), "torn span_id");
                    assert_eq!(rec.parent_id, splitmix64(t ^ 1), "torn parent_id");
                    assert_eq!(rec.shard, (t % 7) as u32, "torn shard");
                    assert_eq!(rec.batch_seq, t ^ 2, "torn batch_seq");
                    assert_eq!(rec.model_generation, t ^ 3, "torn generation");
                    assert_eq!(rec.start_ns, t ^ 4, "torn start_ns");
                    assert_eq!(rec.end_ns, t ^ 5, "torn end_ns");
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert!(r.stats().recorded > 0);
    }

    #[test]
    fn summarize_accepts_a_full_decision_chain() {
        let s = summarize(&full_chain(0x77)).expect("complete chain");
        assert_eq!(s.status, SpanStatus::Ok);
        assert_eq!(s.model_generation, 3);
        assert_eq!(s.shard, 1);
        assert_eq!(s.batch_seq, 7);
        assert_eq!(s.queue_us, 9);
        assert_eq!(s.forward_us, 18);
        assert_eq!(s.batch_wait_us, 12);
        assert_eq!(s.write_us, 4);
        assert_eq!(s.total_us, 50);
    }

    #[test]
    fn summarize_accepts_a_drop_chain_and_rejects_gaps() {
        let t = 0x99;
        let mut req = span(t, SpanKind::Request, 0, 20_000);
        req.status = SpanStatus::DeadlineExceeded;
        let queue = {
            let mut q = span(t, SpanKind::Queue, 1_000, 19_000);
            q.status = SpanStatus::DeadlineExceeded;
            q
        };
        let mut dropped = span(t, SpanKind::Dropped, 19_000, 19_000);
        dropped.status = SpanStatus::DeadlineExceeded;
        dropped.parent_id = span_id(t, SpanKind::Queue);
        let s = summarize(&[req, queue, dropped]).expect("drop chain");
        assert_eq!(s.status, SpanStatus::DeadlineExceeded);
        assert_eq!(s.queue_us, 18);

        // Gap: decision chain missing its forward span.
        let mut broken = full_chain(0x55);
        broken.retain(|s| s.kind != SpanKind::Forward);
        let err = summarize(&broken).unwrap_err();
        assert!(err.contains("forward"), "unexpected error: {err}");

        // Generation mismatch across a hot swap must be caught.
        let mut swapped = full_chain(0x56);
        swapped[4].model_generation = 9;
        let err = summarize(&swapped).unwrap_err();
        assert!(err.contains("generation"), "unexpected error: {err}");
    }
}
