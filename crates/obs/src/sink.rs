//! Pluggable telemetry sinks: where recorded events go.

use std::collections::BTreeMap;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;
use crate::registry::Counter;
use crate::ObsError;

/// A destination for telemetry events.
///
/// Sinks receive events by reference from any rollout worker thread, so
/// implementations must be internally synchronized. Recording must not
/// panic; I/O failures are swallowed (telemetry never takes training down).
pub trait Sink: Send + Sync {
    /// Record one event.
    fn record(&self, event: &Event);

    /// Flush buffered output (no-op for in-memory sinks).
    fn flush(&self) {}

    /// Whether this sink reads event timestamps (the `t` field). Sinks
    /// that ignore them — live aggregation, the null sink — return
    /// `false`, and when *every* sink behind a handle declines, the
    /// [`Telemetry`](crate::Telemetry) front end skips the clock read on
    /// each event (tens of nanoseconds on the rollout hot path) and
    /// delivers `t == 0.0`.
    fn wants_time(&self) -> bool {
        true
    }
}

/// Discards every event. An *enabled* handle with a `NullSink` measures the
/// framework's own overhead: event construction and dispatch happen,
/// delivery is free (and, like any sink that declines timestamps, no clock
/// is read).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}

    fn wants_time(&self) -> bool {
        false
    }
}

/// Writes one JSON object per line (JSONL) to a buffered writer.
///
/// The line buffer is reused across events, so steady-state recording does
/// not allocate beyond the writer's own buffering. Lines from concurrent
/// workers are serialized by the internal mutex, never interleaved.
///
/// Recording still never panics or blocks training, but write failures are
/// no longer invisible: every event that could not be written increments a
/// dropped-events [`Counter`], which callers can register into a metrics
/// [`Registry`](crate::registry::Registry) (the CLI exposes it as
/// `obs.sink.dropped_events` on `/metrics`) via
/// [`JsonlSink::with_dropped_counter`].
pub struct JsonlSink {
    out: Mutex<JsonlState>,
    dropped: Counter,
}

struct JsonlState {
    writer: BufWriter<Box<dyn Write + Send>>,
    line: String,
}

impl JsonlSink {
    /// A sink writing to `writer`.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(JsonlState {
                writer: BufWriter::new(writer),
                line: String::with_capacity(128),
            }),
            dropped: Counter::detached(),
        }
    }

    /// A sink writing to a freshly created (truncated) file at `path`.
    /// Creation failures surface as [`ObsError::Sidecar`] naming the path.
    pub fn create(path: &Path) -> Result<Self, ObsError> {
        let file = std::fs::File::create(path).map_err(|source| ObsError::Sidecar {
            path: path.to_path_buf(),
            source,
        })?;
        Ok(Self::new(Box::new(file)))
    }

    /// Count write failures on `counter` (typically a registry handle, so
    /// drops show up on `/metrics`) instead of this sink's private counter.
    pub fn with_dropped_counter(mut self, counter: Counter) -> Self {
        self.dropped = counter;
        self
    }

    /// Number of events dropped because a write (or the sink lock) failed.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.get()
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let Ok(mut state) = self.out.lock() else {
            // Poisoned by a panicking worker: drop the event, but count it.
            self.dropped.inc();
            return;
        };
        let state = &mut *state;
        state.line.clear();
        event.write_json(&mut state.line);
        state.line.push('\n');
        if state.writer.write_all(state.line.as_bytes()).is_err() {
            self.dropped.inc();
        }
    }

    fn flush(&self) {
        if let Ok(mut state) = self.out.lock() {
            let _ = state.writer.flush();
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Buffers every event in memory, with assertion helpers for tests.
#[derive(Debug, Default)]
pub struct InMemorySink {
    events: Mutex<Vec<Event>>,
}

impl InMemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of all events recorded so far, in record order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("telemetry sink lock").clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().expect("telemetry sink lock").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of all `Counter` deltas recorded under `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events
            .lock()
            .expect("telemetry sink lock")
            .iter()
            .filter_map(|e| match e {
                Event::Counter { name: n, delta, .. } if *n == name => Some(*delta),
                _ => None,
            })
            .sum()
    }

    /// All `Gauge` values recorded under `name`, in record order.
    pub fn gauge_values(&self, name: &str) -> Vec<f64> {
        self.events
            .lock()
            .expect("telemetry sink lock")
            .iter()
            .filter_map(|e| match e {
                Event::Gauge { name: n, value, .. } if *n == name => Some(*value),
                _ => None,
            })
            .collect()
    }

    /// All `SpanClose` durations recorded under `name`, in record order.
    pub fn span_durations(&self, name: &str) -> Vec<f64> {
        self.events
            .lock()
            .expect("telemetry sink lock")
            .iter()
            .filter_map(|e| match e {
                Event::SpanClose { name: n, dur, .. } if *n == name => Some(*dur),
                _ => None,
            })
            .collect()
    }

    /// Check that every span name opens and closes in matched, properly
    /// nested-or-sequential pairs: each `SpanClose` matches the most recent
    /// unclosed `SpanOpen` of the same name. Returns the per-name open/close
    /// counts on success, or a description of the first violation.
    pub fn check_span_pairing(&self) -> Result<BTreeMap<&'static str, usize>, String> {
        let events = self.events.lock().expect("telemetry sink lock");
        let mut open: Vec<&'static str> = Vec::new();
        let mut pairs: BTreeMap<&'static str, usize> = BTreeMap::new();
        for e in events.iter() {
            match e {
                Event::SpanOpen { name, .. } => open.push(name),
                Event::SpanClose { name, .. } => match open.pop() {
                    Some(top) if top == *name => *pairs.entry(name).or_insert(0) += 1,
                    Some(top) => {
                        return Err(format!("span_close {name:?} while {top:?} is open"));
                    }
                    None => return Err(format!("span_close {name:?} with no span open")),
                },
                _ => {}
            }
        }
        if let Some(unclosed) = open.first() {
            return Err(format!("span {unclosed:?} never closed"));
        }
        Ok(pairs)
    }

    /// Check timestamps never decrease in record order.
    pub fn check_monotonic_timestamps(&self) -> Result<(), String> {
        let events = self.events.lock().expect("telemetry sink lock");
        let mut last = 0.0f64;
        for (i, e) in events.iter().enumerate() {
            let t = e.t();
            if !t.is_finite() || t + 1e-9 < last {
                return Err(format!(
                    "event {i} ({} {:?}) has timestamp {t} after {last}",
                    e.kind(),
                    e.name()
                ));
            }
            last = last.max(t);
        }
        Ok(())
    }
}

impl Sink for InMemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("telemetry sink lock")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &'static str, t: f64, delta: u64) -> Event {
        Event::Counter { name, t, delta }
    }

    #[test]
    fn in_memory_sink_aggregates() {
        let sink = InMemorySink::new();
        sink.record(&counter("a", 0.0, 2));
        sink.record(&counter("b", 0.1, 5));
        sink.record(&counter("a", 0.2, 3));
        sink.record(&Event::Gauge {
            name: "g",
            t: 0.3,
            value: 0.5,
        });
        assert_eq!(sink.counter_total("a"), 5);
        assert_eq!(sink.counter_total("b"), 5);
        assert_eq!(sink.counter_total("missing"), 0);
        assert_eq!(sink.gauge_values("g"), vec![0.5]);
        assert_eq!(sink.len(), 4);
    }

    #[test]
    fn span_pairing_detects_violations() {
        let sink = InMemorySink::new();
        sink.record(&Event::SpanOpen { name: "a", t: 0.0 });
        sink.record(&Event::SpanOpen { name: "b", t: 0.1 });
        sink.record(&Event::SpanClose {
            name: "b",
            t: 0.2,
            dur: 0.1,
        });
        sink.record(&Event::SpanClose {
            name: "a",
            t: 0.3,
            dur: 0.3,
        });
        let pairs = sink.check_span_pairing().expect("properly nested");
        assert_eq!(pairs.get("a"), Some(&1));
        assert_eq!(pairs.get("b"), Some(&1));

        let bad = InMemorySink::new();
        bad.record(&Event::SpanOpen { name: "a", t: 0.0 });
        assert!(bad.check_span_pairing().is_err(), "unclosed span");

        let crossed = InMemorySink::new();
        crossed.record(&Event::SpanOpen { name: "a", t: 0.0 });
        crossed.record(&Event::SpanOpen { name: "b", t: 0.1 });
        crossed.record(&Event::SpanClose {
            name: "a",
            t: 0.2,
            dur: 0.2,
        });
        assert!(crossed.check_span_pairing().is_err(), "crossed spans");
    }

    #[test]
    fn monotonic_check_flags_regressions() {
        let sink = InMemorySink::new();
        sink.record(&counter("a", 0.0, 1));
        sink.record(&counter("a", 1.0, 1));
        assert!(sink.check_monotonic_timestamps().is_ok());
        sink.record(&counter("a", 0.5, 1));
        assert!(sink.check_monotonic_timestamps().is_err());
    }

    #[test]
    fn jsonl_sink_counts_dropped_events_on_write_failure() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _data: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let dropped = Counter::detached();
        // BufWriter only hits the writer once its 8 KiB buffer fills, so
        // record until the failure becomes visible.
        let sink = JsonlSink::new(Box::new(FailingWriter)).with_dropped_counter(dropped.clone());
        for _ in 0..2000 {
            sink.record(&counter("x", 0.0, 1));
        }
        assert!(sink.dropped_events() > 0, "write failures were counted");
        assert_eq!(sink.dropped_events(), dropped.get());
    }

    #[test]
    fn jsonl_create_error_names_the_path() {
        let Err(err) = JsonlSink::create(Path::new("/nonexistent-dir/x.jsonl")) else {
            panic!("create should fail");
        };
        assert!(err.to_string().contains("/nonexistent-dir/x.jsonl"));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(Mutex::new(buf));
        struct SharedWriter(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(SharedWriter(shared.clone())));
        sink.record(&counter("x", 0.0, 1));
        sink.record(&Event::SpanOpen { name: "s", t: 0.1 });
        sink.flush();
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::validate_telemetry_line(line).expect("valid telemetry line");
        }
    }
}
