//! A std-only, pull-based metrics exposition endpoint.
//!
//! [`MetricsExporter::bind`] starts one background thread serving
//! `GET /metrics` (Prometheus text format, rendered live from a shared
//! [`Registry`]) over plain HTTP/1.1 — no framework, no dependency, the
//! same hand-rolled TCP approach as the serve daemon. One request per
//! connection (`Connection: close`), which is exactly the access pattern
//! of a Prometheus scraper or a debugging `curl`.
//!
//! Shutdown mirrors the serve daemon's listener trick: a shared stop flag
//! plus a loopback connection to wake the blocking `accept`, then a thread
//! join — so `train` runs exit cleanly instead of leaking the exporter.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::registry::Registry;
use crate::{ObsError, Telemetry};

/// Content type of the Prometheus text exposition format.
const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// A running `/metrics` endpoint. Dropping the handle without calling
/// [`MetricsExporter::shutdown`] detaches the thread (it keeps serving
/// until the process exits).
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsExporter {
    /// Bind `addr` (e.g. `"127.0.0.1:9184"`, port 0 for ephemeral) and
    /// serve `registry` until [`shutdown`](MetricsExporter::shutdown).
    ///
    /// Each scrape increments `obs.metrics.scrapes` (malformed requests
    /// increment `obs.metrics.scrape_errors`) and, when `telemetry` is
    /// enabled, records a `registry_snapshot` event in the sidecar so
    /// offline analysis can see the run was being observed.
    pub fn bind(
        addr: &str,
        registry: Arc<Registry>,
        telemetry: Telemetry,
    ) -> Result<Self, ObsError> {
        let listener = TcpListener::bind(addr).map_err(|source| ObsError::Bind {
            addr: addr.to_string(),
            source,
        })?;
        let local = listener.local_addr().map_err(|source| ObsError::Bind {
            addr: addr.to_string(),
            source,
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("metrics-exporter".into())
                .spawn(move || exporter_loop(listener, registry, telemetry, stop))
                .expect("spawn metrics exporter thread")
        };
        Ok(MetricsExporter {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the acceptor, and join the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway loopback connection.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl std::fmt::Debug for MetricsExporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsExporter")
            .field("addr", &self.addr)
            .finish()
    }
}

fn exporter_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    telemetry: Telemetry,
    stop: Arc<AtomicBool>,
) {
    let scrapes = registry.counter("obs.metrics.scrapes", "successful /metrics scrapes");
    let errors = registry.counter(
        "obs.metrics.scrape_errors",
        "malformed or unroutable exposition requests",
    );
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        match handle_scrape(stream, &registry) {
            Ok(()) => {
                scrapes.inc();
                let c = registry.counts();
                telemetry.registry_snapshot("metrics_exporter", c);
            }
            Err(()) => errors.inc(),
        }
    }
}

/// Serve one connection: parse the request line, answer `GET /metrics`
/// with the rendered registry, anything else with 404 (or 400 when the
/// request is not parseable). `Err(())` means the scrape did not produce
/// a 200.
fn handle_scrape(mut stream: TcpStream, registry: &Registry) -> Result<(), ()> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_nodelay(true);

    // Read until the end of the request head (CRLFCRLF) or the buffer/
    // timeout limit; scrapers send small GETs, so 4 KiB is plenty.
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    loop {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") || len == buf.len() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));

    if method != "GET" {
        let _ = write_response(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            b"GET only\n",
        );
        return Err(());
    }
    match path {
        p if p == "/metrics" || p.starts_with("/metrics?") => {
            let mut body = String::with_capacity(4096);
            registry.render(&mut body);
            write_response(&mut stream, "200 OK", CONTENT_TYPE, body.as_bytes()).map_err(|_| ())
        }
        "/" => {
            let _ = write_response(
                &mut stream,
                "200 OK",
                "text/plain",
                b"schedinspector metrics endpoint; scrape /metrics\n",
            );
            Err(()) // not a scrape
        }
        _ => {
            let _ = write_response(&mut stream, "404 Not Found", "text/plain", b"not found\n");
            Err(())
        }
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect exporter");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut body = String::new();
        // Skip headers, then read the body to EOF (Connection: close).
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line.is_empty() {
                break;
            }
        }
        reader.read_to_string(&mut body).unwrap();
        (status.trim().to_string(), body)
    }

    #[test]
    fn serves_metrics_and_counts_scrapes() {
        let registry = Arc::new(Registry::new());
        registry.counter("test.hits", "test counter").add(3);
        registry.gauge("test.level", "test gauge").set(1.5);
        registry
            .histogram("test.lat", "test histogram")
            .observe(0.1);
        let exporter =
            MetricsExporter::bind("127.0.0.1:0", Arc::clone(&registry), Telemetry::disabled())
                .expect("bind ephemeral port");
        let addr = exporter.local_addr();

        let (status, body) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("schedinspector_test_hits_total 3"));
        assert!(body.contains("schedinspector_test_level 1.5"));
        assert!(body.contains("# TYPE schedinspector_test_lat histogram"));

        let (status, _) = http_get(addr, "/nope");
        assert!(status.contains("404"), "{status}");

        // The second /metrics scrape sees the first one counted.
        let (_, body) = http_get(addr, "/metrics");
        assert!(
            body.contains("schedinspector_obs_metrics_scrapes_total"),
            "scrape counter exposed"
        );
        exporter.shutdown();
        assert_eq!(registry.counter("obs.metrics.scrape_errors", "").get(), 1);
    }

    /// Like [`http_get`] but also returns the response headers, for
    /// asserting on framing (Content-Length etc).
    fn http_get_full(addr: SocketAddr, path: &str) -> (String, Vec<String>, String) {
        let mut stream = TcpStream::connect(addr).expect("connect exporter");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut headers = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line.is_empty() {
                break;
            }
            headers.push(line.trim().to_string());
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).unwrap();
        (status.trim().to_string(), headers, body)
    }

    #[test]
    fn unknown_paths_get_404_with_exact_content_length() {
        let registry = Arc::new(Registry::new());
        let exporter =
            MetricsExporter::bind("127.0.0.1:0", Arc::clone(&registry), Telemetry::disabled())
                .expect("bind");
        let addr = exporter.local_addr();
        for path in ["/nope", "/metrics/extra", "/metricsx", "/favicon.ico"] {
            let (status, headers, body) = http_get_full(addr, path);
            assert!(status.starts_with("HTTP/1.1 404"), "{path}: {status}");
            let clen = headers
                .iter()
                .find_map(|h| h.strip_prefix("Content-Length: "))
                .unwrap_or_else(|| panic!("{path}: 404 without Content-Length: {headers:?}"));
            assert_eq!(
                clen.parse::<usize>().unwrap(),
                body.len(),
                "{path}: Content-Length does not match body"
            );
            assert_eq!(body, "not found\n");
        }
        // /metrics with a query string is still a scrape, not a 404.
        let (status, _, _) = http_get_full(addr, "/metrics?x=1");
        assert!(status.contains("200"), "{status}");
        exporter.shutdown();
        assert_eq!(registry.counter("obs.metrics.scrape_errors", "").get(), 4);
    }

    #[test]
    fn concurrent_scrapes_all_get_complete_well_framed_responses() {
        let registry = Arc::new(Registry::new());
        registry.counter("test.hits", "test counter").add(7);
        let exporter =
            MetricsExporter::bind("127.0.0.1:0", Arc::clone(&registry), Telemetry::disabled())
                .expect("bind");
        let addr = exporter.local_addr();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for i in 0..8 {
                handles.push(scope.spawn(move || {
                    for _ in 0..5 {
                        if i % 4 == 3 {
                            // Interleave bad paths with real scrapes.
                            let (status, headers, body) = http_get_full(addr, "/bogus");
                            assert!(status.contains("404"), "{status}");
                            let clen: usize = headers
                                .iter()
                                .find_map(|h| h.strip_prefix("Content-Length: "))
                                .expect("Content-Length on 404")
                                .parse()
                                .unwrap();
                            assert_eq!(clen, body.len());
                        } else {
                            let (status, headers, body) = http_get_full(addr, "/metrics");
                            assert!(status.contains("200"), "{status}");
                            let clen: usize = headers
                                .iter()
                                .find_map(|h| h.strip_prefix("Content-Length: "))
                                .expect("Content-Length on 200")
                                .parse()
                                .unwrap();
                            assert_eq!(clen, body.len(), "truncated scrape body");
                            assert!(body.contains("schedinspector_test_hits_total 7"));
                        }
                    }
                }));
            }
            for h in handles {
                h.join().expect("scrape thread");
            }
        });
        exporter.shutdown();
        assert_eq!(registry.counter("obs.metrics.scrapes", "").get(), 30);
        assert_eq!(registry.counter("obs.metrics.scrape_errors", "").get(), 10);
    }

    #[test]
    fn snapshot_events_flow_into_telemetry() {
        let registry = Arc::new(Registry::new());
        let (telemetry, sink) = Telemetry::in_memory();
        let exporter =
            MetricsExporter::bind("127.0.0.1:0", Arc::clone(&registry), telemetry).expect("bind");
        let (status, _) = http_get(exporter.local_addr(), "/metrics");
        assert!(status.contains("200"));
        exporter.shutdown();
        let snapshots: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| matches!(e, crate::Event::RegistrySnapshot { .. }))
            .collect();
        assert_eq!(snapshots.len(), 1);
    }

    #[test]
    fn bind_failure_is_a_typed_error() {
        let registry = Arc::new(Registry::new());
        let err = MetricsExporter::bind("definitely not an addr", registry, Telemetry::disabled())
            .expect_err("bad addr fails");
        assert!(err.to_string().contains("definitely not an addr"));
    }
}
