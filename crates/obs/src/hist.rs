//! A lock-free HDR-style log-linear histogram.
//!
//! Moved here from `serve::stats` (which re-exports it as
//! `LatencyHistogram` for compatibility) so the serve daemon's latency
//! tracking and the live metrics [`Registry`](crate::registry::Registry)
//! aggregate through the *same* structure: power-of-two octaves split into
//! [`SUB`] linear sub-buckets, bounding the relative quantile error at
//! 12.5%. Recording is one relaxed increment per atomic; reads sweep a
//! snapshot.
//!
//! Values are unit-agnostic `u64` "ticks". The serve daemon records
//! nanoseconds directly; the registry's f64-facing
//! [`Histogram`](crate::registry::Histogram) handle scales seconds-valued
//! samples into ticks before recording.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per power-of-two
/// octave, bounding the relative quantile error at 12.5%.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Enough buckets for the full `u64` range (index ≤ 495).
pub(crate) const BUCKETS: usize = 512;

/// A lock-free log-linear histogram of `u64` tick values (HDR-style).
/// Recording is one relaxed increment; quantiles are read from a snapshot
/// sweep.
pub struct LogLinearHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Box<[AtomicU64]>,
    /// Per-bucket exemplar slots, allocated on the first traced sample so
    /// histograms that never see a traced request pay nothing.
    exemplars: OnceLock<Box<[ExemplarSlot]>>,
}

/// Last traced sample that landed in one bucket: `(trace, value)`, with
/// `trace == 0` meaning "no exemplar yet". Concurrent writers race
/// last-wins; a torn pair still holds a value from the same bucket, so
/// the exposed exemplar stays plausible for its `le` bound.
struct ExemplarSlot {
    trace: AtomicU64,
    value: AtomicU64,
}

pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - u64::from(v.leading_zeros());
        let shift = msb - u64::from(SUB_BITS);
        let sub = (v >> shift) - SUB;
        ((shift + 1) * SUB + sub) as usize
    }
}

/// Largest value that lands in bucket `i` (the reported quantile bound).
/// Computed in `u128`: the top few of the 512 indices are unreachable from
/// any `u64` input and would overflow a `u64` shift.
pub(crate) fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        i
    } else {
        let shift = i / SUB - 1;
        let sub = i % SUB;
        let hi = u128::from(SUB + sub + 1) << shift;
        (hi - 1).min(u128::from(u64::MAX)) as u64
    }
}

impl LogLinearHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogLinearHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            exemplars: OnceLock::new(),
        }
    }

    /// Record one sample, in ticks.
    #[inline]
    pub fn record(&self, ticks: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ticks, Ordering::Relaxed);
        self.buckets[bucket_index(ticks)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one sample and remember it as its bucket's exemplar, so the
    /// exposition layer can point the bucket at a concrete trace
    /// (OpenMetrics `# {trace_id="…"}`). A zero trace id (= unsampled)
    /// records the value without touching exemplar storage.
    #[inline]
    pub fn record_exemplar(&self, ticks: u64, trace_id: u64) {
        self.record(ticks);
        if trace_id == 0 {
            return;
        }
        let slots = self
            .exemplars
            .get_or_init(|| (0..BUCKETS).map(|_| ExemplarSlot::empty()).collect());
        let slot = &slots[bucket_index(ticks)];
        slot.value.store(ticks, Ordering::Relaxed);
        slot.trace.store(trace_id, Ordering::Release);
    }

    /// Non-empty exemplars as `(bucket_upper_ticks, value_ticks, trace_id)`
    /// in ascending bucket order. Empty until the first traced sample.
    pub fn exemplars(&self) -> Vec<(u64, u64, u64)> {
        let Some(slots) = self.exemplars.get() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (i, slot) in slots.iter().enumerate() {
            let trace = slot.trace.load(Ordering::Acquire);
            if trace != 0 {
                out.push((bucket_upper(i), slot.value.load(Ordering::Relaxed), trace));
            }
        }
        out
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded ticks (wraps on overflow, like any `u64` sum).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample value in ticks (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile in ticks (upper bound of the bucket the quantile
    /// falls in; 0 when empty). `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Snapshot of the non-empty tail of the distribution as
    /// `(bucket_upper_ticks, cumulative_count)` pairs, in ascending bucket
    /// order, ending at the last non-empty bucket. Empty buckets *below*
    /// that point are included so consumers see a dense cumulative curve.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, n) in counts.iter().enumerate() {
            cum += n;
            out.push((bucket_upper(i), cum));
            if cum == total {
                break; // everything beyond here is an empty tail
            }
        }
        out
    }
}

impl ExemplarSlot {
    fn empty() -> ExemplarSlot {
        ExemplarSlot {
            trace: AtomicU64::new(0),
            value: AtomicU64::new(0),
        }
    }
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogLinearHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogLinearHistogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        let mut v = 0u64;
        while v < 1 << 40 {
            let i = bucket_index(v);
            assert!(i >= last, "index regressed at {v}");
            assert!(i < BUCKETS);
            last = i;
            v = v * 2 + 1;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_upper_bounds_its_own_bucket() {
        // Indices past bucket_index(u64::MAX) can't be hit by any input.
        for i in 0..=bucket_index(u64::MAX) {
            let hi = bucket_upper(i);
            assert_eq!(bucket_index(hi), i, "upper({i}) = {hi}");
            if hi < u64::MAX {
                assert!(bucket_index(hi + 1) > i);
            }
        }
    }

    #[test]
    fn quantiles_bracket_known_distribution() {
        let h = LogLinearHistogram::new();
        // 1..=1000 µs, uniform, recorded as nanoseconds.
        for us in 1..=1000u64 {
            h.record(us * 1_000);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.50) as f64 / 1_000.0;
        let p99 = h.quantile(0.99) as f64 / 1_000.0;
        // Log-linear buckets are accurate to 12.5% on the upper bound.
        assert!((430.0..=580.0).contains(&p50), "p50 {p50}");
        assert!((930.0..=1150.0).contains(&p99), "p99 {p99}");
        assert!((h.mean() / 1_000.0 - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogLinearHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0], (0, 0));
    }

    #[test]
    fn exemplars_track_the_last_traced_sample_per_bucket() {
        let h = LogLinearHistogram::new();
        assert!(h.exemplars().is_empty(), "no storage before first trace");
        h.record(5); // untraced
        h.record_exemplar(5, 0); // trace id 0 = unsampled: no exemplar
        assert!(h.exemplars().is_empty());
        h.record_exemplar(5, 0xabc);
        h.record_exemplar(5, 0xdef); // same bucket: last wins
        h.record_exemplar(40_000, 0x123);
        let ex = h.exemplars();
        assert_eq!(ex.len(), 2);
        let (upper0, value0, trace0) = ex[0];
        assert_eq!((value0, trace0), (5, 0xdef));
        assert!(upper0 >= 5);
        let (upper1, value1, trace1) = ex[1];
        assert_eq!((value1, trace1), (40_000, 0x123));
        assert!(value1 <= upper1, "exemplar value exceeds its le bound");
        assert_eq!(h.count(), 5, "exemplar recording still counts samples");
    }

    #[test]
    fn cumulative_buckets_are_nondecreasing_and_end_at_count() {
        let h = LogLinearHistogram::new();
        for v in [1u64, 1, 7, 900, 900, 35_000, 2_000_000] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        let mut last = 0u64;
        for &(upper, cum) in &buckets {
            assert!(cum >= last, "cumulative count regressed at {upper}");
            last = cum;
        }
        assert_eq!(last, h.count());
        // Uppers strictly increase.
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }
}
